"""Tiering-policy interface, registry, and Table-I feature metadata.

A :class:`TieringPolicy` owns every *decision* the kernel substrate
delegates: where freshly faulted pages go, what a supervised access does
to list state, which daemons run, and how reclaim behaves.  The default
implementations reproduce vanilla Linux PFRA behaviour so each baseline
only overrides what the corresponding paper system actually changed.

The :class:`PolicyFeatures` records mirror the columns of the paper's
Table I, so the table can be regenerated from code (see
``benchmarks/test_table1_features.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.page_table import PageTableEntry
from repro.mm.system import MemorySystem
from repro.mm.vmscan import deactivate_excess_active, mark_page_accessed, shrink_inactive_list
from repro.sim.events import Daemon

__all__ = ["PolicyFeatures", "TieringPolicy", "register_policy", "create_policy", "policy_names"]

# Bound once: the allocation hook tests this flag on every fault, and
# Enum member lookup costs a ``__getattr__`` round trip per access.
_UNEVICTABLE = int(PageFlags.UNEVICTABLE)


@dataclass(frozen=True)
class PolicyFeatures:
    """One row of the paper's Table I."""

    tiering: str
    page_access_tracking: str
    selection_promotion: str
    selection_demotion: str
    numa_aware: str
    space_overhead: str
    generality: str
    evaluation: str
    usability_limitation: str
    key_insight: str


class TieringPolicy(abc.ABC):
    """Base class for every tiering mechanism in the evaluation."""

    name: str = "abstract"
    features: PolicyFeatures | None = None

    def __init__(self, system: MemorySystem) -> None:
        self.system = system
        system.attach_policy(self)

    # -- hooks the substrate calls -----------------------------------------

    def daemons(self) -> list[Daemon]:
        """Background daemons this policy wants scheduled."""
        return []

    def on_page_allocated(self, page: Page) -> None:
        """Place a freshly faulted page; default: inactive-list head."""
        node = self.system.nodes[page.node_id]
        if page._store.flags[page.pfn] & _UNEVICTABLE:
            node.lruvec.list_for(ListKind.UNEVICTABLE).add_head(page)
            return
        node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)

    def mark_page_accessed(self, page: Page) -> None:
        """Supervised-access state update; default: vanilla CLOCK ladder."""
        mark_page_accessed(self.system, page)

    def on_access(self, pte: PageTableEntry, is_write: bool) -> None:
        """Called on every access, after latency is charged."""

    def observe_scan(self, page: Page) -> None:
        """Called for every page a kpromoted scan examines.

        Policies that need per-scan-window observations beyond the
        accessed bit (e.g. the §VII dirtiness weighting) hook in here;
        the default costs nothing.
        """

    def on_hint_fault(self, pte: PageTableEntry) -> None:
        """Called when an access trips a poisoned PTE (hint-fault trackers)."""

    def charge_access(self, page: Page, is_write: bool, lines: int = 1) -> int:
        """Latency of one access touching ``lines`` cache lines.

        Default: the backing tier's per-line latency times the line count.
        """
        return lines * self.system.hardware.access_ns(self.system.tier_of(page), is_write)

    def on_memory_pressure(self, node_ids: tuple[int, ...]) -> None:
        """Allocation observed nodes below their low watermark."""

    def direct_reclaim(self) -> int:
        """Synchronous reclaim when allocation finds no frame anywhere.

        Default: evict from the lowest tier's inactive lists, escalating
        to ignore reference bits — Linux's rising scan priority — so that
        progress is guaranteed while swap has room.  Returns pages freed.
        """
        freed = 0
        for node in reversed(self.system.allocator.fallback_order):
            for is_anon in (True, False):
                result = shrink_inactive_list(
                    self.system, node, is_anon, target_free=32, budget=256, demote_dest=None
                )
                freed += result.evicted
            if freed:
                return freed
        # Escalation: fill inactive lists from active, then force-evict.
        for node in reversed(self.system.allocator.fallback_order):
            for is_anon in (True, False):
                deactivate_excess_active(self.system, node, is_anon, budget=256, force=True)
            freed += self._force_evict(node, 32)
            if freed:
                return freed
        return freed

    def _force_evict(self, node: NumaNode, target: int) -> int:
        """Evict from the tail regardless of reference state."""
        freed = 0
        for kind in (ListKind.INACTIVE, ListKind.ACTIVE, ListKind.PROMOTE):
            for is_anon in (True, False):
                lst = node.lruvec.list_for(kind, is_anon)
                for page in lst.iter_from_tail():
                    if freed >= target:
                        return freed
                    if page.test(PageFlags.LOCKED) or page.test(PageFlags.UNEVICTABLE):
                        continue
                    try:
                        self.system.unmap_and_evict(page)
                    except MemoryError:
                        return freed
                    freed += 1
        return freed


_REGISTRY: dict[str, Callable[[MemorySystem], TieringPolicy]] = {}


def register_policy(name: str) -> Callable[[type[TieringPolicy]], type[TieringPolicy]]:
    """Class decorator adding a policy to the by-name registry."""

    def decorate(cls: type[TieringPolicy]) -> type[TieringPolicy]:
        if name in _REGISTRY:
            raise ValueError(f"policy {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def create_policy(name: str, system: MemorySystem) -> TieringPolicy:
    """Instantiate a registered policy and attach it to ``system``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(system)


def policy_names() -> list[str]:
    return sorted(_REGISTRY)
