"""AutoTiering-CPM and AutoTiering-OPM baselines.

AutoTiering builds on AutoNUMA's *hint page fault* tracking: a scanner
periodically poisons page-table entries so the next access traps into the
kernel, which records the access and considers migrating the page
(Section II-D).  The paper evaluates two variants:

* **CPM** (conservative promotion-migration): on a hint fault against a
  PM-resident page, migrate it to the best (DRAM) node *only if that node
  has free space* — no demotion, so once DRAM fills the workload keeps
  paying fault costs with no placement benefit.
* **OPM** (opportunistic promotion-migration): additionally "maintains an
  n-bit vector for each page to determine the page coldness" and demotes
  all-cold DRAM pages, both proactively under pressure and on demand to
  make room for promotions.

Both charge the hint-fault latency on every tripped access — the "costly
software page fault-based page access tracking" the paper blames for
AutoTiering's losses — plus scanner time for poisoning PTEs.
"""

from __future__ import annotations

from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.page_table import PageTableEntry
from repro.mm.system import MemorySystem
from repro.mm.watermarks import PressureLevel
from repro.policies import movement
from repro.policies.base import PolicyFeatures, TieringPolicy, register_policy
from repro.sim.events import Daemon

__all__ = ["HintFaultScanner", "AutoTieringCPM", "AutoTieringOPM", "HISTORY_BITS"]

HISTORY_BITS = 4
"""Width of OPM's per-page access-history vector."""

_HISTORY_MASK = (1 << HISTORY_BITS) - 1


class HintFaultScanner:
    """Round-robin PTE poisoner shared by the hint-fault policies.

    Each pass walks the resident pages of every process in vpage order,
    poisoning up to the configured budget of PTEs per wakeup.  When OPM's
    history tracking is enabled, poisoning a page also shifts its n-bit
    history vector (a zero shifts in; the hint fault handler ORs in a 1).
    """

    def __init__(self, system: MemorySystem, *, track_history: bool) -> None:
        self.system = system
        self.track_history = track_history
        self._cursors: dict[int, int] = {}
        self._snapshots: dict[int, list[int]] = {}

    def run(self, now_ns: int) -> int:
        budget = self.system.config.daemons.hint_scan_budget_pages
        poisoned = 0
        for process in self.system.processes.values():
            if poisoned >= budget:
                break
            poisoned += self._scan_process(process.pid, budget - poisoned)
        self.system.stats.inc("hint.poisoned", poisoned)
        # Poisoning a live PTE costs a TLB shootdown per page.
        return poisoned * self.system.hardware.latency.poison_page_ns

    def _scan_process(self, pid: int, budget: int) -> int:
        process = self.system.processes[pid]
        snapshot = self._snapshots.get(pid)
        cursor = self._cursors.get(pid, 0)
        if snapshot is None or cursor >= len(snapshot):
            snapshot = sorted(vpage for vpage in self._resident_vpages(pid))
            self._snapshots[pid] = snapshot
            cursor = 0
        poisoned = 0
        while cursor < len(snapshot) and poisoned < budget:
            pte = process.page_table.lookup(snapshot[cursor])
            cursor += 1
            if pte is None:
                continue
            pte.poisoned = True
            if self.track_history:
                self._shift_history(pte.page)
            poisoned += 1
        self._cursors[pid] = cursor
        return poisoned

    def _resident_vpages(self, pid: int) -> list[int]:
        return [pte.vpage for pte in self.system.processes[pid].page_table.entries()]

    @staticmethod
    def _shift_history(page: Page) -> None:
        history = page.policy_data or 0
        page.policy_data = (history << 1) & _HISTORY_MASK


class _HintFaultPolicy(TieringPolicy):
    """Common mechanics of the hint-fault family."""

    make_room_on_promote = False
    track_history = False

    def __init__(self, system: MemorySystem) -> None:
        super().__init__(system)
        self._scanner = HintFaultScanner(system, track_history=self.track_history)
        self._c_hint_faults = system.stats.counter("hint.faults")
        self._c_hint_promotions = system.stats.counter("hint.promotions")

    def daemons(self) -> list[Daemon]:
        cfg = self.system.config.daemons
        return [Daemon("hint-scanner", cfg.hint_scan_interval_s, self._scanner.run)]

    def on_hint_fault(self, pte: PageTableEntry) -> None:
        """Recency signal: the poisoned page was just accessed."""
        page = pte.page
        if self.track_history:
            page.policy_data = (page.policy_data or 0) | 1
        self._c_hint_faults.n += 1
        if self.system.tier_of(page) is MemoryTier.PM:
            if self._try_promote(page):
                self._c_hint_promotions.n += 1

    def _try_promote(self, page: Page) -> bool:
        return movement.promote_page(
            self.system, page, make_room=self.make_room_on_promote
        )


@register_policy("autotiering-cpm")
class AutoTieringCPM(_HintFaultPolicy):
    """Conservative: promote on fault only into free DRAM space."""

    features = PolicyFeatures(
        tiering="AutoTiering (CPM)",
        page_access_tracking="Software Page Fault",
        selection_promotion="Recency",
        selection_demotion="N/A",
        numa_aware="Yes",
        space_overhead="Yes",
        generality="All",
        evaluation="PM",
        usability_limitation="Config. NUMA Paths",
        key_insight="Migrate pages to the best NUMA node",
    )

    make_room_on_promote = False
    track_history = False


@register_policy("autotiering-opm")
class AutoTieringOPM(_HintFaultPolicy):
    """Opportunistic: n-bit history demotion keeps room for promotions."""

    features = PolicyFeatures(
        tiering="AutoTiering (OPM)",
        page_access_tracking="Software Page Fault",
        selection_promotion="Recency",
        selection_demotion="Frequency",
        numa_aware="Yes",
        space_overhead="Yes",
        generality="All",
        evaluation="PM",
        usability_limitation="Config. NUMA Paths",
        key_insight="Maintain N-bit history for demotion",
    )

    make_room_on_promote = False
    track_history = True

    def daemons(self) -> list[Daemon]:
        cfg = self.system.config.daemons
        demoters = [
            Daemon(
                f"opm-demote/{node.node_id}",
                cfg.kswapd_interval_s,
                self._make_demoter(node),
            )
            for node in self.system.dram_nodes()
        ]
        return super().daemons() + demoters

    _DEMAND_SCAN_BUDGET = 32
    """Pages examined when a single fault needs room; kept small because
    this cost lands synchronously on the faulting access."""

    def _try_promote(self, page: Page) -> bool:
        if movement.promote_page(self.system, page, make_room=False):
            return True
        dest = movement.promotion_destination(self.system, page)
        if dest is None:
            return False
        demoted, scanned = self._demote_cold(dest, target=1, budget=self._DEMAND_SCAN_BUDGET)
        if scanned:
            self.system.clock.advance_system(self.system.hardware.scan_ns(scanned))
        if demoted == 0:
            return False
        return movement.promote_page(self.system, page, make_room=False)

    def _make_demoter(self, node: NumaNode):
        def run(now_ns: int) -> int:
            if node.pressure() is PressureLevel.NONE:
                return 0
            target = node.watermarks.reclaim_target(node.free_pages)
            budget = self.system.config.daemons.scan_budget_pages
            __, scanned = self._demote_cold(node, target, budget=budget)
            return self.system.hardware.scan_ns(scanned)

        return run

    def _demote_cold(self, node: NumaNode, target: int, budget: int) -> tuple[int, int]:
        """Demote DRAM pages whose n-bit history is all zeros.

        Returns ``(demoted, scanned)``; the caller charges the scan time,
        keeping demand-path and daemon-path accounting separate.
        """
        dest = movement.demotion_destination(self.system, node)
        if dest is None:
            return 0, 0
        demoted = 0
        scanned = 0
        for kind in (ListKind.INACTIVE, ListKind.ACTIVE):
            for is_anon in (True, False):
                lst = node.lruvec.list_for(kind, is_anon)
                for page in lst.iter_from_tail():
                    if demoted >= target or scanned >= budget:
                        break
                    scanned += 1
                    if (page.policy_data or 0) != 0:
                        continue
                    if page.test(PageFlags.LOCKED) or page.test(PageFlags.UNEVICTABLE):
                        continue
                    if not dest.can_allocate():
                        break
                    if self.system.migrator.migrate(page, dest).ok:
                        page.clear(PageFlags.REFERENCED)
                        page.clear(PageFlags.ACTIVE)
                        dest.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
                        demoted += 1
        self.system.stats.inc("opm.cold_demotions", demoted)
        return demoted, scanned
