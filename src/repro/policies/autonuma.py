"""AutoNUMA-tiering — hint-fault promotion with no demotion path.

Section II-D: "AutoNUMA-tiering ... use[s] a software page fault technique
called hint page fault to track the page access and use[s] recency to
identify hot pages for promotion."  Table I lists no demotion mechanism.
The paper did not evaluate it separately because AutoTiering-CPM is built
from it; we include it as an extra comparator since it exists upstream
(it became the basis of Linux's tiered NUMA balancing).
"""

from __future__ import annotations

from repro.policies.autotiering import _HintFaultPolicy
from repro.policies.base import PolicyFeatures, register_policy

__all__ = ["AutoNumaTiering"]


@register_policy("autonuma")
class AutoNumaTiering(_HintFaultPolicy):
    """Promote on hint fault when DRAM has room; never demote."""

    features = PolicyFeatures(
        tiering="AutoNUMA-Tiering",
        page_access_tracking="Software Page Fault",
        selection_promotion="Recency",
        selection_demotion="N/A",
        numa_aware="Yes",
        space_overhead="Yes",
        generality="All",
        evaluation="PM",
        usability_limitation="Config. NUMA Paths",
        key_insight="NUMA balancing",
    )

    make_room_on_promote = False
    track_history = False
