"""Nimble's page selection mechanism, re-implemented for comparison.

The paper isolates Nimble's hot/cold identification from its migration
optimisations: "we separated its hot/cold page identification technique
and implemented a single threaded Nimble page selection mechanism ...
for the singular purpose of comparing against MULTI-CLOCK's page
selection" (Section II-D).  Nimble "uses the existing page profiling
technique of the Linux kernel to exchange the top most recently accessed
pages in the upper tier" — i.e. *recency only*: any PM page whose
reference bit is found set during the periodic scan is a promotion
candidate, with no second-reference filter.  That is exactly why Nimble
promotes more pages than MULTI-CLOCK (Fig. 8) but a smaller share of
them are ever re-accessed from DRAM (Fig. 9).

Demotion is the recency-based watermark path (Table I row: demotion =
Recency), shared with MULTI-CLOCK via :class:`DemotionDaemon` — minus the
promote-list stage, which Nimble does not have.
"""

from __future__ import annotations

from repro.core.demotion import DemotionDaemon
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.system import MemorySystem
from repro.mm.vmscan import ScanResult
from repro.policies import movement
from repro.policies.base import PolicyFeatures, TieringPolicy, register_policy
from repro.sim.events import Daemon

__all__ = ["NimblePolicy"]


@register_policy("nimble")
class NimblePolicy(TieringPolicy):
    """Recency-only promotion of recently referenced PM pages."""

    features = PolicyFeatures(
        tiering="Nimble",
        page_access_tracking="Reference Bit",
        selection_promotion="Recency",
        selection_demotion="Recency",
        numa_aware="No",
        space_overhead="No",
        generality="All",
        evaluation="Emulator",
        usability_limitation="Config. Launcher",
        key_insight="Optimize huge page migrations",
    )

    def __init__(self, system: MemorySystem) -> None:
        super().__init__(system)
        self._kswapd = [DemotionDaemon(self, node) for node in system.nodes.values()]

    def daemons(self) -> list[Daemon]:
        cfg = self.system.config.daemons
        promoters = [
            Daemon(
                f"nimble-promote/{node.node_id}",
                cfg.kpromoted_interval_s,
                self._make_promoter(node),
            )
            for node in self.system.pm_nodes()
        ]
        swapd = [
            Daemon(ks.name, cfg.kswapd_interval_s, ks.run) for ks in self._kswapd
        ]
        return promoters + swapd

    # -- movement interface consumed by DemotionDaemon ------------------------

    def demotion_destination(self, node: NumaNode) -> NumaNode | None:
        return movement.demotion_destination(self.system, node)

    def promote_page(self, page: Page) -> bool:
        return movement.promote_page(self.system, page, make_room=True)

    # -- the recency-only promotion scan ---------------------------------------

    def _make_promoter(self, node: NumaNode):
        def run(now_ns: int) -> int:
            return self._promote_scan(node)

        return run

    def _promote_scan(self, node: NumaNode) -> int:
        """Promote every recently referenced page the budget reaches.

        Scans the node's active then inactive lists from the MRU end (the
        "top most recently accessed pages") and promotes each page whose
        reference bit is set — a single recent reference suffices.
        """
        system = self.system
        budget = system.config.daemons.scan_budget_pages
        result = ScanResult()
        for kind in (ListKind.ACTIVE, ListKind.INACTIVE):
            for is_anon in (True, False):
                lst = node.lruvec.list_for(kind, is_anon)
                for page in list(lst):  # head-first: most recent additions
                    if result.scanned >= budget:
                        break
                    result.scanned += 1
                    accessed = page.harvest_accessed() or page.test(PageFlags.REFERENCED)
                    if accessed and movement.promote_page(system, page, make_room=True):
                        system.stats.inc("nimble.promotions")
                    elif accessed:
                        page.set(PageFlags.REFERENCED)
        system.stats.inc("nimble.scan_runs")
        return system.hardware.scan_ns(result.scanned)
