"""Shared tier-movement helpers used by MULTI-CLOCK and the baselines.

Every dynamic policy in the evaluation ultimately promotes pages into the
roomiest DRAM node and, when DRAM is full, must decide whether to make
room by demand-demoting cold DRAM pages first.  These helpers implement
that mechanism once; the *selection* of which pages deserve to move is
what differentiates the policies.
"""

from __future__ import annotations

from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.system import MemorySystem
from repro.mm.vmscan import shrink_inactive_list

__all__ = [
    "roomiest",
    "promotion_destination",
    "demotion_destination",
    "promote_page",
    "demand_demote",
]


def roomiest(nodes: list[NumaNode]) -> NumaNode | None:
    """The node with the most free frames, or None for an empty list."""
    return max(nodes, key=lambda n: n.free_pages, default=None)


def owner_socket(system: MemorySystem, page: Page) -> int | None:
    """The home socket of the process mapping ``page`` (first mapping)."""
    for pte in page.rmap:
        process = system.processes.get(pte.process_id)
        if process is not None:
            return process.home_socket
    return None


def promotion_destination(
    system: MemorySystem, page: Page | None = None
) -> NumaNode | None:
    """Where promotions land: a DRAM node, preferring the owner's socket.

    NUMA awareness (Table I): promoting a page across the interconnect
    would trade PM latency for remote-DRAM latency, so the owner's local
    DRAM node wins whenever it exists; among equals, most free frames.
    """
    candidates = system.dram_nodes()
    if not candidates:
        return None
    socket = owner_socket(system, page) if page is not None else None
    if socket is not None:
        local = [node for node in candidates if node.socket == socket]
        remote = [node for node in candidates if node.socket != socket]
        with_room = [node for node in local if node.can_allocate()]
        if with_room:
            return roomiest(with_room)
        if local:
            # Local exists but is full: demand demotion happens there
            # rather than spilling the hot page to a remote socket.
            return roomiest(local)
        candidates = remote
    return roomiest(candidates)


def demotion_destination(system: MemorySystem, node: NumaNode) -> NumaNode | None:
    """Where ``node`` demotes to: one tier down, same socket first."""
    lower = node.tier.next_lower()
    if lower is None:
        return None
    candidates = system.nodes_in_tier(lower)
    local = [n for n in candidates if n.socket == node.socket and n.can_allocate()]
    if local:
        return roomiest(local)
    return roomiest(candidates)


def promote_page(
    system: MemorySystem,
    page: Page,
    *,
    make_room: bool = True,
    place: ListKind = ListKind.ACTIVE,
) -> bool:
    """Migrate ``page`` up to DRAM, optionally demand-demoting for room.

    ``make_room=False`` is the *conservative* mode (AutoTiering-CPM,
    which "migrate[s] pages to the best NUMA node" only when space
    exists); ``make_room=True`` reproduces Section III-C's "promotions
    from the lower tier result in immediate page demotions".
    """
    if system.tier_of(page) is MemoryTier.DRAM:
        return False
    dest = promotion_destination(system, page)
    if dest is None:
        return False
    if not dest.can_allocate():
        if not make_room or not demand_demote(system, dest, pages=1):
            return False
    outcome = system.migrator.migrate_with_retry(page, dest)
    if not outcome.ok:
        return False
    page.clear(PageFlags.PROMOTE)
    page.clear(PageFlags.REFERENCED)
    if place is ListKind.ACTIVE:
        page.set(PageFlags.ACTIVE)
    else:
        page.clear(PageFlags.ACTIVE)
    dest.lruvec.list_of(page, place).add_head(page)
    return True


def demand_demote(system: MemorySystem, dram_node: NumaNode, pages: int) -> bool:
    """Free ``pages`` frames on ``dram_node`` by demoting cold pages down.

    First asks the PFRA scan for unreferenced inactive-tail pages; if the
    scan finds none (everything recently touched), forces the inactive
    tail out anyway so promotions cannot deadlock against a full tier.
    """
    dest = demotion_destination(system, dram_node)
    if dest is None or not dest.can_allocate():
        return False
    freed = 0
    for is_anon in (True, False):
        if freed >= pages:
            break
        result = shrink_inactive_list(
            system, dram_node, is_anon,
            target_free=pages - freed, budget=64, demote_dest=dest,
            scanner="demand",
        )
        freed += result.demoted + result.evicted
    if freed >= pages:
        return True
    for is_anon in (True, False):
        inactive = dram_node.lruvec.list_for(ListKind.INACTIVE, is_anon)
        for page in inactive.iter_from_tail():
            if freed >= pages:
                return True
            if page.test(PageFlags.LOCKED) or page.test(PageFlags.UNEVICTABLE):
                continue
            if system.migrator.migrate_with_retry(page, dest).ok:
                page.clear(PageFlags.REFERENCED)
                dest.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
                freed += 1
    return freed >= pages
