"""Static tiering — the paper's normalization baseline.

"A memory page, once mapped to a tier, may not get reassigned to a
different tier during its lifetime" (Section II-D).  Pages are born in
DRAM while it lasts, fall back to PM afterwards, and never migrate.  The
only reclaim is the ordinary swap path when *all* memory is exhausted,
inherited from the base class.
"""

from __future__ import annotations

from repro.policies.base import PolicyFeatures, TieringPolicy, register_policy

__all__ = ["StaticTieringPolicy"]


@register_policy("static")
class StaticTieringPolicy(TieringPolicy):
    """No page movement between tiers, ever."""

    features = PolicyFeatures(
        tiering="Static-Tiering",
        page_access_tracking="N/A",
        selection_promotion="N/A",
        selection_demotion="N/A",
        numa_aware="Yes",
        space_overhead="N/A",
        generality="All",
        evaluation="PM",
        usability_limitation="None",
        key_insight="Straight forward",
    )
