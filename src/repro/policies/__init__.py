"""Tiering policies: MULTI-CLOCK's comparison baselines.

Importing this package registers every baseline in the policy registry;
the MULTI-CLOCK policy itself lives in :mod:`repro.core` and registers on
import as well.
"""

from repro.policies.base import (
    PolicyFeatures,
    TieringPolicy,
    create_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "PolicyFeatures",
    "TieringPolicy",
    "create_policy",
    "policy_names",
    "register_policy",
]


def _register_builtin_policies() -> None:
    """Import modules for their registration side effect."""
    from repro import core as _core  # noqa: F401
    from repro.policies import autonuma as _autonuma  # noqa: F401
    from repro.policies import autotiering as _autotiering  # noqa: F401
    from repro.policies import memory_mode as _memory_mode  # noqa: F401
    from repro.policies import nimble as _nimble  # noqa: F401
    from repro.policies import static as _static  # noqa: F401


_register_builtin_policies()
