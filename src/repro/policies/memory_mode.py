"""Persistent memory in Memory-mode (2LM), hardware DRAM caching.

Section II-B: "DRAM is directly mapped as the cache for data stored in
PM ... The system recognizes only the PM as memory", so "the available
DRAM capacity is unusable by the operating system".  We model that with:

* allocation restricted to PM nodes (the OS never sees DRAM frames);
* a page-granular direct-mapped DRAM cache in front of every access —
  a hit costs DRAM latency, a miss costs the PM access plus the cache
  fill, plus a PM write-back when the evicted line was dirty.

Cache fills are hardware operations, orders of magnitude cheaper than a
software ``migrate_pages()``, which is why Memory-mode is competitive
with software tiering (Fig. 7) despite having no placement intelligence.
Three costs keep it honest, as on real 2LM hardware:

* the cache is *sectored* — a miss fills only the touched sector, so a
  page's residency is earned sector by sector (the near-memory cache
  tracks sub-page lines, not whole pages);
* the tags live in DRAM, so every access pays a metadata probe on top of
  the data access, and fills/dirty write-backs pay metadata updates;
* direct mapping means conflict evictions, and dirty sectors flush to PM.
"""

from __future__ import annotations

from repro.mm.alloc import PageAllocator
from repro.mm.page import Page
from repro.mm.system import MemorySystem
from repro.policies.base import PolicyFeatures, TieringPolicy, register_policy

__all__ = ["MemoryModePolicy", "SECTORS_PER_PAGE", "TAG_PROBE_NS"]

SECTORS_PER_PAGE = 4
"""Cache sectors per 4 KiB page (1 KiB sectors)."""

TAG_PROBE_NS = 15
"""DRAM-resident tag/metadata probe charged on every access."""

HIT_OVERHEAD_NS = 20
"""Per-line controller overhead on a cache hit: measured 2LM hit latency
runs ~25% above bare DRAM (the request traverses the near-memory cache
controller and its DRAM-resident tags)."""

MISS_OVERHEAD_NS = 90
"""Per-line overhead on a miss beyond the raw PM access: tag probe miss,
fill scheduling and metadata update in the memory controller."""

_LINES_PER_PAGE = 64
_LINES_PER_SECTOR = _LINES_PER_PAGE // SECTORS_PER_PAGE
_ALL_SECTORS = (1 << SECTORS_PER_PAGE) - 1


@register_policy("memory-mode")
class MemoryModePolicy(TieringPolicy):
    """DRAM as a direct-mapped page cache; PM is the only visible memory."""

    features = PolicyFeatures(
        tiering="Memory-mode",
        page_access_tracking="Hardware (cache)",
        selection_promotion="Direct-mapped cache fill",
        selection_demotion="Cache eviction",
        numa_aware="Per-socket cache",
        space_overhead="N/A",
        generality="All",
        evaluation="PM",
        usability_limitation="DRAM capacity hidden from OS",
        key_insight="System-supported DRAM caching",
    )

    def __init__(self, system: MemorySystem) -> None:
        super().__init__(system)
        pm_nodes = system.pm_nodes()
        if not pm_nodes:
            raise ValueError("Memory-mode needs at least one PM node")
        # The OS only recognises PM as memory.
        system.allocator = PageAllocator(pm_nodes)
        self._cache_slots = max(1, system.config.total_dram_pages)
        self._tags: dict[int, int] = {}
        self._valid: dict[int, int] = {}  # slot -> sector presence bitmap
        self._dirty: dict[int, int] = {}  # slot -> dirty sector bitmap
        self._c_hits = system.stats.counter("memcache.hits")
        self._c_misses = system.stats.counter("memcache.misses")
        self._c_writebacks = system.stats.counter("memcache.writebacks")

    @property
    def cache_slots(self) -> int:
        return self._cache_slots

    def charge_access(self, page: Page, is_write: bool, lines: int = 1) -> int:
        """Latency through the sectored direct-mapped near-memory cache.

        An access spanning ``lines`` cache lines covers
        ``ceil(lines / lines-per-sector)`` sectors; each sector is served
        from DRAM when valid or from PM (plus the fill) when not.
        """
        latency = self.system.hardware.latency
        slot = page.pfn % self._cache_slots
        resident = self._tags.get(slot)
        cost = TAG_PROBE_NS
        if resident != page.pfn:
            # Conflict (or cold) eviction: dirty sectors flush to PM.
            if resident is not None and self._dirty.get(slot, 0):
                cost += latency.pm_write_ns
                self._c_writebacks.n += 1
            self._tags[slot] = page.pfn
            self._valid[slot] = 0
            self._dirty[slot] = 0
        sectors = max(1, (lines + _LINES_PER_SECTOR - 1) // _LINES_PER_SECTOR)
        lines_per_sector = max(1, lines // sectors)
        valid = self._valid.get(slot, 0)
        dram_ns = latency.dram_write_ns if is_write else latency.dram_read_ns
        pm_ns = latency.pm_write_ns if is_write else latency.pm_read_ns
        for sector in range(sectors):
            mask = 1 << (sector % SECTORS_PER_PAGE)
            if valid & mask:
                self._c_hits.n += 1
                cost += lines_per_sector * (dram_ns + HIT_OVERHEAD_NS)
            else:
                self._c_misses.n += 1
                cost += lines_per_sector * (pm_ns + MISS_OVERHEAD_NS)
                cost += latency.dram_write_ns  # sector fill + tag update
                valid |= mask
            if is_write:
                self._dirty[slot] = self._dirty.get(slot, 0) | mask
        self._valid[slot] = valid
        return cost

    def hit_rate(self) -> float:
        """Fraction of accesses served from the DRAM cache so far."""
        hits = self.system.stats.get("memcache.hits")
        misses = self.system.stats.get("memcache.misses")
        total = hits + misses
        return hits / total if total else 0.0
