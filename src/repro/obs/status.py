"""The live ``<out>.status.json`` sidecar and the ``repro top`` view.

The driver rewrites one small JSON file atomically (tmp + ``os.replace``,
the same protocol the manifest and result cache use) so any number of
``repro top`` processes can poll it without coordination: a reader sees
either the previous complete snapshot or the next one, never a torn
write.  Rewrites are throttled to :data:`MIN_REWRITE_INTERVAL_S` except
on state transitions, so a thousand-cell sweep does not spend its wall
time in ``fsync``-adjacent churn.

The file is self-describing::

    {"version": 1, "state": "running", "trace": "9f2c…",
     "spec": "repro-sweep", "total": 25,
     "started_unix": ..., "updated_unix": ...,
     "cells": {"pending": 7, "leased": 4, "done": 12, "failed": 2,
               "cached": 3, "resumed": 0, "retries": 1},
     "cache_hits": 1, "stragglers": 0, "duplicates": 0,
     "rate_cells_per_s": 1.8, "eta_s": 6.1,
     "hosts": {"loopback#0": {"state": "ready", "busy": 2, "done": 6,
                              "failed": 0, "reconnects": 0,
                              "heartbeat_age_s": 0.4, "workers": 2}}}

``state`` moves ``running`` → ``done`` | ``failed`` | ``interrupted``;
``repro top`` (without ``--once``) exits when it leaves ``running``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from repro.sweep.manifest import atomic_write_json

__all__ = [
    "StatusBoard",
    "read_status",
    "render_top",
    "render_prometheus",
    "MIN_REWRITE_INTERVAL_S",
]

_VERSION = 1
#: Floor between on-disk rewrites while counts merely tick forward.
MIN_REWRITE_INTERVAL_S = 0.25


class StatusBoard:
    """Maintains the atomically-rewritten status sidecar for one sweep."""

    def __init__(self, path: str, *, total: int, spec: str,
                 trace: str | None = None) -> None:
        self.path = path
        self.total = total
        self.spec = spec
        self.trace = trace
        self.started = time.time()
        self.state = "running"
        self._last_write = 0.0
        self._counts: dict[str, int] = {}
        self._hosts: dict[str, dict[str, Any]] = {}
        self._pending = total
        self._leased = 0
        self._extra: dict[str, int] = {}
        self.update(force=True)

    def update(self, *, pending: int | None = None, leased: int | None = None,
               counts: dict[str, int] | None = None,
               hosts: dict[str, dict[str, Any]] | None = None,
               extra: dict[str, int] | None = None,
               force: bool = False) -> None:
        """Fold new numbers in and rewrite the file (throttled)."""
        if pending is not None:
            self._pending = pending
        if leased is not None:
            self._leased = leased
        if counts is not None:
            self._counts = dict(counts)
        if hosts is not None:
            self._hosts = hosts
        if extra is not None:
            self._extra = dict(extra)
        now = time.time()
        if not force and now - self._last_write < MIN_REWRITE_INTERVAL_S:
            return
        self._last_write = now
        atomic_write_json(self.path, self._snapshot(now), indent=2)

    def finish(self, state: str) -> None:
        """Final rewrite with the terminal state; idempotent."""
        if self.state != "running":
            return
        self.state = state
        self._pending = 0
        self._leased = 0
        self.update(force=True)

    def _snapshot(self, now: float) -> dict[str, Any]:
        done = self._counts.get("done", 0)
        failed = self._counts.get("failed", 0)
        settled = done + failed
        elapsed = max(1e-9, now - self.started)
        rate = settled / elapsed
        remaining = max(0, self.total - settled)
        eta = remaining / rate if rate > 0 and self.state == "running" else 0.0
        return {
            "version": _VERSION,
            "state": self.state,
            "trace": self.trace,
            "spec": self.spec,
            "total": self.total,
            "started_unix": round(self.started, 3),
            "updated_unix": round(now, 3),
            "cells": {
                "pending": self._pending,
                "leased": self._leased,
                "done": done,
                "failed": failed,
                "cached": self._counts.get("cached", 0),
                "resumed": self._counts.get("resumed", 0),
                "retries": self._counts.get("retries", 0),
            },
            "cache_hits": self._extra.get("cache_hits", 0),
            "stragglers": self._extra.get("stragglers", 0),
            "duplicates": self._extra.get("duplicates", 0),
            "rate_cells_per_s": round(rate, 3),
            "eta_s": round(eta, 1),
            "hosts": self._hosts,
        }


def read_status(path: str) -> dict[str, Any]:
    """Load one status snapshot; raises ``ValueError`` with a one-line
    operator message when the file is absent or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            status = json.load(fh)
    except FileNotFoundError:
        raise ValueError(
            f"status file not found: {path} (is the sweep running with "
            f"the same --out, or finished long ago?)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable status file {path}: {exc}") from None
    if not isinstance(status, dict) or "cells" not in status:
        raise ValueError(f"{path} is not a sweep status file")
    return status


def _bar(done: int, failed: int, total: int, width: int = 40) -> str:
    total = max(1, total)
    ok = round(width * done / total)
    bad = round(width * failed / total)
    ok = min(ok, width)
    bad = min(bad, width - ok)
    return "#" * ok + "x" * bad + "." * (width - ok - bad)


def render_top(status: dict[str, Any]) -> str:
    """One screenful of sweep progress — the ``repro top`` body."""
    cells = status.get("cells", {})
    total = status.get("total", 0)
    done = cells.get("done", 0)
    failed = cells.get("failed", 0)
    age = max(0.0, status.get("updated_unix", 0.0)
              - status.get("started_unix", 0.0))
    lines = [
        f"sweep {status.get('spec', '?')} — {status.get('state', '?')}"
        f"  ({age:.1f}s elapsed)",
        f"[{_bar(done, failed, total)}] {done + failed}/{total}",
        f"  done {done}  failed {failed}"
        f"  leased {cells.get('leased', 0)}"
        f"  pending {cells.get('pending', 0)}"
        f"  cached {cells.get('cached', 0)}"
        f"  resumed {cells.get('resumed', 0)}"
        f"  retries {cells.get('retries', 0)}",
        f"  cache hits {status.get('cache_hits', 0)}"
        f"  stragglers {status.get('stragglers', 0)}"
        f"  duplicates {status.get('duplicates', 0)}"
        f"  rate {status.get('rate_cells_per_s', 0.0):.2f} cells/s"
        f"  eta {status.get('eta_s', 0.0):.0f}s",
    ]
    hosts = status.get("hosts") or {}
    if hosts:
        lines.append("  host               state        busy  done  fail"
                     "  reconn  hb age")
        for name in sorted(hosts):
            h = hosts[name]
            beat = h.get("heartbeat_age_s")
            beat_s = f"{beat:.1f}s" if isinstance(beat, (int, float)) else "-"
            lines.append(
                f"  {name:<18} {h.get('state', '?'):<12}"
                f" {h.get('busy', 0):>4}  {h.get('done', 0):>4}"
                f"  {h.get('failed', 0):>4}  {h.get('reconnects', 0):>6}"
                f"  {beat_s:>6}"
            )
    return "\n".join(lines)


def render_prometheus(status: dict[str, Any]) -> str:
    """The status snapshot as Prometheus text exposition — the same
    format the metrics registry speaks, so one scraper covers both the
    simulated machine and the sweep control plane."""
    cells = status.get("cells", {})
    state = status.get("state", "unknown")
    out = [
        "# TYPE repro_sweep_cells gauge",
    ]
    for key in ("pending", "leased", "done", "failed", "cached",
                "resumed", "retries"):
        out.append(f'repro_sweep_cells{{state="{key}"}} {cells.get(key, 0)}')
    out.append("# TYPE repro_sweep_total gauge")
    out.append(f"repro_sweep_total {status.get('total', 0)}")
    out.append("# TYPE repro_sweep_running gauge")
    out.append(f"repro_sweep_running {1 if state == 'running' else 0}")
    out.append("# TYPE repro_sweep_rate_cells_per_s gauge")
    out.append(
        f"repro_sweep_rate_cells_per_s {status.get('rate_cells_per_s', 0.0)}"
    )
    for name in sorted(status.get("hosts") or {}):
        h = status["hosts"][name]
        beat = h.get("heartbeat_age_s")
        if isinstance(beat, (int, float)):
            out.append(
                f'repro_sweep_host_heartbeat_age_s{{host="{name}"}} {beat}'
            )
        out.append(
            f'repro_sweep_host_busy{{host="{name}"}} {h.get("busy", 0)}'
        )
    return "\n".join(out) + "\n"
