"""Span-based structured event journal for the sweep control plane.

The *simulated machine* already has tracepoints (:mod:`repro.trace`);
this module gives the **orchestration layer** — the driver, its host
agents, and their pool workers — the same property: every interesting
state change is one structured NDJSON line, cheap enough to leave on,
and the file folds into a merged timeline (:mod:`repro.obs.timeline`)
and a wall-time attribution table (:mod:`repro.obs.profile`).

One event per line::

    {"trace": "9f2c…", "seq": 17, "t": 1723100000.421,
     "ev": "begin" | "end" | "point",
     "span": "lease", "sid": "d12",
     "actor": "driver" | "host/loopback#0" | "worker/loopback#0/4711",
     "cell": "multiclock/zipf/s42", "lease": "L3",
     "fields": {...}}

* ``trace`` is the sweep-wide trace id; every process that touches the
  sweep stamps it, so journals never mix runs.
* ``sid`` identifies one span: a ``begin`` opens it, the matching
  ``end`` closes it, ``point`` events have no duration.  Agent-side
  sids are namespaced by host on receipt (``loopback#0/a3``), so two
  agents' counters can never collide.
* ``cell`` is the per-cell **correlation id** (the sweep cell id is
  unique within a spec): a re-dispatched cell's two ``cell.run`` spans
  on two different hosts share it, which is what lets a timeline show
  the re-run.
* Timestamps are **host wall-clock seconds** (``time.time()``) — the
  control plane is real processes on real machines, unlike the
  simulator's virtual nanoseconds.  Loopback agents share the driver's
  clock exactly; ssh agents are as aligned as their NTP is, which the
  viewer tolerates and the profiler never needs (it only differences
  same-process timestamps).

The writer guarantees **every begin gets an end**: :meth:`Journal.close`
synthesises ``end`` events (``fields.aborted = true``) for spans still
open — a SIGKILLed agent's in-flight ``cell.run``, a SIGINT'd sweep's
``sweep`` span — so consumers can always pair spans without special
cases.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "Journal",
    "Span",
    "new_trace_id",
    "read_journal",
    "pair_spans",
]


def new_trace_id() -> str:
    """A fresh sweep-wide trace id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


class Journal:
    """Append-only NDJSON span journal for one sweep run.

    Thread-safe (the remote scheduler's reader threads never write, but
    the lock keeps that a non-assumption).  Lines are flushed as they
    are written so `repro top`-adjacent tooling — and a post-mortem on
    a killed driver — always sees a prefix of the truth, never a torn
    line.
    """

    def __init__(self, path: str, *, trace_id: str | None = None) -> None:
        self.path = path
        self.trace_id = trace_id or new_trace_id()
        self._fh = open(path, "w", encoding="utf-8")
        self._seq = 0
        self._sid = 0
        self._lock = threading.Lock()
        #: sid -> skeleton of the open span (used to synthesise ends).
        self._open: dict[str, dict[str, Any]] = {}
        self.closed = False

    # -- emission ------------------------------------------------------------

    def _write(self, record: dict[str, Any]) -> None:
        self._seq += 1
        record["trace"] = self.trace_id
        record["seq"] = self._seq
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def begin(self, span: str, *, actor: str = "driver",
              cell: str | None = None, lease: str | None = None,
              t: float | None = None, **fields: Any) -> str:
        """Open a span; returns its sid (pass to :meth:`end`)."""
        with self._lock:
            self._sid += 1
            sid = f"d{self._sid}"
            record: dict[str, Any] = {
                "ev": "begin", "span": span, "sid": sid, "actor": actor,
                "t": time.time() if t is None else t,
            }
            if cell is not None:
                record["cell"] = cell
            if lease is not None:
                record["lease"] = lease
            if fields:
                record["fields"] = fields
            self._open[sid] = {
                "span": span, "actor": actor, "cell": cell, "lease": lease,
            }
            self._write(record)
            return sid

    def end(self, sid: str | None, *, t: float | None = None,
            **fields: Any) -> None:
        """Close the span ``sid``; unknown/already-closed sids are a no-op
        (a lease can be settled by a result *and* reaped by host loss)."""
        if sid is None:
            return
        with self._lock:
            skeleton = self._open.pop(sid, None)
            if skeleton is None:
                return
            self._end_locked(sid, skeleton, t, fields)

    def _end_locked(self, sid: str, skeleton: dict[str, Any],
                    t: float | None, fields: dict[str, Any]) -> None:
        record: dict[str, Any] = {
            "ev": "end", "span": skeleton["span"], "sid": sid,
            "actor": skeleton["actor"],
            "t": time.time() if t is None else t,
        }
        if skeleton.get("cell") is not None:
            record["cell"] = skeleton["cell"]
        if skeleton.get("lease") is not None:
            record["lease"] = skeleton["lease"]
        if fields:
            record["fields"] = fields
        self._write(record)

    def point(self, span: str, *, actor: str = "driver",
              cell: str | None = None, lease: str | None = None,
              t: float | None = None, **fields: Any) -> None:
        """A durationless event (heartbeat received, cache hit, note)."""
        with self._lock:
            record: dict[str, Any] = {
                "ev": "point", "span": span, "sid": "", "actor": actor,
                "t": time.time() if t is None else t,
            }
            if cell is not None:
                record["cell"] = cell
            if lease is not None:
                record["lease"] = lease
            if fields:
                record["fields"] = fields
            self._write(record)

    def record_remote(self, host: str, events: Iterable[Any]) -> None:
        """Stitch agent-shipped events onto this journal.

        The agent only knows its own pid-local view; the driver knows
        which host the transport belongs to, so actor names and sids are
        namespaced here: ``worker/4711`` becomes
        ``worker/<host>/4711``, every other actor becomes
        ``host/<host>``, and sids become ``<host>/<sid>``.  Begin/end
        pairing is tracked for these spans too, so an agent that dies
        mid-span still gets its synthetic ``aborted`` end at close time.
        """
        with self._lock:
            for event in events:
                if not isinstance(event, dict) or event.get("ev") not in (
                        "begin", "end", "point"):
                    continue
                record = dict(event)
                actor = str(record.get("actor", ""))
                if actor.startswith("worker/"):
                    record["actor"] = f"worker/{host}/{actor[len('worker/'):]}"
                else:
                    record["actor"] = f"host/{host}"
                sid = str(record.get("sid", ""))
                if sid:
                    record["sid"] = f"{host}/{sid}"
                record.setdefault("t", time.time())
                if record["ev"] == "begin":
                    self._open[record["sid"]] = {
                        "span": record.get("span", ""),
                        "actor": record["actor"],
                        "cell": record.get("cell"),
                        "lease": record.get("lease"),
                    }
                elif record["ev"] == "end":
                    self._open.pop(record.get("sid", ""), None)
                self._write(record)

    def close(self, **fields: Any) -> None:
        """Synthesise ends for every still-open span, then close the file.

        Idempotent.  The synthetic ends carry ``aborted: true`` — the
        honest record of a span whose real end never happened (killed
        agent, interrupted sweep)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            now = time.time()
            for sid, skeleton in list(self._open.items()):
                self._end_locked(sid, skeleton, now,
                                 {"aborted": True, **fields})
            self._open.clear()
            self._fh.close()


# -----------------------------------------------------------------------------
# Reading side
# -----------------------------------------------------------------------------


@dataclass
class Span:
    """One paired begin/end from a journal."""

    sid: str
    span: str
    actor: str
    t0: float
    t1: float | None = None
    cell: str | None = None
    lease: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.t1 is not None

    @property
    def aborted(self) -> bool:
        return bool(self.fields.get("aborted"))

    @property
    def duration(self) -> float:
        return 0.0 if self.t1 is None else max(0.0, self.t1 - self.t0)


def read_journal(path: str) -> list[dict[str, Any]]:
    """All decodable events of a journal file, in file (= seq) order.

    A torn final line (driver killed mid-write) is skipped, never an
    error — a journal must be readable at any point of its life.
    """
    events: list[dict[str, Any]] = []
    if not os.path.exists(path):
        return events
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and event.get("ev") in (
                    "begin", "end", "point"):
                events.append(event)
    return events


def pair_spans(events: Iterable[dict[str, Any]]) -> list[Span]:
    """Fold begin/end events into :class:`Span` records.

    Ends merge their fields over the begin's.  A begin without an end
    yields an *incomplete* span (``t1 is None``) — :meth:`Journal.close`
    makes that impossible for journals it finished, but a reader must
    survive a journal whose writer was SIGKILLed.
    """
    spans: dict[str, Span] = {}
    order: list[str] = []
    for event in events:
        ev = event.get("ev")
        sid = event.get("sid") or ""
        if ev == "begin" and sid:
            spans[sid] = Span(
                sid=sid,
                span=str(event.get("span", "")),
                actor=str(event.get("actor", "")),
                t0=float(event.get("t", 0.0)),
                cell=event.get("cell"),
                lease=event.get("lease"),
                fields=dict(event.get("fields") or {}),
            )
            order.append(sid)
        elif ev == "end" and sid in spans:
            span = spans[sid]
            if span.t1 is None:
                span.t1 = float(event.get("t", span.t0))
                span.fields.update(event.get("fields") or {})
    return [spans[sid] for sid in order]
