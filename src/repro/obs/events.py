"""The control-plane event catalog and its human-readable formatters.

Before PR 10 the schedulers narrated themselves with pre-formatted
``note("...")`` strings — readable, but dead on arrival for tooling.
Every one of those lines is now a *structured event*: the schedulers
emit ``obs.emit("cell.done", cell=..., attempt=..., ...)`` and this
module owns turning the fields back into the exact strings operators
(and the fault-path tests) already grep for.  The journal records the
fields; the string is a *rendering*, produced on demand.

Adding an event means adding one formatter here — the schedulers never
format prose again.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["render_event", "EVENT_FORMATTERS"]


def _where(fields: dict[str, Any]) -> str:
    host = fields.get("host")
    return f" on {host}" if host else ""


def _cell_resumed(f: dict[str, Any]) -> str:
    return (f"{f['cell']}: resumed from manifest "
            f"(done in {f['attempts']} attempt(s))")


def _cell_cache_hit(f: dict[str, Any]) -> str:
    if f.get("when") == "redispatch":
        return (f"[{f['done']}/{f['total']}] {f['cell']}: "
                f"served from result cache ({f['key']})")
    return f"{f['cell']}: cache hit ({f['key']})"


def _cell_done(f: dict[str, Any]) -> str:
    return (f"[{f['done']}/{f['total']}] {f['cell']}: "
            f"done{_where(f)} (attempt {f['attempt']})")


def _cell_retry(f: dict[str, Any]) -> str:
    return (f"{f['cell']}: attempt {f['attempt']} failed{_where(f)} "
            f"({f['error']}); retrying")


def _cell_failed(f: dict[str, Any]) -> str:
    return (f"[{f['done']}/{f['total']}] {f['cell']}: FAILED after "
            f"{f['attempt']} attempt(s): {f['error']}")


def _cell_interrupted(f: dict[str, Any]) -> str:
    return f"{f['cell']}: interrupted in flight; recorded as pending"


def _cell_redispatch(f: dict[str, Any]) -> str:
    return f"{f['cell']}: host {f['host']} lost mid-cell; re-dispatching"


def _cell_duplicate(f: dict[str, Any]) -> str:
    return f"{f['cell']}: late/duplicate result from {f['host']} discarded"


def _cell_straggler(f: dict[str, Any]) -> str:
    return (f"{f['cell']}: straggling on {f['host']} "
            f"({f['elapsed_s']:.2f}s); duplicating to {f['to']}")


def _host_ready(f: dict[str, Any]) -> str:
    return f"host {f['host']}: ready ({f['workers']} worker(s))"


def _host_lost(f: dict[str, Any]) -> str:
    return (f"host {f['host']}: lost ({f['reason']}); reconnect "
            f"{f['attempt']}/{f['limit']} in {f['delay_s']:.2f}s")


def _host_dead(f: dict[str, Any]) -> str:
    return f"host {f['host']}: dead ({f['reason']})"


def _sweep_degraded(f: dict[str, Any]) -> str:
    return (f"all {f['hosts']} host(s) lost; degrading to the "
            f"local pool for {f['cells']} cell(s)")


EVENT_FORMATTERS: dict[str, Callable[[dict[str, Any]], str]] = {
    "cell.resumed": _cell_resumed,
    "cell.cache_hit": _cell_cache_hit,
    "cell.done": _cell_done,
    "cell.retry": _cell_retry,
    "cell.failed": _cell_failed,
    "cell.interrupted": _cell_interrupted,
    "cell.redispatch": _cell_redispatch,
    "cell.duplicate": _cell_duplicate,
    "cell.straggler": _cell_straggler,
    "host.ready": _host_ready,
    "host.lost": _host_lost,
    "host.dead": _host_dead,
    "sweep.degraded": _sweep_degraded,
}


def render_event(event: str, fields: dict[str, Any]) -> str | None:
    """The human-readable line for ``event``, or None for events that
    have no prose form (an unknown event never crashes a sweep)."""
    formatter = EVENT_FORMATTERS.get(event)
    if formatter is None:
        return None
    try:
        return formatter(fields)
    except (KeyError, TypeError, ValueError):
        # A malformed emit site loses its narration, never the sweep.
        return f"{event}: {fields!r}"
