"""Journal → Chrome trace-event records: the ``repro timeline`` export.

One *process lane* (pid) per control-plane actor group — the driver,
each host agent, and the degraded-mode local pool — with worker
processes as threads (tid) inside their host's lane.  A 2-host
kill-agent sweep therefore renders as ≥ 3 lanes, and a re-dispatched
cell is visible as two ``cell.run`` slices with the same cell id: one
aborted on the killed host, one completed on the survivor.

Span mapping:

* driver spans (``sweep``, ``prepare``, ``dispatch``, ``merge``) —
  complete ``"X"`` slices on the driver lane; they nest by construction.
* ``lease`` spans — async ``"b"``/``"e"`` pairs keyed by lease sid,
  because leases overlap freely on the driver and synchronous slices
  on one thread must nest.
* ``ssh.connect`` / ``reconnect`` — ``"X"`` slices on the host's lane.
* ``cell.run`` — ``"X"`` slices on the owning worker's thread.
* points (``heartbeat``, ``commit``, ``cell.*`` notes) — ``"i"``
  instants on their actor's lane.

Timestamps are journal wall-clock seconds rebased to the first event
and scaled to microseconds (the trace-event unit).  The writer itself
is shared with the simulator's tracepoint export
(:func:`repro.trace.export.write_trace_events`).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.journal import pair_spans

__all__ = ["timeline_records", "DRIVER_LANE"]

DRIVER_LANE = "driver"
_US = 1_000_000.0

#: Driver-lane spans rendered as async pairs because they overlap.
_ASYNC_SPANS = {"lease"}


class _Lanes:
    """Stable actor → (pid, tid) assignment, first-seen order."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[int, str], int] = {}
        self.meta: list[dict[str, Any]] = []

    def _group(self, actor: str) -> tuple[str, str]:
        """(process key, thread key) for one actor string."""
        if actor.startswith("host/"):
            return actor, "agent"
        if actor.startswith("worker/"):
            rest = actor[len("worker/"):]
            host, _, pid = rest.rpartition("/")
            if host == "local":
                return "local pool", f"worker {pid}"
            return f"host/{host}", f"worker {pid}"
        return DRIVER_LANE, "driver"

    def locate(self, actor: str) -> tuple[int, int]:
        process, thread = self._group(actor)
        if process not in self.pids:
            self.pids[process] = len(self.pids) + 1
            self.meta.append({
                "name": "process_name", "ph": "M",
                "pid": self.pids[process], "tid": 0,
                "args": {"name": process},
            })
        pid = self.pids[process]
        key = (pid, thread)
        if key not in self.tids:
            tid = sum(1 for (p, _t) in self.tids if p == pid)
            self.tids[key] = tid
            self.meta.append({
                "name": "thread_name", "ph": "M",
                "pid": pid, "tid": tid,
                "args": {"name": thread},
            })
        return pid, self.tids[key]


def timeline_records(
    events: Iterable[dict[str, Any]],
) -> tuple[list[dict[str, Any]], int]:
    """Fold journal events into trace records; returns ``(records, lanes)``
    where ``lanes`` is the number of process lanes produced."""
    events = list(events)
    if not events:
        return [], 0
    epoch = min(float(e.get("t", 0.0)) for e in events)
    lanes = _Lanes()
    records: list[dict[str, Any]] = []

    def args_for(cell: str | None, lease: str | None,
                 fields: dict[str, Any]) -> dict[str, Any]:
        args = dict(fields)
        if cell:
            args["cell"] = cell
        if lease:
            args["lease"] = lease
        return args

    for span in pair_spans(events):
        pid, tid = lanes.locate(span.actor)
        t0_us = (span.t0 - epoch) * _US
        t1_us = ((span.t1 if span.t1 is not None else span.t0) - epoch) * _US
        name = f"{span.span} {span.cell}" if span.cell else span.span
        args = args_for(span.cell, span.lease, span.fields)
        if span.span in _ASYNC_SPANS:
            common = {"name": name, "cat": span.span, "id": span.sid,
                      "pid": pid, "tid": tid, "args": args}
            records.append({**common, "ph": "b", "ts": t0_us})
            records.append({**common, "ph": "e", "ts": t1_us})
        else:
            records.append({
                "name": name, "ph": "X", "ts": t0_us,
                "dur": max(0.0, t1_us - t0_us),
                "pid": pid, "tid": tid, "args": args,
            })

    for event in events:
        if event.get("ev") != "point":
            continue
        pid, tid = lanes.locate(str(event.get("actor", DRIVER_LANE)))
        cell = event.get("cell")
        name = str(event.get("span", "point"))
        records.append({
            "name": f"{name} {cell}" if cell else name,
            "ph": "i", "s": "t",
            "ts": (float(event.get("t", epoch)) - epoch) * _US,
            "pid": pid, "tid": tid,
            "args": args_for(cell, event.get("lease"),
                             dict(event.get("fields") or {})),
        })

    return lanes.meta + records, len(lanes.pids)
