"""Fold a sweep journal into a wall-time attribution table.

Two complementary views of the same run:

* **phases** — an exact partition of the sweep's wall clock into
  ``prepare`` (manifest/cache pass), ``connect`` (agents starting, spec
  handshake — zero for a warm local pool), ``execute`` (first lease or
  cell dispatched → last one settled) and ``merge`` (result assembly +
  shutdown).  The four slices are cut from the sweep span's own
  endpoints, so they sum to the measured wall time by construction;
  ``coverage`` reports that sum over the wall and is the honesty check
  the acceptance criteria pin at ≥ 0.95.

* **attribution** — *busy* seconds summed across actors, which may
  legitimately exceed wall on a parallel sweep: worker compute (the
  cells themselves), the envelope/ssh tax (lease wall time minus the
  matched worker's compute — serialization, pipes, scheduling),
  dispatch writes, ssh/agent connects, and driver-side merge.

Everything here differences timestamps recorded by the *same* process
(driver spans against driver spans, worker spans against worker spans),
so cross-host clock skew never corrupts the table.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.journal import Span, pair_spans

__all__ = ["fold_profile", "render_profile"]


def _round(x: float) -> float:
    return round(x, 6)


def fold_profile(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """The ``profile`` table for SWEEP_report.json, from journal events."""
    events = list(events)
    spans = pair_spans(events)
    by_kind: dict[str, list[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.span, []).append(span)

    times = [float(e.get("t", 0.0)) for e in events] or [0.0]
    sweep = (by_kind.get("sweep") or [None])[0]
    t0 = sweep.t0 if sweep is not None else min(times)
    t1 = (sweep.t1 if sweep is not None and sweep.t1 is not None
          else max(times))
    t1 = max(t0, t1)
    wall = t1 - t0

    prepare = (by_kind.get("prepare") or [None])[0]
    prep_end = min(max(prepare.t1 or prepare.t0, t0), t1) \
        if prepare is not None else t0

    # Work = anything that runs a cell: driver leases, plus cell.run
    # spans (the only work markers a pure local-pool journal has).
    work = by_kind.get("lease", []) + by_kind.get("cell.run", [])
    if work:
        first_work = min(max(s.t0, prep_end) for s in work)
        last_work = max(min(s.t1 if s.t1 is not None else s.t0, t1)
                        for s in work)
        first_work = min(max(first_work, prep_end), t1)
        last_work = min(max(last_work, first_work), t1)
    else:
        first_work = last_work = prep_end

    phases = {
        "prepare_s": _round(prep_end - t0),
        "connect_s": _round(first_work - prep_end),
        "execute_s": _round(last_work - first_work),
        "merge_s": _round(t1 - last_work),
    }
    covered = sum(phases.values())
    coverage = covered / wall if wall > 0 else 1.0

    runs = by_kind.get("cell.run", [])
    completed_runs = [s for s in runs if s.complete and not s.aborted]
    aborted_runs = [s for s in runs if not s.complete or s.aborted]
    compute = sum(s.duration for s in completed_runs)

    # Envelope/ssh tax: for every driver lease whose worker-side run we
    # can match (same lease id), the lease outlives the compute by the
    # wire round trip + agent scheduling.  Same-process differences on
    # each side, so skew cancels.
    run_by_lease = {s.lease: s for s in completed_runs if s.lease}
    envelope_tax = 0.0
    matched = 0
    for lease in by_kind.get("lease", []):
        run = run_by_lease.get(lease.lease)
        if run is None or not lease.complete:
            continue
        matched += 1
        envelope_tax += max(0.0, lease.duration - run.duration)

    dispatch = sum(s.duration for s in by_kind.get("dispatch", []))
    connect = sum(s.duration for s in by_kind.get("ssh.connect", [])
                  if s.complete)
    merge = sum(s.duration for s in by_kind.get("merge", []))

    points: dict[str, int] = {}
    for event in events:
        if event.get("ev") == "point":
            name = str(event.get("span", ""))
            points[name] = points.get(name, 0) + 1

    return {
        "wall_s": _round(wall),
        "coverage": _round(min(1.0, coverage)),
        "phases": phases,
        "attribution": {
            "worker_compute_s": _round(compute),
            "envelope_tax_s": _round(envelope_tax),
            "dispatch_s": _round(dispatch),
            "ssh_connect_s": _round(connect),
            "merge_s": _round(merge),
        },
        "counts": {
            "cell_runs": len(runs),
            "cell_runs_aborted": len(aborted_runs),
            "leases": len(by_kind.get("lease", [])),
            "leases_matched": matched,
            "commits": points.get("commit", 0),
            "cache_hits": points.get("cell.cache_hit", 0),
            "heartbeats": points.get("heartbeat", 0),
            "reconnects": len(by_kind.get("reconnect", [])),
            "stragglers": points.get("cell.straggler", 0),
        },
    }


def render_profile(profile: dict[str, Any]) -> str:
    """The profile as a small fixed-width table for stderr."""
    phases = profile.get("phases", {})
    attribution = profile.get("attribution", {})
    counts = profile.get("counts", {})
    wall = profile.get("wall_s", 0.0) or 1e-9
    lines = [
        f"sweep wall time {profile.get('wall_s', 0.0):.3f}s "
        f"(phase coverage {100 * profile.get('coverage', 0.0):.1f}%)",
        "  phase            seconds   share",
    ]
    for key in ("prepare_s", "connect_s", "execute_s", "merge_s"):
        value = phases.get(key, 0.0)
        lines.append(
            f"  {key[:-2]:<15} {value:>8.3f}  {100 * value / wall:>5.1f}%"
        )
    lines.append("  attribution (busy seconds, may exceed wall):")
    for key in ("worker_compute_s", "envelope_tax_s", "dispatch_s",
                "ssh_connect_s", "merge_s"):
        lines.append(f"  {key[:-2]:<15} {attribution.get(key, 0.0):>8.3f}")
    lines.append(
        f"  {counts.get('commits', 0)} commit(s), "
        f"{counts.get('cell_runs', 0)} cell run(s) "
        f"({counts.get('cell_runs_aborted', 0)} aborted), "
        f"{counts.get('cache_hits', 0)} cache hit(s), "
        f"{counts.get('heartbeats', 0)} heartbeat(s), "
        f"{counts.get('reconnects', 0)} reconnect(s)"
    )
    return "\n".join(lines)
