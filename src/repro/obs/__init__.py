"""Control-plane observability: journal, live status, timeline, profiler.

The schedulers (:mod:`repro.sweep.pool`, :mod:`repro.sweep.remote`)
talk to exactly one object — :class:`SweepObserver` — which fans each
structured event out to up to three sinks:

* the **progress callback** (the pre-PR-10 ``note`` lines, rendered
  from the event's fields by :mod:`repro.obs.events`),
* the **span journal** (:class:`repro.obs.journal.Journal`, NDJSON),
* the **status board** (:class:`repro.obs.status.StatusBoard`, the
  atomically-rewritten ``<out>.status.json`` that ``repro top`` polls).

All three sinks are optional; a bare ``SweepObserver()`` is a correct
null observer, which is how journal-off sweeps stay byte-identical —
the schedulers always emit, the observer decides whether anything
listens.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.obs.events import EVENT_FORMATTERS, render_event
from repro.obs.journal import (
    Journal,
    Span,
    new_trace_id,
    pair_spans,
    read_journal,
)
from repro.obs.profile import fold_profile, render_profile
from repro.obs.status import (
    MIN_REWRITE_INTERVAL_S,
    StatusBoard,
    read_status,
    render_prometheus,
    render_top,
)
from repro.obs.timeline import timeline_records

__all__ = [
    "SweepObserver",
    "Journal",
    "Span",
    "new_trace_id",
    "read_journal",
    "pair_spans",
    "StatusBoard",
    "read_status",
    "render_top",
    "render_prometheus",
    "MIN_REWRITE_INTERVAL_S",
    "fold_profile",
    "render_profile",
    "timeline_records",
    "render_event",
    "EVENT_FORMATTERS",
]

#: Events that settle a cell for good — each journals one ``commit``
#: point, which is the invariant the fault tests pin: a cell that ran
#: twice (host killed mid-flight, re-dispatched) still commits once.
_TERMINAL_EVENTS = {"cell.done", "cell.failed", "cell.cache_hit",
                    "cell.resumed"}

_COUNTED = {
    "cell.done": "done",
    "cell.failed": "failed",
    "cell.cache_hit": "cached",
    "cell.resumed": "resumed",
    "cell.retry": "retries",
}

_EXTRA_COUNTED = {
    "cell.cache_hit": "cache_hits",
    "cell.straggler": "stragglers",
    "cell.duplicate": "duplicates",
}

_TIMED_OUTCOMES = {
    "cell.done": "done",
    "cell.failed": "failed",
    "cell.retry": "retried",
}


class SweepObserver:
    """Fan-out for scheduler events; every sink is optional.

    The schedulers never format prose and never check whether a journal
    is armed — they call :meth:`emit`/:meth:`begin`/:meth:`end` and this
    object routes to whichever sinks exist.
    """

    def __init__(self, progress: Callable[[str], None] | None = None,
                 journal: Journal | None = None,
                 status: StatusBoard | None = None) -> None:
        self.progress = progress
        self.journal = journal
        self.status = status
        self.counts: dict[str, int] = {
            "done": 0, "failed": 0, "cached": 0, "resumed": 0, "retries": 0,
        }
        self.extra: dict[str, int] = {
            "cache_hits": 0, "stragglers": 0, "duplicates": 0,
        }
        self._timing: list[dict[str, Any]] = []
        self._closed = False

    @property
    def trace_id(self) -> str | None:
        return self.journal.trace_id if self.journal is not None else None

    # -- structured events -----------------------------------------------------

    def emit(self, event: str, *, cell: str | None = None,
             lease: str | None = None, **fields: Any) -> None:
        """One structured scheduler event: journal it, count it, narrate
        it, and commit it if it settles a cell."""
        counted = _COUNTED.get(event)
        if counted:
            self.counts[counted] += 1
        extra = _EXTRA_COUNTED.get(event)
        if extra:
            self.extra[extra] += 1
        if self.journal is not None:
            self.journal.point(event, cell=cell, lease=lease, **fields)
            if event in _TERMINAL_EVENTS:
                self.journal.point("commit", cell=cell,
                                   ok=event != "cell.failed")
        outcome = _TIMED_OUTCOMES.get(event)
        if outcome and fields.get("wall_s") is not None:
            self._timing.append({
                "cell": cell,
                "attempt": fields.get("attempt", 1),
                "outcome": outcome,
                "wall_s": round(float(fields["wall_s"]), 6),
                "where": fields.get("host") or "local",
            })
        if self.progress is not None:
            render_fields = dict(fields)
            if cell is not None:
                render_fields["cell"] = cell
            line = render_event(event, render_fields)
            if line is not None:
                self.progress(line)

    def note(self, msg: str) -> None:
        """A free-form narration line with no structured twin (signal
        guard chatter, shutdown notices)."""
        if self.journal is not None:
            self.journal.point("note", msg=msg)
        if self.progress is not None:
            self.progress(msg)

    # -- spans -------------------------------------------------------------

    def begin(self, span: str, *, actor: str = "driver",
              cell: str | None = None, lease: str | None = None,
              **fields: Any) -> str | None:
        if self.journal is None:
            return None
        return self.journal.begin(span, actor=actor, cell=cell,
                                  lease=lease, **fields)

    def end(self, sid: str | None, **fields: Any) -> None:
        if self.journal is not None and sid is not None:
            self.journal.end(sid, **fields)

    def point(self, span: str, *, actor: str = "driver",
              cell: str | None = None, lease: str | None = None,
              **fields: Any) -> None:
        if self.journal is not None:
            self.journal.point(span, actor=actor, cell=cell,
                               lease=lease, **fields)

    def record_remote(self, host: str, events: Iterable[Any]) -> None:
        if self.journal is not None:
            self.journal.record_remote(host, events)

    # -- live status -------------------------------------------------------

    def status_tick(self, *, pending: int | None = None,
                    leased: int | None = None,
                    hosts: dict[str, dict[str, Any]] | None = None,
                    force: bool = False) -> None:
        if self.status is not None:
            self.status.update(pending=pending, leased=leased,
                               counts=self.counts, hosts=hosts,
                               extra=self.extra, force=force)

    # -- report hand-off -----------------------------------------------------

    def timing_rows(self) -> list[dict[str, Any]]:
        """Per-attempt wall-time rows for SWEEP_report.json, sorted by
        (cell id, attempt) so the section is deterministic."""
        return sorted(self._timing,
                      key=lambda r: (r["cell"] or "", r["attempt"]))

    def close(self, state: str | None = None) -> None:
        """Flush terminal state to every sink; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.status is not None:
            self.status.finish(state or "done")
        if self.journal is not None:
            self.journal.close()
