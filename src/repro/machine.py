"""The assembled simulated machine: substrate + policy + daemons.

:class:`Machine` is the top-level object users construct: it builds the
memory system from a :class:`~repro.sim.config.SimulationConfig`, attaches
a tiering policy by registry name, registers the policy's daemons on the
virtual-clock scheduler, and exposes the access path workloads drive.
"""

from __future__ import annotations

from repro.mm.address_space import Process
from repro.mm.system import MemorySystem
from repro.policies.base import TieringPolicy, create_policy
from repro.sim.config import SimulationConfig
from repro.sim.events import DaemonScheduler

__all__ = ["Machine"]


class Machine:
    """One simulated hybrid-memory host running one tiering policy."""

    def __init__(self, config: SimulationConfig, policy: str = "multiclock") -> None:
        self.system = MemorySystem(config)
        self.policy: TieringPolicy = create_policy(policy, self.system)
        self.scheduler = DaemonScheduler(
            self.system.clock, wakeup_cost_ns=config.latency.daemon_wakeup_ns
        )
        for daemon in self.policy.daemons():
            self.scheduler.register(daemon)

    @property
    def config(self) -> SimulationConfig:
        return self.system.config

    @property
    def clock(self):
        return self.system.clock

    @property
    def stats(self):
        return self.system.stats

    def create_process(self, name: str = "", home_socket: int = 0) -> Process:
        return self.system.create_process(name, home_socket)

    def touch(
        self, process: Process, vpage: int, *, is_write: bool = False, lines: int = 1
    ) -> int:
        """One memory reference plus any daemon work that came due."""
        charged = self.system.touch(process, vpage, is_write=is_write, lines=lines)
        self.scheduler.run_due()
        return charged

    def drain_daemons(self) -> int:
        """Explicitly fire any overdue daemons (useful between phases)."""
        return self.scheduler.run_due()

    def memory_report(self) -> dict[str, dict[str, int]]:
        """Per-node usage and list occupancy snapshot."""
        report: dict[str, dict[str, int]] = {}
        for node in self.system.nodes.values():
            entry = {
                "capacity": node.capacity_pages,
                "used": node.used_pages,
                "free": node.free_pages,
            }
            entry.update(node.lruvec.counts())
            report[f"node{node.node_id}/{node.tier.name}"] = entry
        return report
