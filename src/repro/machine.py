"""The assembled simulated machine: substrate + policy + daemons.

:class:`Machine` is the top-level object users construct: it builds the
memory system from a :class:`~repro.sim.config.SimulationConfig`, attaches
a tiering policy by registry name, registers the policy's daemons on the
virtual-clock scheduler, and exposes the access path workloads drive.

Two access paths are offered.  :meth:`Machine.touch` is the simple
per-reference call; :meth:`Machine.touch_batch` drives a whole access
stream through an inlined copy of the hot path — same semantics, same
counters, same virtual times, but an order of magnitude less Python
call overhead.  :meth:`Machine.touch_batch_array` goes further for
numeric single-process streams: when the stream hits the common case
(resident pages, no poisons, one unsupervised region, default policy
callbacks) whole access vectors are resolved and charged with a handful
of numpy gathers against the struct-of-arrays page store, dropping to
the scalar loop only around faults, daemon deadlines and policy
overrides.  ``tests/perf/test_touch_batch_equivalence.py`` holds all
paths bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.mm.address_space import Process
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.system import MemorySystem
from repro.policies.base import TieringPolicy, create_policy
from repro.sim.config import SimulationConfig
from repro.sim.events import DaemonScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import PageAccess

__all__ = ["Machine"]


class Machine:
    """One simulated hybrid-memory host running one tiering policy."""

    def __init__(self, config: SimulationConfig, policy: str = "multiclock") -> None:
        self.system = MemorySystem(config)
        self.policy: TieringPolicy = create_policy(policy, self.system)
        self.scheduler = DaemonScheduler(
            self.system.clock, wakeup_cost_ns=config.latency.daemon_wakeup_ns
        )
        for daemon in self.policy.daemons():
            self.scheduler.register(daemon)

    @property
    def config(self) -> SimulationConfig:
        return self.system.config

    @property
    def clock(self):
        return self.system.clock

    @property
    def stats(self):
        return self.system.stats

    def create_process(self, name: str = "", home_socket: int = 0) -> Process:
        return self.system.create_process(name, home_socket)

    def install_faults(self, plan) -> "object":
        """Arm a :class:`~repro.faults.plan.FaultPlan` on this machine.

        Returns the live :class:`~repro.faults.injector.FaultInjector`.
        Must be called before driving accesses; a machine accepts at most
        one plan for its lifetime.
        """
        from repro.faults.injector import install_faults

        return install_faults(self, plan)

    def enable_tracing(self, *, capacity_per_node: int | None = None) -> "object":
        """Install a :class:`~repro.trace.tracer.Tracer` on this machine.

        Idempotent-hostile on purpose (one tracer per machine, like one
        perf session per buffer): enabling twice raises.  The tracer's
        counter baseline is snapshotted here so the auditor compares
        deltas even when tracing starts mid-run.  Returns the tracer.
        """
        from repro.trace.tracer import DEFAULT_RING_CAPACITY, Tracer

        system = self.system
        if system.trace is not None:
            raise RuntimeError("tracing is already enabled on this machine")
        # `is None`, not `or`: an explicit 0 must reach the Tracer's own
        # validation instead of silently meaning "default capacity".
        tracer = Tracer(
            system.clock,
            capacity_per_node=(
                DEFAULT_RING_CAPACITY if capacity_per_node is None else capacity_per_node
            ),
        )
        tracer.baseline = system.stats.snapshot()
        tracer.baseline["backing.swap_outs"] = system.backing.swap_outs
        tracer.baseline["backing.swap_ins"] = system.backing.swap_ins
        system.trace = tracer
        system.allocator.trace = tracer
        system.backing.trace = tracer
        system.migrator.trace = tracer
        return tracer

    def enable_metrics(
        self,
        *,
        sample_interval_s: float | None = None,
        window_seconds: float | None = None,
    ) -> "object":
        """Install a :class:`~repro.metrics.registry.MetricsRegistry`.

        Arms the per-node gauge sampler (a ``cost_free`` daemon — it
        observes, so it charges nothing to the virtual clock) and wires
        the histogram sinks onto the system, the migration engine and the
        backing store.  One registry per machine; enabling twice raises.
        Defaults: sampling at the kswapd cadence, windows at the paper's
        ``stats_window_s``.  Returns the registry.
        """
        from repro.metrics.registry import MetricsRegistry
        from repro.metrics.sampler import VmstatSampler
        from repro.sim.events import Daemon

        system = self.system
        if system.metrics is not None:
            raise RuntimeError("metrics are already enabled on this machine")
        config = system.config
        interval = (
            config.daemons.kswapd_interval_s
            if sample_interval_s is None
            else sample_interval_s
        )
        registry = MetricsRegistry(
            system,
            window_seconds=(
                config.stats_window_s if window_seconds is None else window_seconds
            ),
            sample_interval_s=interval,
        )
        sampler = VmstatSampler(system, registry)
        self.scheduler.register(
            Daemon(sampler.name, interval, sampler.run, cost_free=True)
        )
        system.metrics = registry
        system.migrator.metrics = registry
        system.backing.metrics = registry
        return registry

    def enable_memcg(self) -> "object":
        """Install a :class:`~repro.mm.memcg.MemcgController`.

        Arms per-tenant accounting: pages are charged to their faulting
        process's group, limits drive targeted + proportional reclaim,
        and the OOM killer selects a victim group instead of aborting
        the machine.  Armed but with no limits set, runs stay
        bit-identical to unarmed runs (the controller only maintains its
        own books).  One controller per machine; enabling twice raises.
        Returns the controller.
        """
        from repro.mm.memcg import MemcgController

        system = self.system
        if system.memcg is not None:
            raise RuntimeError("memcg accounting is already enabled on this machine")
        controller = MemcgController(system)
        system.memcg = controller
        system.migrator.memcg = controller
        return controller

    def install_invariant_checker(
        self, interval_s: float = 0.005, *, strict: bool = False
    ) -> "object":
        """Register a periodic ``CONFIG_DEBUG_VM`` sweep on the scheduler.

        Returns the :class:`~repro.mm.debug.InvariantChecker` so callers
        can also sweep on demand and read ``last_violations``.
        """
        from repro.mm.debug import InvariantChecker
        from repro.sim.events import Daemon

        checker = InvariantChecker(self.system, strict=strict)
        self.scheduler.register(Daemon(checker.name, interval_s, checker.run))
        return checker

    def touch(
        self, process: Process, vpage: int, *, is_write: bool = False, lines: int = 1
    ) -> int:
        """One memory reference plus any daemon work that came due."""
        charged = self.system.touch(process, vpage, is_write=is_write, lines=lines)
        self.scheduler.run_due()
        return charged

    def touch_batch(self, accesses: "Iterable[PageAccess]") -> tuple[int, int]:
        """Drive a stream of accesses through the inlined hot path.

        Returns ``(accesses, operations)`` where ``operations`` counts
        the stream's ``op_boundary`` markers.  Equivalent to calling
        :meth:`touch` once per access — faults, hint faults, daemon
        wakeups, counters and clock advance identically — but the common
        case (page resident, PTE clean) runs without entering
        ``MemorySystem.touch``: the PTE/flag updates, latency charge,
        counter bumps and scheduler deadline check are all inlined here
        against hoisted page-store columns.
        """
        system = self.system
        scheduler = self.scheduler
        clock = system.clock
        stats = system.stats
        nodes = system.nodes
        policy = system.policy
        run_due = scheduler.run_due
        slow_touch = system.touch
        store = system.pagestore
        reaccess_horizon = system._reaccess_horizon_ns
        c_reaccessed = system._c_promoted_reaccessed
        record_reaccess = stats.series["promoted_reaccessed_window"].record
        metrics = system.metrics
        record_reaccess_delay = (
            metrics.reaccess_delay.record if metrics is not None else None
        )
        mark_accessed = policy.mark_page_accessed
        on_access = policy.on_access
        # Policies that keep the base-class defaults get the cheap forms:
        # the default charge_access is pure latency-table math (inlined
        # below) and the default on_access is a no-op (skipped).
        policy_cls = type(policy)
        inline_charge = policy_cls.charge_access is TieringPolicy.charge_access
        skip_on_access = policy_cls.on_access is TieringPolicy.on_access
        charge_access = policy.charge_access
        read_ns, write_ns = system.hardware.access_tables()
        remote_mult = system.config.latency.remote_socket_multiplier
        multi_socket = system.config.sockets > 1
        # Node ids are assigned densely from 0, and a node's tier and
        # socket never change, so per-node facts fold into flat vectors
        # indexed by the page's node column.
        node_list = [nodes[nid] for nid in range(len(nodes))]
        node_read_ns = [read_ns[n.tier] for n in node_list]
        node_write_ns = [write_ns[n.tier] for n in node_list]
        # With a fault plan armed, daemon wakeups may rescale tier latency
        # (PmSlowdown windows), so the hoisted per-node tables must be
        # rebuilt after every run_due(); without faults they are constant.
        faults_live = system.faults is not None
        node_is_dram = [n.tier is MemoryTier.DRAM for n in node_list]
        node_socket = [n.socket for n in node_list]
        # Page-store columns, hoisted.  Store growth (a fault allocating
        # past capacity) reallocates every column, so these are re-hoisted
        # after any excursion that can allocate — slow_touch and run_due —
        # the same discipline as the latency tables above.
        col_acc = store.pte_accessed
        col_dirty = store.pte_dirty
        col_flags = store.flags
        col_node = store.node
        col_await = store.awaiting_ns
        c_total = stats.counter("accesses.total")
        c_dram = stats.counter("accesses.dram")
        c_pm = stats.counter("accesses.pm")
        c_remote = stats.counter("accesses.remote")
        dirty_bit = int(PageFlags.DIRTY)
        n_accesses = 0
        n_operations = 0
        # Virtual time and the access counters are accumulated in locals
        # and flushed to the clock / StatsBook objects only when code
        # outside this loop might observe them (slow touch, daemon
        # wakeups, policy callbacks) and once at the end.
        # mark_page_accessed implementations read neither, so the pure
        # fast path is a handful of local integer adds per access.
        now = clock._now_ns
        app_accum = 0
        acc_total = acc_dram = acc_pm = acc_remote = 0
        next_deadline = scheduler.next_deadline_ns
        # Per-process and per-region state, re-hoisted on change.  Regions
        # are never unmapped, so a cached [start, end) range stays valid.
        cur_process: Process | None = None
        home_socket = -1
        reg_start = reg_end = 0  # empty range: first access misses the cache
        reg_supervised = False
        for access in accesses:
            process = access.process
            vpage = access.vpage
            is_write = access.is_write
            n_accesses += 1
            n_operations += access.op_boundary
            if process is not cur_process:
                cur_process = process
                # PageTable.lookup is a trivial wrapper around this dict;
                # go straight to it to spare a call per access.
                pt_dict = process.page_table._entries
                home_socket = process.home_socket
                reg_start = reg_end = 0
            try:
                pte = pt_dict[vpage]
            except KeyError:
                pte = None
            if pte is None or pte.poisoned:
                # Fault / hint-fault path: rare, delegate to the full
                # implementation rather than duplicating it here.
                clock._now_ns = now
                clock._app_ns += app_accum
                c_total.n += acc_total
                c_dram.n += acc_dram
                c_pm.n += acc_pm
                c_remote.n += acc_remote
                app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                slow_touch(process, vpage, is_write=is_write, lines=access.lines)
                now = clock._now_ns
                if next_deadline <= now:
                    run_due()
                    now = clock._now_ns
                    next_deadline = scheduler.next_deadline_ns
                    if faults_live:
                        node_read_ns = [read_ns[n.tier] for n in node_list]
                        node_write_ns = [write_ns[n.tier] for n in node_list]
                col_acc = store.pte_accessed
                col_dirty = store.pte_dirty
                col_flags = store.flags
                col_node = store.node
                col_await = store.awaiting_ns
                continue
            if not reg_start <= vpage < reg_end:
                region = process.region_for(vpage)
                reg_start = region.start_vpage
                reg_end = region.end_vpage
                reg_supervised = region.supervised
            page = pte.page
            pfn = page.pfn
            col_acc[pfn] = True
            if is_write:
                col_dirty[pfn] = True
                col_flags[pfn] |= dirty_bit
            nid = col_node[pfn]
            if inline_charge:
                access_ns = access.lines * (
                    node_write_ns[nid] if is_write else node_read_ns[nid]
                )
            else:
                clock._now_ns = now
                clock._app_ns += app_accum
                app_accum = 0
                access_ns = charge_access(page, is_write, access.lines)
                now = clock._now_ns
            if multi_socket and node_socket[nid] != home_socket:
                access_ns = int(access_ns * remote_mult)
                acc_remote += 1
            now += access_ns
            app_accum += access_ns
            acc_total += 1
            if node_is_dram[nid]:
                acc_dram += 1
            else:
                acc_pm += 1
            if reg_supervised:
                mark_accessed(page)
            if system._awaiting_count:
                # Inlined MemorySystem._note_reaccess against the local time.
                promoted_at = col_await[pfn]
                if promoted_at >= 0:
                    col_await[pfn] = -1
                    system._awaiting_count -= 1
                    promoted_at = int(promoted_at)
                    if record_reaccess_delay is not None:
                        record_reaccess_delay(now - promoted_at)
                    if now - promoted_at <= reaccess_horizon:
                        c_reaccessed.n += 1
                        record_reaccess(promoted_at)
            if not skip_on_access:
                clock._now_ns = now
                clock._app_ns += app_accum
                c_total.n += acc_total
                c_dram.n += acc_dram
                c_pm.n += acc_pm
                c_remote.n += acc_remote
                app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                on_access(pte, is_write)
                now = clock._now_ns
            if next_deadline <= now:
                clock._now_ns = now
                clock._app_ns += app_accum
                c_total.n += acc_total
                c_dram.n += acc_dram
                c_pm.n += acc_pm
                c_remote.n += acc_remote
                app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                run_due()
                now = clock._now_ns
                next_deadline = scheduler.next_deadline_ns
                if faults_live:
                    node_read_ns = [read_ns[n.tier] for n in node_list]
                    node_write_ns = [write_ns[n.tier] for n in node_list]
                col_acc = store.pte_accessed
                col_dirty = store.pte_dirty
                col_flags = store.flags
                col_node = store.node
                col_await = store.awaiting_ns
        clock._now_ns = now
        clock._app_ns += app_accum
        c_total.n += acc_total
        c_dram.n += acc_dram
        c_pm.n += acc_pm
        c_remote.n += acc_remote
        return n_accesses, n_operations

    def touch_batch_array(
        self,
        process: Process,
        batches: "Iterable[tuple[Iterable[int], Iterable[bool]]]",
        *,
        lines: int = 1,
    ) -> tuple[int, int]:
        """Drive a single-process numeric access stream through the hot path.

        ``batches`` yields ``(vpages, writes)`` pairs (numpy arrays or
        sequences); every access marks an operation boundary and touches
        ``lines`` cache lines — the shape of every synthetic workload
        stream.  Equivalent to :meth:`touch_batch` over the
        :class:`~repro.workloads.base.PageAccess` objects those batches
        would emit — faults, daemon wakeups, counters and clock advance
        identically — but without materialising any access objects.

        When the common case holds — every page of the batch resident in
        a dense page table with no poisoned PTEs, one unsupervised region
        covering the batch, and a policy keeping the default
        ``charge_access``/``on_access`` — whole batches are processed as
        column sweeps: one ``v2p`` gather resolves the translations, the
        accessed/dirty bits land with fancy-index stores, the latency
        charge is a vectorized table gather with a ``cumsum`` locating
        the exact access on which a daemon deadline fires.  Any access
        that breaks the pattern (fault, poison, deadline, region edge)
        detours through the scalar path, so the result stays
        bit-identical to the per-access drivers.
        """
        system = self.system
        scheduler = self.scheduler
        clock = system.clock
        stats = system.stats
        nodes = system.nodes
        policy = system.policy
        run_due = scheduler.run_due
        slow_touch = system.touch
        store = system.pagestore
        reaccess_horizon = system._reaccess_horizon_ns
        c_reaccessed = system._c_promoted_reaccessed
        record_reaccess = stats.series["promoted_reaccessed_window"].record
        metrics = system.metrics
        record_reaccess_delay = (
            metrics.reaccess_delay.record if metrics is not None else None
        )
        mark_accessed = policy.mark_page_accessed
        on_access = policy.on_access
        policy_cls = type(policy)
        inline_charge = policy_cls.charge_access is TieringPolicy.charge_access
        skip_on_access = policy_cls.on_access is TieringPolicy.on_access
        charge_access = policy.charge_access
        read_ns, write_ns = system.hardware.access_tables()
        remote_mult = system.config.latency.remote_socket_multiplier
        multi_socket = system.config.sockets > 1
        node_list = [nodes[nid] for nid in range(len(nodes))]
        node_read_ns = [read_ns[n.tier] for n in node_list]
        node_write_ns = [write_ns[n.tier] for n in node_list]
        faults_live = system.faults is not None
        node_is_dram = [n.tier is MemoryTier.DRAM for n in node_list]
        node_socket = [n.socket for n in node_list]
        # Vector-path tables: per-node latency/socket/tier as numpy rows.
        np_read = np.asarray(node_read_ns, dtype=np.int64)
        np_write = np.asarray(node_write_ns, dtype=np.int64)
        np_dram = np.asarray(node_is_dram, dtype=bool)
        np_socket = np.asarray(node_socket, dtype=np.int64)
        col_acc = store.pte_accessed
        col_dirty = store.pte_dirty
        col_flags = store.flags
        col_node = store.node
        col_await = store.awaiting_ns
        c_total = stats.counter("accesses.total")
        c_dram = stats.counter("accesses.dram")
        c_pm = stats.counter("accesses.pm")
        c_remote = stats.counter("accesses.remote")
        dirty_bit = int(PageFlags.DIRTY)
        n_accesses = 0
        now = clock._now_ns
        app_accum = 0
        acc_total = acc_dram = acc_pm = acc_remote = 0
        next_deadline = scheduler.next_deadline_ns
        # One process for the whole stream: its page table and home
        # socket are hoisted once instead of re-checked per access.
        page_table = process.page_table
        pt_dict = page_table._entries
        home_socket = process.home_socket
        reg_start = reg_end = 0  # empty range: first access misses the cache
        reg_supervised = False
        vector_ok = inline_charge and skip_on_access
        for vpages, writes in batches:
            vp = np.asarray(vpages, dtype=np.int64)
            wr = np.asarray(writes, dtype=bool)
            n = len(vp)
            if n == 0:
                continue
            n_accesses += n
            pos = 0
            vectorable = vector_ok
            if vectorable:
                # The whole batch must sit in one unsupervised region;
                # otherwise (or if the range is simply unmapped — the
                # scalar path owns raising that SIGSEGV at the exact
                # offending access) fall through to the scalar loop.
                bmin = int(vp.min())
                bmax = int(vp.max())
                if not (reg_start <= bmin and bmax < reg_end):
                    try:
                        region = process.region_for(bmin)
                    except LookupError:
                        vectorable = False
                    else:
                        if bmax < region.end_vpage:
                            reg_start = region.start_vpage
                            reg_end = region.end_vpage
                            reg_supervised = region.supervised
                        else:
                            vectorable = False
                if vectorable and reg_supervised:
                    vectorable = False
            # Translations are gathered once per batch and reused; the
            # cache is only dropped when the page table's unmap
            # generation moves (a new mapping can never turn a cached
            # hit stale, an unmap can).  Misses are pre-located; each
            # candidate miss is re-checked against the live table as the
            # scan reaches it and patched into a hit when an earlier
            # fault in the batch already mapped that vpage — O(1) per
            # entry, so a hot page faulting once neither fragments the
            # batch into scalar excursions nor costs a quadratic
            # patch-the-remainder pass per fault.
            pfns_all = None
            miss_pos = None
            n_miss = mi = gen = 0
            while vectorable and pos < n:
                if page_table._poison_count or not page_table.dense:
                    vectorable = False
                    break
                if pfns_all is None:
                    if not page_table.ensure_dense_capacity(bmax + 1):
                        vectorable = False
                        break
                    pfns_all = page_table.v2p[vp]
                    miss_pos = np.flatnonzero(pfns_all < 0)
                    n_miss = len(miss_pos)
                    mi = 0
                    gen = page_table._unmap_gen
                # Skip consumed misses and patch stale ones: a miss
                # recorded at gather time may have become resident via
                # an earlier fault on the same vpage in this batch.
                while mi < n_miss:
                    mp = int(miss_pos[mi])
                    if mp < pos or pfns_all[mp] >= 0:
                        mi += 1
                        continue
                    live = int(page_table.v2p[vp[mp]])
                    if live >= 0:
                        pfns_all[mp] = live
                        mi += 1
                        continue
                    break
                nxt = int(miss_pos[mi]) if mi < n_miss else n
                limit = nxt - pos
                if limit == 0:
                    # Fault on the next access: scalar excursion, then
                    # re-hoist anything an allocation may have replaced.
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    c_total.n += acc_total
                    c_dram.n += acc_dram
                    c_pm.n += acc_pm
                    c_remote.n += acc_remote
                    app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                    slow_touch(
                        process, int(vp[pos]), is_write=bool(wr[pos]), lines=lines
                    )
                    now = clock._now_ns
                    if next_deadline <= now:
                        run_due()
                        now = clock._now_ns
                        next_deadline = scheduler.next_deadline_ns
                        if faults_live:
                            node_read_ns = [read_ns[n_.tier] for n_ in node_list]
                            node_write_ns = [write_ns[n_.tier] for n_ in node_list]
                            np_read = np.asarray(node_read_ns, dtype=np.int64)
                            np_write = np.asarray(node_write_ns, dtype=np.int64)
                    col_acc = store.pte_accessed
                    col_dirty = store.pte_dirty
                    col_flags = store.flags
                    col_node = store.node
                    col_await = store.awaiting_ns
                    if page_table._unmap_gen != gen:
                        pfns_all = None
                    pos += 1
                    continue
                if limit < 32:
                    # Short run between faults: numpy's fixed per-call
                    # cost over a couple of accesses loses to a scalar
                    # loop on the same columns, and cold batches are
                    # almost entirely such runs.
                    end = pos + limit
                    while pos < end:
                        pfn = int(pfns_all[pos])
                        is_write = bool(wr[pos])
                        nid = int(col_node[pfn])
                        access_ns = lines * (
                            node_write_ns[nid] if is_write else node_read_ns[nid]
                        )
                        if multi_socket and node_socket[nid] != home_socket:
                            access_ns = int(access_ns * remote_mult)
                            acc_remote += 1
                        col_acc[pfn] = True
                        if is_write:
                            col_dirty[pfn] = True
                            col_flags[pfn] |= dirty_bit
                        now += access_ns
                        app_accum += access_ns
                        acc_total += 1
                        if node_is_dram[nid]:
                            acc_dram += 1
                        else:
                            acc_pm += 1
                        if system._awaiting_count:
                            promoted_at = int(col_await[pfn])
                            if promoted_at >= 0:
                                col_await[pfn] = -1
                                system._awaiting_count -= 1
                                if record_reaccess_delay is not None:
                                    record_reaccess_delay(now - promoted_at)
                                if now - promoted_at <= reaccess_horizon:
                                    c_reaccessed.n += 1
                                    record_reaccess(promoted_at)
                        pos += 1
                        if next_deadline <= now:
                            clock._now_ns = now
                            clock._app_ns += app_accum
                            c_total.n += acc_total
                            c_dram.n += acc_dram
                            c_pm.n += acc_pm
                            c_remote.n += acc_remote
                            app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                            run_due()
                            now = clock._now_ns
                            next_deadline = scheduler.next_deadline_ns
                            if faults_live:
                                node_read_ns = [read_ns[n_.tier] for n_ in node_list]
                                node_write_ns = [write_ns[n_.tier] for n_ in node_list]
                                np_read = np.asarray(node_read_ns, dtype=np.int64)
                                np_write = np.asarray(node_write_ns, dtype=np.int64)
                            col_acc = store.pte_accessed
                            col_dirty = store.pte_dirty
                            col_flags = store.flags
                            col_node = store.node
                            col_await = store.awaiting_ns
                            # The daemons may have unmapped pages or
                            # hint-poisoned PTEs: bounce to the outer
                            # loop, which re-gathers or de-vectorizes.
                            if (
                                page_table._unmap_gen != gen
                                or page_table._poison_count
                            ):
                                pfns_all = None
                                break
                    continue
                seg = pfns_all[pos : pos + limit]
                w = wr[pos : pos + limit]
                nid_arr = col_node[seg]
                base = np.where(w, np_write[nid_arr], np_read[nid_arr])
                if lines != 1:
                    base = base * lines
                rem = None
                if multi_socket:
                    rem = np_socket[nid_arr] != home_socket
                    if rem.any():
                        # Same truncation as the scalar int(ns * mult).
                        base[rem] = (base[rem] * remote_mult).astype(np.int64)
                cum = np.cumsum(base)
                total = int(cum[-1])
                crossed = next_deadline <= now + total
                if crossed:
                    # First access whose end time reaches the deadline —
                    # it is charged before the daemons run, exactly as
                    # the scalar loop checks after each access.
                    j = int(np.searchsorted(cum, next_deadline - now, side="left"))
                    limit = j + 1
                    seg = seg[:limit]
                    w = w[:limit]
                    nid_arr = nid_arr[:limit]
                    cum = cum[:limit]
                    if rem is not None:
                        rem = rem[:limit]
                    total = int(cum[-1])
                # Hardware bit updates: duplicates in `seg` are fine —
                # both stores are idempotent.
                col_acc[seg] = True
                if w.any():
                    wseg = seg[w]
                    col_dirty[wseg] = True
                    col_flags[wseg] |= dirty_bit
                acc_total += limit
                nd = int(np.count_nonzero(np_dram[nid_arr]))
                acc_dram += nd
                acc_pm += limit - nd
                if rem is not None:
                    acc_remote += int(np.count_nonzero(rem))
                if system._awaiting_count:
                    # Promoted pages waiting for a re-access: rare, so the
                    # hits are replayed scalar, each against the virtual
                    # time of its own access (now + cum).  Re-reading the
                    # column per hit makes duplicate pfns consume the
                    # pending promotion exactly once, like the dict pop.
                    for i2 in np.flatnonzero(col_await[seg] >= 0).tolist():
                        hit_pfn = int(seg[i2])
                        promoted_at = int(col_await[hit_pfn])
                        if promoted_at < 0:
                            continue
                        col_await[hit_pfn] = -1
                        system._awaiting_count -= 1
                        now_i = now + int(cum[i2])
                        if record_reaccess_delay is not None:
                            record_reaccess_delay(now_i - promoted_at)
                        if now_i - promoted_at <= reaccess_horizon:
                            c_reaccessed.n += 1
                            record_reaccess(promoted_at)
                now += total
                app_accum += total
                pos += limit
                if crossed:
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    c_total.n += acc_total
                    c_dram.n += acc_dram
                    c_pm.n += acc_pm
                    c_remote.n += acc_remote
                    app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                    run_due()
                    now = clock._now_ns
                    next_deadline = scheduler.next_deadline_ns
                    if faults_live:
                        node_read_ns = [read_ns[n_.tier] for n_ in node_list]
                        node_write_ns = [write_ns[n_.tier] for n_ in node_list]
                        np_read = np.asarray(node_read_ns, dtype=np.int64)
                        np_write = np.asarray(node_write_ns, dtype=np.int64)
                    col_acc = store.pte_accessed
                    col_dirty = store.pte_dirty
                    col_flags = store.flags
                    col_node = store.node
                    col_await = store.awaiting_ns
                    if page_table._unmap_gen != gen:
                        pfns_all = None
            if pos >= n:
                continue
            # Scalar remainder: identical to touch_batch's inlined body.
            for vpage, is_write in zip(vp[pos:].tolist(), wr[pos:].tolist()):
                try:
                    pte = pt_dict[vpage]
                except KeyError:
                    pte = None
                if pte is None or pte.poisoned:
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    c_total.n += acc_total
                    c_dram.n += acc_dram
                    c_pm.n += acc_pm
                    c_remote.n += acc_remote
                    app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                    slow_touch(process, vpage, is_write=is_write, lines=lines)
                    now = clock._now_ns
                    if next_deadline <= now:
                        run_due()
                        now = clock._now_ns
                        next_deadline = scheduler.next_deadline_ns
                        if faults_live:
                            node_read_ns = [read_ns[n_.tier] for n_ in node_list]
                            node_write_ns = [write_ns[n_.tier] for n_ in node_list]
                            np_read = np.asarray(node_read_ns, dtype=np.int64)
                            np_write = np.asarray(node_write_ns, dtype=np.int64)
                    col_acc = store.pte_accessed
                    col_dirty = store.pte_dirty
                    col_flags = store.flags
                    col_node = store.node
                    col_await = store.awaiting_ns
                    continue
                if not reg_start <= vpage < reg_end:
                    region = process.region_for(vpage)
                    reg_start = region.start_vpage
                    reg_end = region.end_vpage
                    reg_supervised = region.supervised
                page = pte.page
                pfn = page.pfn
                col_acc[pfn] = True
                if is_write:
                    col_dirty[pfn] = True
                    col_flags[pfn] |= dirty_bit
                nid = col_node[pfn]
                if inline_charge:
                    access_ns = lines * (
                        node_write_ns[nid] if is_write else node_read_ns[nid]
                    )
                else:
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    app_accum = 0
                    access_ns = charge_access(page, is_write, lines)
                    now = clock._now_ns
                if multi_socket and node_socket[nid] != home_socket:
                    access_ns = int(access_ns * remote_mult)
                    acc_remote += 1
                now += access_ns
                app_accum += access_ns
                acc_total += 1
                if node_is_dram[nid]:
                    acc_dram += 1
                else:
                    acc_pm += 1
                if reg_supervised:
                    mark_accessed(page)
                if system._awaiting_count:
                    promoted_at = col_await[pfn]
                    if promoted_at >= 0:
                        col_await[pfn] = -1
                        system._awaiting_count -= 1
                        promoted_at = int(promoted_at)
                        if record_reaccess_delay is not None:
                            record_reaccess_delay(now - promoted_at)
                        if now - promoted_at <= reaccess_horizon:
                            c_reaccessed.n += 1
                            record_reaccess(promoted_at)
                if not skip_on_access:
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    c_total.n += acc_total
                    c_dram.n += acc_dram
                    c_pm.n += acc_pm
                    c_remote.n += acc_remote
                    app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                    on_access(pte, is_write)
                    now = clock._now_ns
                if next_deadline <= now:
                    clock._now_ns = now
                    clock._app_ns += app_accum
                    c_total.n += acc_total
                    c_dram.n += acc_dram
                    c_pm.n += acc_pm
                    c_remote.n += acc_remote
                    app_accum = acc_total = acc_dram = acc_pm = acc_remote = 0
                    run_due()
                    now = clock._now_ns
                    next_deadline = scheduler.next_deadline_ns
                    if faults_live:
                        node_read_ns = [read_ns[n_.tier] for n_ in node_list]
                        node_write_ns = [write_ns[n_.tier] for n_ in node_list]
                        np_read = np.asarray(node_read_ns, dtype=np.int64)
                        np_write = np.asarray(node_write_ns, dtype=np.int64)
                    col_acc = store.pte_accessed
                    col_dirty = store.pte_dirty
                    col_flags = store.flags
                    col_node = store.node
                    col_await = store.awaiting_ns
        clock._now_ns = now
        clock._app_ns += app_accum
        c_total.n += acc_total
        c_dram.n += acc_dram
        c_pm.n += acc_pm
        c_remote.n += acc_remote
        return n_accesses, n_accesses

    def drain_daemons(self) -> int:
        """Explicitly fire any overdue daemons (useful between phases)."""
        return self.scheduler.run_due()

    def memory_report(self) -> dict[str, dict[str, int]]:
        """Per-node usage and list occupancy snapshot."""
        report: dict[str, dict[str, int]] = {}
        for node in self.system.nodes.values():
            entry = {
                "capacity": node.capacity_pages,
                "used": node.used_pages,
                "free": node.free_pages,
            }
            entry.update(node.lruvec.counts())
            report[f"node{node.node_id}/{node.tier.name}"] = entry
        return report
