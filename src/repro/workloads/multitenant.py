"""Multi-tenant workloads: several applications sharing one machine.

MULTI-CLOCK "is entirely transparent and backward compatible with any
existing application" (Abstract) — nothing in the design is per-process.
This combinator interleaves the access streams of several child
workloads round-robin, each with its own process (optionally pinned to a
socket on multi-socket machines), so tests and experiments can check
that tiering decisions hold up under co-located tenants competing for
the DRAM tier.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.machine import Machine
from repro.workloads.base import PageAccess, Workload

__all__ = ["MultiTenantWorkload"]


class MultiTenantWorkload(Workload):
    """Round-robin interleaving of several child workloads."""

    def __init__(
        self,
        tenants: Sequence[Workload],
        *,
        home_sockets: Sequence[int] | None = None,
        batch: int = 16,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if home_sockets is not None and len(home_sockets) != len(tenants):
            raise ValueError("home_sockets must match tenants one-to-one")
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.tenants = list(tenants)
        self.home_sockets = list(home_sockets) if home_sockets else None
        self.batch = batch
        self.name = "multitenant[" + "+".join(t.name for t in tenants) + "]"

    def setup(self, machine: Machine) -> None:
        for i, tenant in enumerate(self.tenants):
            tenant.setup(machine)
            if self.home_sockets is not None:
                process = getattr(tenant, "process", None)
                if process is None:
                    raise ValueError(
                        f"tenant {tenant.name} exposes no process to pin"
                    )
                process.home_socket = self.home_sockets[i]

    def footprint_pages(self) -> int:
        return sum(tenant.footprint_pages() for tenant in self.tenants)

    def accesses(self) -> Iterator[PageAccess]:
        """Interleave tenants in batches until every stream is drained.

        Batched round-robin mimics scheduler timeslices: each tenant runs
        a short burst, so their access patterns interleave at a realistic
        granularity rather than per-single-access.
        """
        streams = [tenant.accesses() for tenant in self.tenants]
        live = list(range(len(streams)))
        while live:
            finished = []
            for index in live:
                stream = streams[index]
                for __ in range(self.batch):
                    access = next(stream, None)
                    if access is None:
                        finished.append(index)
                        break
                    yield access
            for index in finished:
                live.remove(index)
