"""Multi-tenant workloads: several applications sharing one machine.

MULTI-CLOCK "is entirely transparent and backward compatible with any
existing application" (Abstract) — nothing in the design is per-process.
This combinator interleaves the access streams of several child
workloads round-robin, each with its own process (optionally pinned to a
socket on multi-socket machines), so tests and experiments can check
that tiering decisions hold up under co-located tenants competing for
the DRAM tier.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess, Workload
from repro.workloads.kvstore import PageTouch, SlabKVStore

__all__ = ["MultiTenantWorkload", "KVTenantWorkload"]


class MultiTenantWorkload(Workload):
    """Round-robin interleaving of several child workloads."""

    def __init__(
        self,
        tenants: Sequence[Workload],
        *,
        home_sockets: Sequence[int] | None = None,
        batch: int = 16,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if home_sockets is not None and len(home_sockets) != len(tenants):
            raise ValueError("home_sockets must match tenants one-to-one")
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.tenants = list(tenants)
        self.home_sockets = list(home_sockets) if home_sockets else None
        self.batch = batch
        self.name = "multitenant[" + "+".join(t.name for t in tenants) + "]"
        # Derived, not inherited: the class default (False) made a
        # combination of boundary-marking tenants report accesses/s
        # instead of real zero-op results when a phase completed no
        # operations.  Any child that marks boundaries is enough — the
        # runner only needs to know markers can appear in the stream.
        self.marks_op_boundaries = any(t.marks_op_boundaries for t in self.tenants)

    def setup(self, machine: Machine) -> None:
        for i, tenant in enumerate(self.tenants):
            tenant.setup(machine)
            if self.home_sockets is not None:
                process = getattr(tenant, "process", None)
                if process is None:
                    raise ValueError(
                        f"tenant {tenant.name} exposes no process to pin"
                    )
                process.home_socket = self.home_sockets[i]

    def footprint_pages(self) -> int:
        return sum(tenant.footprint_pages() for tenant in self.tenants)

    def accesses(self) -> Iterator[PageAccess]:
        """Interleave tenants in batches until every stream is drained.

        Batched round-robin mimics scheduler timeslices: each tenant runs
        a short burst, so their access patterns interleave at a realistic
        granularity rather than per-single-access.
        """
        streams = [tenant.accesses() for tenant in self.tenants]
        live = list(range(len(streams)))
        while live:
            finished = []
            for index in live:
                stream = streams[index]
                for __ in range(self.batch):
                    access = next(stream, None)
                    if access is None:
                        finished.append(index)
                        break
                    yield access
            for index in finished:
                live.remove(index)


class KVTenantWorkload(Workload):
    """One Memcached-like tenant of a colocated service machine.

    A :class:`~repro.workloads.kvstore.SlabKVStore` driven by
    Zipf-distributed key popularity, with the two time-varying behaviours
    colocation experiments need:

    * **diurnal traffic** — ``phases`` are relative traffic weights; the
      operation budget is split across them proportionally, so a tenant
      with ``phases=(1.0, 0.2, 1.0)`` goes quiet in its second phase
      while the round-robin interleave keeps serving busier tenants;
    * **hotspot shift** — each phase draws a fresh popularity-rank →
      key permutation, so yesterday's hot records go cold and the
      tiering policy has to chase the new hot set.

    The stream starts with the load phase (every record inserted in slab
    order), then runs GET/SET traffic at ``read_ratio``.  Each operation
    is a hash-bucket probe plus a record touch; the last touch of every
    operation carries ``op_boundary``.  ``operations()`` exposes the
    per-op touch lists directly for drivers that meter per-operation
    latency (the colocation experiment); a stream is single-use because
    it mutates the slab layout as it loads.
    """

    marks_op_boundaries = True

    def __init__(
        self,
        tenant_name: str,
        n_records: int,
        ops: int,
        *,
        alpha: float = 1.1,
        read_ratio: float = 0.9,
        phases: Sequence[float] = (1.0,),
        value_size: int = 1024,
        seed: int = 7,
    ) -> None:
        if n_records <= 0 or ops <= 0:
            raise ValueError("n_records and ops must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must lie in [0, 1]")
        if not phases or any(w < 0 for w in phases) or sum(phases) <= 0:
            raise ValueError("phases must be non-negative weights summing > 0")
        self.name = tenant_name
        self.n_records = n_records
        self.ops = ops
        self.alpha = alpha
        self.read_ratio = read_ratio
        self.phases = tuple(float(w) for w in phases)
        self.seed = seed
        self.store = SlabKVStore(value_size=value_size)
        self.process: Process | None = None

    def setup(self, machine: Machine) -> None:
        self.process = machine.create_process(self.name)
        store = self.store
        data_pages = max(1, (self.n_records - 1) // store.items_per_page + 1)
        self.process.mmap_anon(store.hash_base, store.hash_pages(self.n_records))
        self.process.mmap_anon(store.data_base, data_pages)

    def footprint_pages(self) -> int:
        return self.store.footprint_pages(self.n_records)

    def phase_ops(self) -> list[int]:
        """Operation budget per diurnal phase (sums to ``ops`` exactly)."""
        weights = np.asarray(self.phases, dtype=np.float64)
        bounds = np.floor(np.cumsum(weights) / weights.sum() * self.ops).astype(int)
        counts = np.diff(bounds, prepend=0)
        counts[-1] += self.ops - int(bounds[-1])
        return counts.tolist()

    def operations(self) -> Iterator[list[PageTouch]]:
        """Per-operation touch lists: the load phase, then the traffic."""
        for key in range(self.n_records):
            yield self.store.insert(key)
        rng = make_rng(
            self.seed, f"kv-{self.name}-{self.n_records}-{self.alpha}"
        )
        ranks = np.arange(1, self.n_records + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        weights /= weights.sum()
        for count in self.phase_ops():
            # Hotspot shift: a fresh rank -> key mapping every phase.
            key_of_rank = rng.permutation(self.n_records)
            emitted = 0
            while emitted < count:
                n = min(512, count - emitted)
                picks = rng.choice(self.n_records, size=n, p=weights)
                keys = key_of_rank[picks]
                reads = rng.random(n) < self.read_ratio
                for key, is_read in zip(keys.tolist(), reads.tolist()):
                    yield (
                        self.store.read(key) if is_read
                        else self.store.update(key)
                    )
                emitted += n

    def accesses(self) -> Iterator[PageAccess]:
        process = self.process
        assert process is not None, "setup() must run before accesses()"
        for touches in self.operations():
            last = len(touches) - 1
            for i, touch in enumerate(touches):
                yield PageAccess(
                    process, touch.vpage, is_write=touch.is_write,
                    op_boundary=(i == last), lines=touch.lines,
                )
