"""A slab-allocated, Memcached-like in-memory key-value store model.

The paper's YCSB experiments run against Memcached, "an in-memory cache
service that uses a large amount of main memory to maintain its data".
What the tiering policy sees from such a store is its *page-level access
pattern*, which is shaped by two things we model faithfully:

* **slab allocation** — records are packed into pages in insertion order,
  so the load phase lays keys out sequentially and the first-loaded
  records are the ones born in DRAM (insertion order is uncorrelated with
  request popularity, which is what gives dynamic tiering its opportunity);
* **the hash table** — every operation first probes a bucket page, giving
  each request a second, uniformly distributed page touch.

Operations translate keys to page touches; the YCSB driver turns those
into :class:`~repro.workloads.base.PageAccess` records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import PAGE_SIZE

__all__ = ["PageTouch", "SlabKVStore", "CACHE_LINE"]

CACHE_LINE = 64


@dataclass(frozen=True)
class PageTouch:
    """One page-granular touch an operation performs."""

    vpage: int
    is_write: bool
    lines: int


class SlabKVStore:
    """Key → page layout of a slab-allocated store.

    The store owns two virtual regions of its host process:

    * ``hash_base`` — the bucket array (8 bytes per bucket pointer);
    * ``data_base`` — slab pages, ``items_per_page`` records each.

    Keys are dense integers (YCSB's ``user<N>`` keys hash uniformly, and a
    dense id keeps the model deterministic).
    """

    def __init__(
        self,
        *,
        value_size: int = 1024,
        hash_base: int = 0,
        data_base: int = 1 << 20,
        overhead: int = 56,
    ) -> None:
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        chunk = value_size + overhead
        if chunk > PAGE_SIZE:
            raise ValueError(
                f"records of {chunk} bytes exceed one page; multi-page items "
                "are out of scope (memcached's default max item fits a slab)"
            )
        self.value_size = value_size
        self.chunk_size = chunk
        self.items_per_page = PAGE_SIZE // chunk
        self.hash_base = hash_base
        self.data_base = data_base
        self._locations: dict[int, int] = {}
        self._next_slot = 0

    # -- layout ------------------------------------------------------------

    @property
    def n_records(self) -> int:
        return len(self._locations)

    def data_pages_used(self) -> int:
        if self._next_slot == 0:
            return 0
        return (self._next_slot - 1) // self.items_per_page + 1

    def hash_pages(self, n_records: int) -> int:
        """Bucket-array pages for ``n_records`` keys (8-byte pointers,
        one bucket per record, memcached's default load factor ~1)."""
        buckets_per_page = PAGE_SIZE // 8
        return max(1, (n_records - 1) // buckets_per_page + 1)

    def footprint_pages(self, n_records: int) -> int:
        """Pages the store will occupy once ``n_records`` are loaded."""
        data = (n_records - 1) // self.items_per_page + 1 if n_records else 0
        return data + self.hash_pages(max(n_records, 1))

    def location(self, key: int) -> int | None:
        """The slab slot holding ``key``, or None if absent."""
        return self._locations.get(key)

    def _data_vpage(self, slot: int) -> int:
        return self.data_base + slot // self.items_per_page

    def _hash_vpage(self, key: int) -> int:
        # Dense keys hash uniformly over buckets; bucket index = key works
        # as a deterministic stand-in for a uniform hash.
        buckets_per_page = PAGE_SIZE // 8
        return self.hash_base + (key * 2654435761 % (1 << 32)) % max(
            1, self.n_records or 1
        ) // buckets_per_page

    # -- operations -----------------------------------------------------------

    def insert(self, key: int) -> list[PageTouch]:
        """SET of a new key: probe the hash bucket, write the record."""
        if key in self._locations:
            return self.update(key)
        slot = self._next_slot
        self._next_slot += 1
        self._locations[key] = slot
        value_lines = self._value_lines()
        return [
            PageTouch(self._hash_vpage(key), is_write=True, lines=1),
            PageTouch(self._data_vpage(slot), is_write=True, lines=value_lines),
        ]

    def read(self, key: int) -> list[PageTouch]:
        """GET: probe the bucket, read the record."""
        slot = self._require(key)
        return [
            PageTouch(self._hash_vpage(key), is_write=False, lines=1),
            PageTouch(self._data_vpage(slot), is_write=False, lines=self._value_lines()),
        ]

    def update(self, key: int) -> list[PageTouch]:
        """SET of an existing key: probe, then overwrite in place."""
        slot = self._require(key)
        return [
            PageTouch(self._hash_vpage(key), is_write=False, lines=1),
            PageTouch(self._data_vpage(slot), is_write=True, lines=self._value_lines()),
        ]

    def read_modify_write(self, key: int) -> list[PageTouch]:
        """YCSB workload F's composite operation."""
        return self.read(key) + self.update(key)

    def _value_lines(self) -> int:
        return max(1, self.chunk_size // CACHE_LINE)

    def _require(self, key: int) -> int:
        slot = self._locations.get(key)
        if slot is None:
            raise KeyError(f"key {key} was never inserted")
        return slot
