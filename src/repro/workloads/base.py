"""Workload interface: anything that drives memory accesses.

A workload declares its processes and regions against a machine in
:meth:`Workload.setup`, then yields a stream of page references.  The
runner in :mod:`repro.run` feeds them to the machine, pumps the daemon
scheduler, and measures virtual time.  Workloads count *operations*
(requests, graph iterations) separately from raw page touches so
throughput matches what the paper reports (ops/sec for YCSB, time per
trial for GAPBS).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

from repro.machine import Machine
from repro.mm.address_space import Process

__all__ = ["PageAccess", "Workload"]


@dataclass(frozen=True, slots=True)
class PageAccess:
    """One page reference emitted by a workload.

    ``lines`` is how many cache lines the operation touches within the
    page (a 1 KiB value read is ~16 lines); the access latency scales
    with it, which is what makes tier placement dominate operation cost
    the way it does on the paper's real machines.
    """

    process: Process
    vpage: int
    is_write: bool = False
    op_boundary: bool = False
    lines: int = 1


class Workload(abc.ABC):
    """Base class for every benchmark driver."""

    name: str = "workload"

    #: True when this workload's stream marks operation completions with
    #: ``op_boundary``.  The runner uses it to keep a phase that
    #: completes zero operations labelled as a real (zero-op) result
    #: instead of falling back to accesses/s; raw page traces leave it
    #: False and rely on markers observed in the stream.
    marks_op_boundaries: bool = False

    @abc.abstractmethod
    def setup(self, machine: Machine) -> None:
        """Create processes and map regions; called once before the stream."""

    @abc.abstractmethod
    def accesses(self) -> Iterator[PageAccess]:
        """The access stream.  ``setup`` has been called already."""

    def footprint_pages(self) -> int:
        """Approximate resident-set target, for configuring machines."""
        return 0
