"""Access-trace recording and replay.

The reproduction is trace driven at heart, so traces are first-class: any
workload can be recorded while it runs (:class:`TraceRecorder`) and the
resulting file replayed later (:class:`TraceReplayWorkload`) against any
policy or configuration.  This is how one captures an expensive workload
once (a long GAPBS kernel, a full YCSB sequence) and sweeps policies over
it cheaply — and how external traces can be brought into the simulator.

File format: a one-line JSON header describing the processes and their
regions, then one line per access::

    {"version": 1, "processes": [{"name": ..., "home_socket": 0,
                                  "regions": [[start, n, is_anon, supervised], ...]}]}
    <process_index> <vpage> <w|r> <lines> <o|->

The format is line oriented and append friendly; gzip-compress large
traces externally if needed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator

from repro.machine import Machine
from repro.mm.address_space import MemoryRegion, Process
from repro.workloads.base import PageAccess, Workload

__all__ = ["TraceRecorder", "TraceReplayWorkload", "TRACE_VERSION"]

TRACE_VERSION = 1


def _region_spec(region: MemoryRegion) -> list:
    return [region.start_vpage, region.n_pages, region.is_anon, region.supervised]


class TraceRecorder(Workload):
    """Tees an inner workload's access stream into a trace file."""

    def __init__(self, inner: Workload, path: str | Path) -> None:
        self.inner = inner
        self.path = Path(path)
        # The tee is transparent: boundary semantics are the inner
        # workload's.
        self.marks_op_boundaries = inner.marks_op_boundaries
        self.name = f"record[{inner.name}]"
        self._processes: list[Process] = []
        self._machine: Machine | None = None

    def setup(self, machine: Machine) -> None:
        before = set(machine.system.processes)
        self.inner.setup(machine)
        created = [
            machine.system.processes[pid]
            for pid in machine.system.processes
            if pid not in before
        ]
        self._processes = sorted(created, key=lambda p: p.pid)
        self._machine = machine

    def footprint_pages(self) -> int:
        return self.inner.footprint_pages()

    def accesses(self) -> Iterator[PageAccess]:
        index_of = {process.pid: i for i, process in enumerate(self._processes)}
        header = {
            "version": TRACE_VERSION,
            "workload": self.inner.name,
            "processes": [
                {
                    "name": process.name,
                    "home_socket": process.home_socket,
                    "regions": [_region_spec(r) for r in process.regions],
                }
                for process in self._processes
            ],
        }
        with self.path.open("w") as fh:
            fh.write(json.dumps(header) + "\n")
            for access in self.inner.accesses():
                index = index_of.get(access.process.pid)
                if index is None:
                    raise RuntimeError(
                        f"access to unregistered process pid={access.process.pid}"
                    )
                fh.write(
                    f"{index} {access.vpage} {'w' if access.is_write else 'r'} "
                    f"{access.lines} {'o' if access.op_boundary else '-'}\n"
                )
                yield access


class TraceReplayWorkload(Workload):
    """Replays a recorded trace file as a workload."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with self.path.open() as fh:
            self.header = json.loads(fh.readline())
        if self.header.get("version") != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {self.header.get('version')!r}"
            )
        self.name = f"replay[{self.header.get('workload', self.path.name)}]"
        self._processes: list[Process] = []

    def setup(self, machine: Machine) -> None:
        self._processes = []
        for spec in self.header["processes"]:
            process = machine.create_process(
                spec["name"], home_socket=spec.get("home_socket", 0)
            )
            for start, n_pages, is_anon, supervised in spec["regions"]:
                process.mmap(
                    MemoryRegion(start, n_pages, is_anon=is_anon, supervised=supervised)
                )
            self._processes.append(process)

    def footprint_pages(self) -> int:
        return sum(
            n_pages
            for spec in self.header["processes"]
            for __, n_pages, __a, __s in spec["regions"]
        )

    def accesses(self) -> Iterator[PageAccess]:
        with self.path.open() as fh:
            fh.readline()  # header
            for line_no, line in enumerate(fh, start=2):
                yield self._parse(line, line_no)

    def _parse(self, line: str, line_no: int) -> PageAccess:
        try:
            index, vpage, rw, lines, boundary = line.split()
            return PageAccess(
                self._processes[int(index)],
                int(vpage),
                is_write=(rw == "w"),
                lines=int(lines),
                op_boundary=(boundary == "o"),
            )
        except (ValueError, IndexError) as exc:
            raise ValueError(f"{self.path}:{line_no}: malformed trace line") from exc
