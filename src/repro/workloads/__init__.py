"""Workload substrate: every benchmark driver used in the evaluation."""

from repro.workloads.base import PageAccess, Workload

__all__ = ["PageAccess", "Workload"]
