"""A scan-capable, clustered-index key-value store.

Section V-B: "YCSB's workload E makes use of SCAN operations that may or
may not be implemented by the different back-end key-value stores.
Memcached does not implement SCAN operations, making workload E
non-operational."  The paper therefore reports no Workload E numbers.

This store is the reproduction's *extension* that closes that gap: a
clustered index (think LSM-less B-tree leaf chain) keeping records in
key order, so SCAN is a sequential walk of adjacent data pages.  Plugging
it into :class:`~repro.workloads.ycsb.YCSBSession` makes workload E
operational — sequential range reads over a footprint larger than DRAM,
the access pattern tiering policies handle worst.

The page-touch interface mirrors :class:`SlabKVStore`; operations first
probe the index (root + leaf, the two levels a few-thousand-key tree
needs), then touch the clustered data pages.
"""

from __future__ import annotations

from repro.sim.config import PAGE_SIZE
from repro.workloads.kvstore import CACHE_LINE, PageTouch

__all__ = ["SortedKVStore"]

_KEYS_PER_INDEX_PAGE = PAGE_SIZE // 16  # key + child pointer per entry


class SortedKVStore:
    """Records clustered by key; SCAN walks consecutive pages."""

    def __init__(
        self,
        *,
        value_size: int = 1024,
        index_base: int = 0,
        data_base: int = 1 << 20,
        overhead: int = 40,
    ) -> None:
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        chunk = value_size + overhead
        if chunk > PAGE_SIZE:
            raise ValueError("multi-page records are out of scope")
        self.value_size = value_size
        self.chunk_size = chunk
        self.items_per_page = PAGE_SIZE // chunk
        self.index_base = index_base
        self.data_base = data_base
        self._keys: set[int] = set()
        self._max_key = -1

    # -- layout ------------------------------------------------------------

    @property
    def n_records(self) -> int:
        return len(self._keys)

    @property
    def hash_base(self) -> int:
        """Metadata-region base (interface parity with the slab store)."""
        return self.index_base

    def hash_pages(self, n_records: int) -> int:
        """Index pages for ``n_records`` keys (named for interface parity
        with the slab store: this is the non-data metadata region)."""
        leaves = max(1, (n_records - 1) // _KEYS_PER_INDEX_PAGE + 1)
        return leaves + 1  # plus the root

    def footprint_pages(self, n_records: int) -> int:
        data = (n_records - 1) // self.items_per_page + 1 if n_records else 0
        return data + self.hash_pages(max(n_records, 1))

    def location(self, key: int) -> int | None:
        """Clustered position: dense keys sit at their own rank."""
        return key if key in self._keys else None

    def _data_vpage(self, key: int) -> int:
        return self.data_base + key // self.items_per_page

    def _index_touches(self, key: int, *, is_write: bool = False) -> list[PageTouch]:
        """Root then leaf probe of the two-level index."""
        leaf = 1 + key // _KEYS_PER_INDEX_PAGE
        return [
            PageTouch(self.index_base, is_write=False, lines=1),
            PageTouch(self.index_base + leaf, is_write=is_write, lines=1),
        ]

    def _value_lines(self) -> int:
        return max(1, self.chunk_size // CACHE_LINE)

    def _require(self, key: int) -> int:
        if key not in self._keys:
            raise KeyError(f"key {key} was never inserted")
        return key

    # -- operations -----------------------------------------------------------

    def insert(self, key: int) -> list[PageTouch]:
        """Clustered insert; YCSB inserts are append-ordered (new max keys)."""
        if key in self._keys:
            return self.update(key)
        self._keys.add(key)
        self._max_key = max(self._max_key, key)
        return self._index_touches(key, is_write=True) + [
            PageTouch(self._data_vpage(key), is_write=True, lines=self._value_lines())
        ]

    def read(self, key: int) -> list[PageTouch]:
        self._require(key)
        return self._index_touches(key) + [
            PageTouch(self._data_vpage(key), is_write=False, lines=self._value_lines())
        ]

    def update(self, key: int) -> list[PageTouch]:
        self._require(key)
        return self._index_touches(key) + [
            PageTouch(self._data_vpage(key), is_write=True, lines=self._value_lines())
        ]

    def read_modify_write(self, key: int) -> list[PageTouch]:
        return self.read(key) + self.update(key)

    def scan(self, start_key: int, count: int) -> list[PageTouch]:
        """Range read of ``count`` records from ``start_key`` onward.

        One index descent, then a sequential walk over the clustered data
        pages — each page read once with the lines its records cover.
        """
        if count <= 0:
            raise ValueError("scan count must be positive")
        self._require(start_key)
        end_key = min(start_key + count - 1, self._max_key)
        touches = self._index_touches(start_key)
        first_page = self._data_vpage(start_key)
        last_page = self._data_vpage(end_key)
        per_page_lines = self.items_per_page * self._value_lines()
        for vpage in range(first_page, last_page + 1):
            touches.append(
                PageTouch(vpage, is_write=False, lines=min(per_page_lines, 64))
            )
        return touches
