"""Shared machinery for the GAPBS kernel workloads.

Each kernel subclasses :class:`GraphKernelWorkload`, which owns the
virtual-memory layout of the CSR graph and the property arrays, the
load pass that first-touches the graph into memory (GAPBS "first loads
the graph in memory and then executes multiple trials of the workload"),
and page-touch emission helpers that coalesce byte ranges into
page-granular :class:`~repro.workloads.base.PageAccess` records.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.sim.config import PAGE_SIZE
from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess, Workload
from repro.workloads.gapbs.graph import Graph

__all__ = ["GraphKernelWorkload"]

_LINE = 64

OFFSETS_BASE = 0
NEIGHBORS_BASE = 1 << 20
WEIGHTS_BASE = 1 << 21
PROP_BASE = 1 << 22
PROP_STRIDE = 1 << 20

OFFSET_BYTES = 8
NEIGHBOR_BYTES = 4
WEIGHT_BYTES = 4
PROP_BYTES = 8


class GraphKernelWorkload(Workload):
    """Base class: CSR layout, load pass, and touch emission."""

    kernel = "abstract"

    def __init__(
        self,
        graph: Graph,
        *,
        trials: int = 1,
        seed: int = 1,
        cpu_cache_hit_rate: float = 0.85,
    ) -> None:
        """``cpu_cache_hit_rate`` models the CPU cache hierarchy absorbing
        most offset/property accesses: those arrays are a few bytes per
        vertex and enjoy high temporal locality, so on real hardware the
        memory system only sees a fraction of their touches.  Cold misses
        (first touch of an unmapped page) always reach memory."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        if not 0.0 <= cpu_cache_hit_rate < 1.0:
            raise ValueError("cpu_cache_hit_rate must lie in [0, 1)")
        self.graph = graph
        self.trials = trials
        self.seed = seed
        self.cpu_cache_hit_rate = cpu_cache_hit_rate
        self.process: Process | None = None
        self.machine: Machine | None = None
        self.loaded = False
        self.name = f"gapbs-{self.kernel}"
        self._prop_regions: list = []
        self._cache_rng = make_rng(seed, f"{self.kernel}-cpu-cache")

    # -- layout -----------------------------------------------------------------

    def _pages(self, n_bytes: int) -> int:
        return max(1, (n_bytes - 1) // PAGE_SIZE + 1)

    def offsets_pages(self) -> int:
        return self._pages((self.graph.n + 1) * OFFSET_BYTES)

    def neighbors_pages(self) -> int:
        return self._pages(self.graph.m_directed * NEIGHBOR_BYTES)

    def prop_pages(self) -> int:
        return self._pages(self.graph.n * PROP_BYTES)

    def n_property_arrays(self) -> int:
        """How many per-vertex arrays the kernel keeps (override)."""
        return 1

    def uses_weights(self) -> bool:
        return False

    def footprint_pages(self) -> int:
        total = self.offsets_pages() + self.neighbors_pages()
        total += self.n_property_arrays() * self.prop_pages()
        if self.uses_weights():
            total += self._pages(self.graph.m_directed * WEIGHT_BYTES)
        return total

    def setup(self, machine: Machine) -> None:
        if self.process is not None:
            return  # already set up (e.g. by the separate load workload)
        self.machine = machine
        self.process = machine.create_process(self.name)
        self.process.mmap_anon(OFFSETS_BASE, self.offsets_pages())
        self.process.mmap_anon(NEIGHBORS_BASE, self.neighbors_pages())
        if self.uses_weights():
            self.process.mmap_anon(
                WEIGHTS_BASE, self._pages(self.graph.m_directed * WEIGHT_BYTES)
            )
        for array_id in range(self.n_property_arrays()):
            region = self.process.mmap_anon(
                PROP_BASE + array_id * PROP_STRIDE, self.prop_pages()
            )
            self._prop_regions.append(region)

    # -- touch emission -----------------------------------------------------------

    def _range_touches(
        self, base: int, byte_lo: int, byte_hi: int, *, is_write: bool, boundary: bool = False
    ) -> Iterator[PageAccess]:
        """Touch every page covering ``[byte_lo, byte_hi)`` of a region."""
        process = self.process
        assert process is not None, "setup() must run before accesses()"
        if byte_hi <= byte_lo:
            byte_hi = byte_lo + 1
        first = byte_lo // PAGE_SIZE
        last = (byte_hi - 1) // PAGE_SIZE
        for page_index in range(first, last + 1):
            lo = max(byte_lo, page_index * PAGE_SIZE)
            hi = min(byte_hi, (page_index + 1) * PAGE_SIZE)
            lines = max(1, (hi - lo + _LINE - 1) // _LINE)
            yield PageAccess(
                process,
                base + page_index,
                is_write=is_write,
                lines=lines,
                op_boundary=boundary and page_index == last,
            )

    def _cache_absorbed(self, base: int, byte_lo: int) -> bool:
        """True when the CPU cache serves this touch (no memory access).

        Cold misses always reach memory: a touch to a page with no
        translation yet must fault it in regardless of cache state.
        """
        process = self.process
        assert process is not None
        vpage = base + byte_lo // PAGE_SIZE
        if vpage not in process.page_table:
            return False
        return bool(self._cache_rng.random() < self.cpu_cache_hit_rate)

    def touch_offsets(self, v: int) -> Iterator[PageAccess]:
        """Read ``offsets[v]`` and ``offsets[v+1]`` (cacheable)."""
        if self._cache_absorbed(OFFSETS_BASE, v * OFFSET_BYTES):
            return iter(())
        return self._range_touches(
            OFFSETS_BASE, v * OFFSET_BYTES, (v + 2) * OFFSET_BYTES, is_write=False
        )

    def touch_neighbors(self, v: int) -> Iterator[PageAccess]:
        """Read vertex v's packed neighbor range."""
        lo = int(self.graph.offsets[v]) * NEIGHBOR_BYTES
        hi = int(self.graph.offsets[v + 1]) * NEIGHBOR_BYTES
        return self._range_touches(NEIGHBORS_BASE, lo, hi, is_write=False)

    def touch_weights(self, v: int) -> Iterator[PageAccess]:
        lo = int(self.graph.offsets[v]) * WEIGHT_BYTES
        hi = int(self.graph.offsets[v + 1]) * WEIGHT_BYTES
        return self._range_touches(WEIGHTS_BASE, lo, hi, is_write=False)

    def touch_prop(
        self, v: int, *, array_id: int = 0, is_write: bool = False
    ) -> Iterator[PageAccess]:
        """Touch one per-vertex property slot (cacheable)."""
        base = PROP_BASE + array_id * PROP_STRIDE
        lo = v * PROP_BYTES
        if self._cache_absorbed(base, lo):
            return iter(())
        return self._range_touches(base, lo, lo + PROP_BYTES, is_write=is_write)

    def end_of_trial(self) -> Iterator[PageAccess]:
        """Mark an operation boundary (one trial = one operation)."""
        return self._range_touches(
            OFFSETS_BASE, 0, OFFSET_BYTES, is_write=False, boundary=True
        )

    # -- the load pass ---------------------------------------------------------------

    def load_pass(self) -> Iterator[PageAccess]:
        """First-touch the CSR (the graph build), as GAPBS does.

        GAPBS builds the CSR once before running trials — offsets,
        weights and the packed neighbor array are the pages that "fill
        the DRAM first" (Section V-C1).  The per-vertex property arrays
        are *not* loaded here: each kernel invocation allocates its own
        result vectors, so their pages are first-touched inside each
        trial — and, with DRAM already full of CSR data, are born in the
        PM tier.  Promoting exactly those hot per-trial pages is where
        dynamic tiering earns its GAPBS gains.
        """
        yield from self._range_touches(
            OFFSETS_BASE, 0, (self.graph.n + 1) * OFFSET_BYTES, is_write=True
        )
        if self.uses_weights():
            yield from self._range_touches(
                WEIGHTS_BASE, 0, self.graph.m_directed * WEIGHT_BYTES, is_write=True
            )
        yield from self._range_touches(
            NEIGHBORS_BASE, 0, self.graph.m_directed * NEIGHBOR_BYTES, is_write=True
        )

    def load_workload(self) -> "GraphLoadWorkload":
        """The load phase as its own workload, so experiments can exclude
        it from trial timing ("We report the average execution time taken
        per trial", Section V-B)."""
        return GraphLoadWorkload(self)

    # -- the kernel -------------------------------------------------------------------

    def accesses(self) -> Iterator[PageAccess]:
        if not self.loaded:
            yield from self.load_pass()
            self.loaded = True
        for trial in range(self.trials):
            yield from self.run_trial(trial)
            yield from self.end_of_trial()
            self._free_trial_arrays()

    def _free_trial_arrays(self) -> None:
        """Drop the per-trial property arrays, as a kernel returning
        frees its result vectors; the next trial re-allocates them."""
        if self.machine is None:
            return
        for region in self._prop_regions:
            self.machine.system.discard_region(self.process, region)

    @abc.abstractmethod
    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        """One trial of the kernel, as a stream of page touches."""


class GraphLoadWorkload(Workload):
    """Runs only a kernel workload's graph-loading pass."""

    def __init__(self, kernel: GraphKernelWorkload) -> None:
        self.kernel = kernel
        self.name = f"{kernel.name}-load"

    def setup(self, machine: Machine) -> None:
        self.kernel.setup(machine)

    def footprint_pages(self) -> int:
        return self.kernel.footprint_pages()

    def accesses(self) -> Iterator[PageAccess]:
        yield from self.kernel.load_pass()
        self.kernel.loaded = True
