"""Connected Components (GAPBS ``cc``).

Label propagation: every vertex repeatedly adopts the smallest component
id among its neighbors until a fixed point.  The per-round full-graph
sweep is the most sequential access pattern of the six kernels.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.graph import Graph

__all__ = ["ConnectedComponentsWorkload"]


class ConnectedComponentsWorkload(GraphKernelWorkload):
    kernel = "cc"

    def __init__(
        self, graph: Graph, *, trials: int = 1, seed: int = 1, max_rounds: int = 12
    ) -> None:
        super().__init__(graph, trials=trials, seed=seed)
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self.max_rounds = max_rounds
        self.final_components: list[int] | None = None

    def n_property_arrays(self) -> int:
        return 1  # component id

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        comp = list(range(graph.n))
        for __round in range(self.max_rounds):
            changed = False
            for u in range(graph.n):
                yield from self.touch_offsets(u)
                yield from self.touch_prop(u)
                best = comp[u]
                yield from self.touch_neighbors(u)
                for v in graph.neigh(u).tolist():
                    yield from self.touch_prop(v)
                    if comp[v] < best:
                        best = comp[v]
                if best < comp[u]:
                    comp[u] = best
                    yield from self.touch_prop(u, is_write=True)
                    changed = True
            if not changed:
                break
        self.final_components = comp
