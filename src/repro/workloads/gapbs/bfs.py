"""Breadth-First Search (GAPBS ``bfs``).

Top-down BFS computing a parent array.  Each trial starts from a
different sampled source, as the GAPBS harness does.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload

__all__ = ["BFSWorkload"]


class BFSWorkload(GraphKernelWorkload):
    kernel = "bfs"

    def n_property_arrays(self) -> int:
        return 1  # parent

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        rng = make_rng(self.seed, f"bfs-src-{trial}")
        source = int(rng.integers(0, graph.n))
        parent = {source: source}
        yield from self.touch_prop(source, is_write=True)
        frontier = [source]
        while frontier:
            next_frontier = []
            for u in frontier:
                yield from self.touch_offsets(u)
                yield from self.touch_neighbors(u)
                for v in graph.neigh(u).tolist():
                    yield from self.touch_prop(v)
                    if v not in parent:
                        parent[v] = u
                        yield from self.touch_prop(v, is_write=True)
                        next_frontier.append(v)
            frontier = next_frontier
