"""GAPBS-style graph analytics workloads: the six evaluation kernels."""

from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.bc import BetweennessCentralityWorkload
from repro.workloads.gapbs.bfs import BFSWorkload
from repro.workloads.gapbs.cc import ConnectedComponentsWorkload
from repro.workloads.gapbs.graph import Graph
from repro.workloads.gapbs.pagerank import PageRankWorkload
from repro.workloads.gapbs.sssp import SSSPWorkload
from repro.workloads.gapbs.tc import TriangleCountWorkload

KERNELS = {
    "bfs": BFSWorkload,
    "sssp": SSSPWorkload,
    "pr": PageRankWorkload,
    "cc": ConnectedComponentsWorkload,
    "bc": BetweennessCentralityWorkload,
    "tc": TriangleCountWorkload,
}
"""The six GAPBS workloads of the paper's Figure 6, by short name."""

__all__ = [
    "Graph",
    "GraphKernelWorkload",
    "BFSWorkload",
    "SSSPWorkload",
    "PageRankWorkload",
    "ConnectedComponentsWorkload",
    "BetweennessCentralityWorkload",
    "TriangleCountWorkload",
    "KERNELS",
]
