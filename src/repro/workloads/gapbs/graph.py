"""CSR graphs and generators for the GAPBS-style kernels.

GAPBS loads a graph into memory (CSR: an offsets array plus a packed
neighbor array) and then runs trials of each kernel over the resident
representation.  The memory layout below mirrors that: each CSR array
occupies its own contiguous virtual region, so a kernel's traversal order
produces the same page-level locality structure the real benchmark shows
(sequential offset reads, neighbor bursts, scattered property access).

Generators: ``uniform`` (Erdős–Rényi-style random edges) and ``rmat``
(the Kronecker/R-MAT generator GAPBS uses for its synthetic inputs,
giving the skewed degree distribution real-world graphs have).
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import make_rng

__all__ = ["Graph"]


class Graph:
    """An undirected graph in CSR form."""

    def __init__(self, n_vertices: int, edges: np.ndarray) -> None:
        """Build CSR from an ``(m, 2)`` array of (u, v) pairs.

        Self-loops are dropped and each edge is stored in both directions
        (undirected, as GAPBS does for its kernels by default).
        """
        if n_vertices <= 0:
            raise ValueError("graph needs at least one vertex")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError("edge endpoint out of range")
        keep = edges[:, 0] != edges[:, 1]
        edges = edges[keep]
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        # Deduplicate parallel edges.
        if len(both):
            uniq = np.ones(len(both), dtype=bool)
            uniq[1:] = (both[1:] != both[:-1]).any(axis=1)
            both = both[uniq]
        self.n = n_vertices
        self.offsets = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(self.offsets, both[:, 0] + 1, 1)
        np.cumsum(self.offsets, out=self.offsets)
        self.neighbors = both[:, 1].astype(np.int32)

    @property
    def m_directed(self) -> int:
        """Stored (directed) edge count — twice the undirected count."""
        return len(self.neighbors)

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neigh(self, v: int) -> np.ndarray:
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    # -- generators -------------------------------------------------------------

    @classmethod
    def uniform(cls, n_vertices: int, n_edges: int, seed: int = 1) -> "Graph":
        """Uniform random graph with ~``n_edges`` undirected edges."""
        rng = make_rng(seed, f"uniform-graph-{n_vertices}-{n_edges}")
        pairs = rng.integers(0, n_vertices, size=(n_edges, 2), dtype=np.int64)
        return cls(n_vertices, pairs)

    @classmethod
    def rmat(cls, scale: int, edge_factor: int = 16, seed: int = 1) -> "Graph":
        """R-MAT (Kronecker) graph: 2^scale vertices, skewed degrees.

        Uses GAPBS's Graph500 parameters (a, b, c) = (0.57, 0.19, 0.19).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = 1 << scale
        m = n * edge_factor
        rng = make_rng(seed, f"rmat-{scale}-{edge_factor}")
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        a, b, c = 0.57, 0.19, 0.19
        for bit in range(scale):
            draw = rng.random(m)
            src_bit = (draw > a + b).astype(np.int64)
            # Given the src bit, pick the dst bit with the conditional odds.
            dst_threshold = np.where(src_bit == 0, a / (a + b), c / (1 - a - b))
            dst_bit = (rng.random(m) > dst_threshold).astype(np.int64)
            src |= src_bit << bit
            dst |= dst_bit << bit
        # Permute vertex ids so degree is uncorrelated with id (GAPBS -p).
        perm = rng.permutation(n)
        return cls(n, np.stack([perm[src], perm[dst]], axis=1))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m_directed={self.m_directed})"
