"""Single-Source Shortest Paths (GAPBS ``sssp``).

Dijkstra with a binary heap over integer edge weights (GAPBS uses
delta-stepping for parallelism; the sequential access pattern — scan a
settled vertex's neighbor and weight ranges, then scattered distance
relaxations — is the same, which is what the tiering policies see).
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.graph import Graph

__all__ = ["SSSPWorkload"]


class SSSPWorkload(GraphKernelWorkload):
    kernel = "sssp"

    def __init__(self, graph: Graph, *, trials: int = 1, seed: int = 1) -> None:
        super().__init__(graph, trials=trials, seed=seed)
        rng = make_rng(seed, "sssp-weights")
        self.weights = rng.integers(1, 256, size=graph.m_directed, dtype=np.int32)

    def n_property_arrays(self) -> int:
        return 1  # dist

    def uses_weights(self) -> bool:
        return True

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        rng = make_rng(self.seed, f"sssp-src-{trial}")
        source = int(rng.integers(0, graph.n))
        dist = {source: 0}
        yield from self.touch_prop(source, is_write=True)
        heap = [(0, source)]
        settled = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            yield from self.touch_offsets(u)
            yield from self.touch_neighbors(u)
            yield from self.touch_weights(u)
            lo = int(graph.offsets[u])
            for k, v in enumerate(graph.neigh(u).tolist()):
                nd = d + int(self.weights[lo + k])
                yield from self.touch_prop(v)
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    yield from self.touch_prop(v, is_write=True)
                    heapq.heappush(heap, (nd, v))
