"""Triangle Counting (GAPBS ``tc``).

Merge-based counting: for every ordered edge (u, v) with u < v, intersect
the two sorted adjacency lists.  TC re-reads neighbor ranges constantly,
so its working set is dominated by the CSR edge array.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.graph import Graph

__all__ = ["TriangleCountWorkload"]


class TriangleCountWorkload(GraphKernelWorkload):
    kernel = "tc"

    def __init__(self, graph: Graph, *, trials: int = 1, seed: int = 1) -> None:
        super().__init__(graph, trials=trials, seed=seed)
        self.triangles: int | None = None

    def n_property_arrays(self) -> int:
        return 1  # per-vertex counts

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        total = 0
        for u in range(graph.n):
            yield from self.touch_offsets(u)
            neigh_u = graph.neigh(u)
            higher = neigh_u[neigh_u > u]
            if len(higher) == 0:
                continue
            yield from self.touch_neighbors(u)
            for v in higher.tolist():
                yield from self.touch_offsets(v)
                yield from self.touch_neighbors(v)
                neigh_v = graph.neigh(v)
                # Both lists are sorted; count common neighbors above v.
                common = np.intersect1d(higher, neigh_v[neigh_v > v], assume_unique=False)
                total += len(common)
            yield from self.touch_prop(u, is_write=True)
        self.triangles = total
