"""PageRank (GAPBS ``pr``).

Push-style power iteration: each vertex streams its neighbor range and
scatters contributions into the next-rank array.  The sequential
offset/neighbor scans plus the scattered property writes give PR its
characteristic mixed locality.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.graph import Graph

__all__ = ["PageRankWorkload"]

DAMPING = 0.85


class PageRankWorkload(GraphKernelWorkload):
    kernel = "pr"

    def __init__(
        self, graph: Graph, *, trials: int = 1, seed: int = 1, iterations: int = 3
    ) -> None:
        super().__init__(graph, trials=trials, seed=seed)
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = iterations
        self.final_ranks: list[float] | None = None

    def n_property_arrays(self) -> int:
        return 2  # rank, next_rank

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        n = graph.n
        rank = [1.0 / n] * n
        base = (1.0 - DAMPING) / n
        for __iteration in range(self.iterations):
            next_rank = [base] * n
            for u in range(n):
                yield from self.touch_prop(u, array_id=0)
                yield from self.touch_offsets(u)
                degree = graph.degree(u)
                if degree == 0:
                    continue
                share = DAMPING * rank[u] / degree
                yield from self.touch_neighbors(u)
                for v in graph.neigh(u).tolist():
                    next_rank[v] += share
                    yield from self.touch_prop(v, array_id=1, is_write=True)
            rank = next_rank
        self.final_ranks = rank
