"""Betweenness Centrality (GAPBS ``bc``).

Brandes' algorithm from a sample of source vertices: a forward BFS
accumulating shortest-path counts, then a reverse dependency pass.  BC
touches every property array twice per edge, making it the most
property-intensive kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess
from repro.workloads.gapbs.base import GraphKernelWorkload
from repro.workloads.gapbs.graph import Graph

__all__ = ["BetweennessCentralityWorkload"]


class BetweennessCentralityWorkload(GraphKernelWorkload):
    kernel = "bc"

    def __init__(
        self, graph: Graph, *, trials: int = 1, seed: int = 1, n_sources: int = 2
    ) -> None:
        super().__init__(graph, trials=trials, seed=seed)
        if n_sources <= 0:
            raise ValueError("n_sources must be positive")
        self.n_sources = n_sources

    def n_property_arrays(self) -> int:
        return 4  # depth, sigma, delta, centrality

    def run_trial(self, trial: int) -> Iterator[PageAccess]:
        graph = self.graph
        rng = make_rng(self.seed, f"bc-src-{trial}")
        for source in rng.integers(0, graph.n, size=self.n_sources).tolist():
            yield from self._brandes(int(source))

    def _brandes(self, source: int) -> Iterator[PageAccess]:
        graph = self.graph
        depth = {source: 0}
        sigma = {source: 1.0}
        order: list[int] = []
        queue = deque([source])
        yield from self.touch_prop(source, array_id=0, is_write=True)
        yield from self.touch_prop(source, array_id=1, is_write=True)
        while queue:
            u = queue.popleft()
            order.append(u)
            yield from self.touch_offsets(u)
            yield from self.touch_neighbors(u)
            for v in graph.neigh(u).tolist():
                yield from self.touch_prop(v, array_id=0)
                if v not in depth:
                    depth[v] = depth[u] + 1
                    sigma[v] = 0.0
                    queue.append(v)
                    yield from self.touch_prop(v, array_id=0, is_write=True)
                if depth[v] == depth[u] + 1:
                    sigma[v] += sigma[u]
                    yield from self.touch_prop(v, array_id=1, is_write=True)
        delta = {u: 0.0 for u in order}
        for u in reversed(order):
            yield from self.touch_offsets(u)
            yield from self.touch_neighbors(u)
            for v in graph.neigh(u).tolist():
                if v in depth and depth[v] == depth[u] + 1 and sigma[v] > 0:
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
                    yield from self.touch_prop(v, array_id=2)
            yield from self.touch_prop(u, array_id=2, is_write=True)
            if u != source:
                yield from self.touch_prop(u, array_id=3, is_write=True)
