"""YCSB workload generators over the slab KV store.

Section V-B: "These workloads are named Workload A, B, C, D, E, and F.
Workload A is a mix of 50% reads, and 50% writes.  Workload B is 95%
reads, and only 5% writes.  Workload C is 100% read.  None of these
workloads inserts new records except workload D, where new items are
added and read. ... in workload F, a record is read, modified, and then
written back.  We also created a new workload W, which issues 100%
writes."  Workload E needs SCAN, "making workload E non-operational" on
Memcached — requesting it raises, exactly mirroring the paper.

Request keys follow YCSB's distributions: a *scrambled zipfian* (the
popular keys are scattered across the keyspace, hence across slab pages
loaded in insertion order) for A/B/C/F/W, and the *latest* distribution
(recency-skewed toward the newest inserts) for D.

The prescribed execution sequence (Section V-B) is Load, A, B, C, F, W,
then D last because D grows the record count; :class:`YCSBSession`
manages the shared store and process across phases so the sequence runs
against warm machine state, as on the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess, Workload
from repro.workloads.kvstore import SlabKVStore

__all__ = ["YCSBSession", "YCSBPhase", "YCSBLoadPhase", "WORKLOAD_MIXES", "EXECUTION_SEQUENCE"]

ZIPFIAN_CONSTANT = 0.99
"""YCSB's default request-distribution skew."""

_BATCH = 2048


@dataclass(frozen=True)
class _Mix:
    """Operation ratios of one YCSB workload."""

    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1, got {total}")


WORKLOAD_MIXES: dict[str, _Mix] = {
    "A": _Mix(read=0.5, update=0.5),
    "B": _Mix(read=0.95, update=0.05),
    "C": _Mix(read=1.0),
    "D": _Mix(read=0.95, insert=0.05, distribution="latest"),
    "E": _Mix(scan=0.95, insert=0.05),
    "F": _Mix(read=0.5, rmw=0.5),
    "W": _Mix(update=1.0),
}

MAX_SCAN_LENGTH = 100
"""YCSB workload E's default maximum scan length."""

EXECUTION_SEQUENCE = ("A", "B", "C", "F", "W", "D")
"""The prescribed order (D last, because it grows the record count)."""


class YCSBSession:
    """Shared store, process and key-popularity state for one sequence."""

    def __init__(
        self,
        n_records: int,
        *,
        value_size: int = 1024,
        seed: int = 42,
        insert_headroom: float = 0.5,
        hash_cache_hit_rate: float = 0.8,
        backend: str = "memcached",
    ) -> None:
        """``hash_cache_hit_rate`` models the CPU cache absorbing most
        hash-bucket probes.  At real scale the bucket array spans many
        thousands of pages; at simulation scale it collapses to a handful
        of pages that would otherwise receive an outsized share of memory
        touches, so the hot buckets are treated as cache-resident with
        this probability (execution phases only — the load phase streams
        through cold buckets).

        ``backend`` selects the store: ``"memcached"`` (the paper's slab
        store — workload E is non-operational, as reported) or
        ``"sorted"`` (the scan-capable clustered store, the reproduction's
        extension that makes workload E runnable)."""
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        if not 0.0 <= hash_cache_hit_rate <= 1.0:
            raise ValueError("hash_cache_hit_rate must lie in [0, 1]")
        self.n_records = n_records
        self.seed = seed
        self.hash_cache_hit_rate = hash_cache_hit_rate
        self.backend = backend
        if backend == "memcached":
            self.store = SlabKVStore(value_size=value_size)
        elif backend == "sorted":
            from repro.workloads.sorted_store import SortedKVStore

            self.store = SortedKVStore(value_size=value_size)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.process: Process | None = None
        self.max_records = int(n_records * (1.0 + insert_headroom))
        self.next_key = 0
        # Scrambling: popularity rank -> key, fixed for the whole session.
        rng = make_rng(seed, "ycsb-scramble")
        self._key_of_rank = rng.permutation(self.max_records)
        self.zeta = IncrementalZeta(ZIPFIAN_CONSTANT)

    # -- machine wiring -------------------------------------------------------

    def ensure_setup(self, machine: Machine) -> Process:
        """Create the backing process and regions on first use."""
        if self.process is None:
            self.process = machine.create_process("memcached")
            hash_pages = self.store.hash_pages(self.max_records)
            data_pages = self.store.footprint_pages(self.max_records) - hash_pages
            self.process.mmap_anon(self.store.hash_base, hash_pages + 8)
            self.process.mmap_anon(self.store.data_base, data_pages + 8)
        return self.process

    def footprint_pages(self) -> int:
        return self.store.footprint_pages(self.n_records)

    # -- key selection ----------------------------------------------------------

    def zipf_weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-ZIPFIAN_CONSTANT)
        return weights / weights.sum()

    def scrambled_key(self, rank: int, n: int) -> int:
        """Map a popularity rank onto the loaded keyspace."""
        return int(self._key_of_rank[rank] % n)

    # -- phases --------------------------------------------------------------

    def load_phase(self) -> "YCSBLoadPhase":
        return YCSBLoadPhase(self)

    def phase(self, name: str, ops: int) -> "YCSBPhase":
        name = name.upper()
        if name == "E" and not hasattr(self.store, "scan"):
            raise ValueError(
                "workload E issues SCAN operations, which Memcached does not "
                "implement — non-operational, as reported in the paper "
                "(use backend='sorted' to run E against the scan-capable store)"
            )
        if name not in WORKLOAD_MIXES:
            raise KeyError(f"unknown YCSB workload {name!r}")
        return YCSBPhase(self, name, WORKLOAD_MIXES[name], ops)


class YCSBLoadPhase(Workload):
    """Insert every record sequentially — the footprint-defining phase."""

    marks_op_boundaries = True

    def __init__(self, session: YCSBSession) -> None:
        self.session = session
        self.name = "ycsb-load"

    def setup(self, machine: Machine) -> None:
        self.session.ensure_setup(machine)

    def footprint_pages(self) -> int:
        return self.session.footprint_pages()

    def accesses(self) -> Iterator[PageAccess]:
        session = self.session
        process = session.process
        assert process is not None
        for key in range(session.n_records):
            touches = session.store.insert(key)
            session.next_key = key + 1
            last = len(touches) - 1
            for i, touch in enumerate(touches):
                yield PageAccess(
                    process,
                    touch.vpage,
                    is_write=touch.is_write,
                    lines=touch.lines,
                    op_boundary=(i == last),
                )


class YCSBPhase(Workload):
    """One execution-phase workload (A, B, C, D, F or W)."""

    marks_op_boundaries = True

    def __init__(self, session: YCSBSession, label: str, mix: _Mix, ops: int) -> None:
        if ops <= 0:
            raise ValueError("ops must be positive")
        self.session = session
        self.label = label
        self.mix = mix
        self.ops = ops
        self.name = f"ycsb-{label.lower()}"

    def setup(self, machine: Machine) -> None:
        self.session.ensure_setup(machine)
        if self.session.next_key == 0:
            raise RuntimeError("run the load phase before an execution phase")

    def footprint_pages(self) -> int:
        return self.session.footprint_pages()

    def accesses(self) -> Iterator[PageAccess]:
        session = self.session
        store = session.store
        process = session.process
        assert process is not None
        rng = make_rng(session.seed, f"ycsb-{self.label}")
        mix = self.mix
        thresholds = np.cumsum([mix.read, mix.update, mix.insert, mix.rmw, mix.scan])
        emitted = 0
        while emitted < self.ops:
            batch = min(_BATCH, self.ops - emitted)
            op_draw = rng.random(batch)
            rank_draw = rng.random(batch)
            hit_rate = session.hash_cache_hit_rate
            data_base = store.data_base
            for i in range(batch):
                touches = self._one_op(rng, op_draw[i], rank_draw[i], thresholds)
                last = len(touches) - 1
                for j, touch in enumerate(touches):
                    is_hash_probe = touch.vpage < data_base
                    if is_hash_probe and j != last and rng.random() < hit_rate:
                        continue  # bucket served from the CPU cache
                    yield PageAccess(
                        process,
                        touch.vpage,
                        is_write=touch.is_write,
                        lines=touch.lines,
                        op_boundary=(j == last),
                    )
            emitted += batch

    def _one_op(self, rng, op_p: float, rank_p: float, thresholds) -> list:
        session = self.session
        store = session.store
        if op_p < thresholds[0]:
            return store.read(self._pick_key(rng, rank_p))
        if op_p < thresholds[1]:
            return store.update(self._pick_key(rng, rank_p))
        if op_p < thresholds[2]:
            key = session.next_key
            if key >= session.max_records:
                # Headroom exhausted: degrade to an update of the newest key.
                return store.update(session.next_key - 1)
            session.next_key = key + 1
            return store.insert(key)
        if op_p < thresholds[3]:
            return store.read_modify_write(self._pick_key(rng, rank_p))
        length = int(rng.integers(1, MAX_SCAN_LENGTH + 1))
        return store.scan(self._pick_key(rng, rank_p), length)

    def _pick_key(self, rng, rank_p: float) -> int:
        session = self.session
        n = session.next_key
        rank = self._zipf_rank(rank_p, n)
        if self.mix.distribution == "latest":
            # Recency skew: rank 0 = newest insert.
            return n - 1 - rank
        return session.scrambled_key(rank, n)

    def _zipf_rank(self, p: float, n: int) -> int:
        """Inverse-CDF zipfian rank via YCSB's ZipfianGenerator closed
        form, avoiding an O(n) weight table per draw."""
        theta = ZIPFIAN_CONSTANT
        zetan = self.session.zeta.upto(n)
        zeta2 = 1.0 + 0.5 ** theta
        if n <= 2:
            return 0 if p * zetan < 1.0 else min(1, n - 1)
        alpha = 1.0 / (1.0 - theta)
        eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - zeta2 / zetan)
        uz = p * zetan
        if uz < 1.0:
            return 0
        if uz < zeta2:
            return 1
        return int(n * (eta * p - eta + 1) ** alpha) % n


class IncrementalZeta:
    """Generalized harmonic number sum_{i=1..n} i^-theta, grown in O(1)
    amortized as workload D's inserts extend the keyspace."""

    def __init__(self, theta: float) -> None:
        self.theta = theta
        self._n = 0
        self._value = 0.0

    def upto(self, n: int) -> float:
        if n < self._n:
            # Shrinking never happens in YCSB; recompute defensively.
            self._n = 0
            self._value = 0.0
        while self._n < n:
            self._n += 1
            self._value += self._n ** (-self.theta)
        return self._value
