"""Section II-A motivation workloads (Figures 1 and 2).

The paper traces sampled pages in four benchmarks — RUBiS (OLTP),
SPECpower (OLTP at 80% load), DaCapo xalan (XML→HTML) and DaCapo
lusearch (Lucene search) — and finds three page populations:

* **DRAM-friendly** pages: "frequent accesses throughout the execution
  period";
* **rare** pages: "very infrequent accesses over the entire execution";
* **Tier-friendly** pages: "bimodal access behavior whereby for some time
  segments they get accessed at a much higher rate than other time
  segments".

We reproduce those populations synthetically: each profile fixes the mix
of the three classes and their per-segment rates, chosen to echo the
qualitative texture of the corresponding heatmap panel (the figures only
establish that such pages exist and that multiple accesses predict future
accesses — both of which are properties of the class structure, not of
the specific applications).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess, Workload

__all__ = ["MotivationProfile", "MotivationWorkload", "PROFILES"]


@dataclass(frozen=True)
class MotivationProfile:
    """Mix and rates of the three page populations."""

    name: str
    dram_friendly_fraction: float
    tier_friendly_fraction: float
    hot_rate: float
    """Relative access weight of a DRAM-friendly page in any segment."""
    burst_rate: float
    """Weight of a Tier-friendly page during one of its active segments."""
    burst_probability: float
    """Chance a Tier-friendly page is active in a given segment."""
    rare_rate: float = 0.02

    def __post_init__(self) -> None:
        if self.dram_friendly_fraction + self.tier_friendly_fraction >= 1.0:
            raise ValueError("class fractions must leave room for rare pages")


PROFILES: dict[str, MotivationProfile] = {
    # OLTP with a modest steady hot set and many bursty session buffers.
    "rubis": MotivationProfile("rubis", 0.10, 0.30, 8.0, 10.0, 0.35),
    # High, steady transaction load: a large stable hot set.
    "specpower": MotivationProfile("specpower", 0.25, 0.15, 10.0, 8.0, 0.30),
    # Phase-structured transform: most activity is bursty buffers.
    "xalan": MotivationProfile("xalan", 0.05, 0.45, 6.0, 12.0, 0.40),
    # Index search: small hot index core, scattered cold corpus.
    "lusearch": MotivationProfile("lusearch", 0.08, 0.20, 9.0, 9.0, 0.25),
}


class MotivationWorkload(Workload):
    """Segmented access generator over the three page populations."""

    marks_op_boundaries = True

    def __init__(
        self,
        profile: MotivationProfile | str,
        *,
        pages: int = 2000,
        segments: int = 24,
        ops_per_segment: int = 10_000,
        seed: int = 11,
        lines: int = 8,
    ) -> None:
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if pages <= 0 or segments <= 0 or ops_per_segment <= 0:
            raise ValueError("pages, segments and ops_per_segment must be positive")
        self.profile = profile
        self.pages = pages
        self.segments = segments
        self.ops_per_segment = ops_per_segment
        self.seed = seed
        self.lines = lines
        self.process: Process | None = None
        self.name = f"motivation-{profile.name}"
        n_hot = int(pages * profile.dram_friendly_fraction)
        n_tier = int(pages * profile.tier_friendly_fraction)
        rng = make_rng(seed, f"motivation-{profile.name}-classes")
        ids = rng.permutation(pages)
        self.dram_friendly = np.sort(ids[:n_hot])
        self.tier_friendly = np.sort(ids[n_hot : n_hot + n_tier])
        self.rare = np.sort(ids[n_hot + n_tier :])

    def page_class(self, vpage: int) -> str:
        """Which population a page belongs to (for analysis/tests)."""
        if vpage in set(self.dram_friendly.tolist()):
            return "dram_friendly"
        if vpage in set(self.tier_friendly.tolist()):
            return "tier_friendly"
        return "rare"

    def footprint_pages(self) -> int:
        return self.pages

    def setup(self, machine: Machine) -> None:
        self.process = machine.create_process(self.name)
        self.process.mmap_anon(0, self.pages)

    def _segment_weights(self, rng: np.random.Generator, segment: int) -> np.ndarray:
        profile = self.profile
        weights = np.full(self.pages, profile.rare_rate, dtype=np.float64)
        weights[self.dram_friendly] = profile.hot_rate
        bursting = rng.random(len(self.tier_friendly)) < profile.burst_probability
        weights[self.tier_friendly[bursting]] = profile.burst_rate
        weights[self.tier_friendly[~bursting]] = profile.rare_rate
        return weights / weights.sum()

    def trace(self) -> Iterator[tuple[int, int]]:
        """Machine-free ``(segment, vpage)`` stream for pure analysis."""
        rng = make_rng(self.seed, f"motivation-{self.profile.name}-trace")
        for segment in range(self.segments):
            weights = self._segment_weights(rng, segment)
            picks = rng.choice(self.pages, size=self.ops_per_segment, p=weights)
            for vpage in picks.tolist():
                yield segment, vpage

    def accesses(self) -> Iterator[PageAccess]:
        process = self.process
        assert process is not None, "setup() must run before accesses()"
        for __segment, vpage in self.trace():
            yield PageAccess(process, vpage, op_boundary=True, lines=self.lines)
