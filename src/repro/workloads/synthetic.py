"""Synthetic access-pattern workloads.

Building blocks for tests and the motivation experiments: Zipf-skewed
random access (the shape of most key-value traffic), uniform random
access (weak locality — the case Section V-C1 predicts MULTI-CLOCK will
not help), sequential scans, and a phase-shifting hot-set workload whose
hot region migrates over time (the "Tier friendly pages" of Figure 1).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.sim.rng import make_rng
from repro.workloads.base import PageAccess, Workload

__all__ = [
    "ZipfWorkload",
    "UniformWorkload",
    "SequentialScanWorkload",
    "ShiftingHotSetWorkload",
]

_BATCH = 4096


class _SingleProcessWorkload(Workload):
    """Common setup: one process with one anonymous region."""

    # _emit marks every access as an operation completion.
    marks_op_boundaries = True

    def __init__(
        self,
        pages: int,
        ops: int,
        *,
        seed: int = 7,
        write_ratio: float = 0.0,
        lines: int = 8,
    ) -> None:
        if pages <= 0 or ops <= 0:
            raise ValueError("pages and ops must be positive")
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must lie in [0, 1]")
        if lines <= 0:
            raise ValueError("lines must be positive")
        self.pages = pages
        self.ops = ops
        self.write_ratio = write_ratio
        self.lines = lines
        self.seed = seed
        self.process: Process | None = None

    def setup(self, machine: Machine) -> None:
        self.process = machine.create_process(self.name)
        self.process.mmap_anon(0, self.pages)

    def footprint_pages(self) -> int:
        return self.pages

    def _emit(self, vpages: np.ndarray, writes: np.ndarray) -> Iterator[PageAccess]:
        process = self.process
        assert process is not None, "setup() must run before accesses()"
        lines = self.lines
        for vpage, is_write in zip(vpages.tolist(), writes.tolist()):
            yield PageAccess(process, vpage, is_write=is_write, op_boundary=True, lines=lines)

    def numeric_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """The machine-independent stream: ``(vpages, writes)`` arrays.

        Deterministic in the constructor arguments alone — no process or
        machine state — which is what lets the sweep pool generate the
        stream once and replay it across many cells
        (:meth:`~repro.machine.Machine.touch_batch_array`).
        ``accesses()`` is defined as the emission of exactly these
        batches, so the two drivers see identical reference sequences.
        """
        raise NotImplementedError

    def accesses(self) -> Iterator[PageAccess]:
        for vpages, writes in self.numeric_batches():
            yield from self._emit(vpages, writes)


class ZipfWorkload(_SingleProcessWorkload):
    """Zipf-distributed page popularity — strong skew, stable hot set."""

    name = "zipf"

    def __init__(
        self,
        pages: int,
        ops: int,
        *,
        alpha: float = 1.1,
        seed: int = 7,
        write_ratio: float = 0.0,
        lines: int = 8,
    ) -> None:
        super().__init__(pages, ops, seed=seed, write_ratio=write_ratio, lines=lines)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha

    def numeric_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        rng = make_rng(self.seed, f"zipf-{self.pages}-{self.alpha}")
        ranks = np.arange(1, self.pages + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        weights /= weights.sum()
        # Popularity rank -> page id shuffle, so hot pages are scattered.
        page_of_rank = rng.permutation(self.pages)
        emitted = 0
        while emitted < self.ops:
            n = min(_BATCH, self.ops - emitted)
            picks = rng.choice(self.pages, size=n, p=weights)
            vpages = page_of_rank[picks]
            writes = rng.random(n) < self.write_ratio
            yield vpages, writes
            emitted += n


class UniformWorkload(_SingleProcessWorkload):
    """Uniform random access — no locality for a tiering policy to exploit."""

    name = "uniform"

    def numeric_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        rng = make_rng(self.seed, f"uniform-{self.pages}")
        emitted = 0
        while emitted < self.ops:
            n = min(_BATCH, self.ops - emitted)
            vpages = rng.integers(0, self.pages, size=n)
            writes = rng.random(n) < self.write_ratio
            yield vpages, writes
            emitted += n


class SequentialScanWorkload(_SingleProcessWorkload):
    """Repeated sequential sweeps — the classic LRU-hostile pattern."""

    name = "seqscan"

    def numeric_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        rng = make_rng(self.seed, "seqscan")
        emitted = 0
        while emitted < self.ops:
            n = min(_BATCH, self.ops - emitted)
            vpages = np.arange(emitted, emitted + n) % self.pages
            # Scalar draws, one per access, to preserve the historical
            # per-access RNG call sequence exactly.
            writes = np.array(
                [rng.random() < self.write_ratio for _ in range(n)], dtype=bool
            )
            yield vpages, writes
            emitted += n


class ShiftingHotSetWorkload(_SingleProcessWorkload):
    """A hot set that relocates periodically — "Tier friendly" pages.

    Pages in the current hot window receive the bulk of accesses; every
    ``phase_ops`` operations the window jumps elsewhere in the footprint,
    so yesterday's hot pages go cold in PM and today's must be promoted —
    the access behaviour Figure 1 motivates dynamic tiering with.
    """

    name = "shifting-hotset"

    def __init__(
        self,
        pages: int,
        ops: int,
        *,
        hot_fraction: float = 0.1,
        hot_access_probability: float = 0.9,
        phase_ops: int = 20_000,
        seed: int = 7,
        write_ratio: float = 0.0,
        lines: int = 8,
    ) -> None:
        super().__init__(pages, ops, seed=seed, write_ratio=write_ratio, lines=lines)
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must lie in (0, 1)")
        if not 0.0 < hot_access_probability <= 1.0:
            raise ValueError("hot_access_probability must lie in (0, 1]")
        if phase_ops <= 0:
            raise ValueError("phase_ops must be positive")
        self.hot_fraction = hot_fraction
        self.hot_access_probability = hot_access_probability
        self.phase_ops = phase_ops

    def numeric_batches(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        rng = make_rng(self.seed, "shifting-hotset")
        hot_pages = max(1, int(self.pages * self.hot_fraction))
        emitted = 0
        while emitted < self.ops:
            hot_start = int(rng.integers(0, max(1, self.pages - hot_pages)))
            phase = min(self.phase_ops, self.ops - emitted)
            in_hot = rng.random(phase) < self.hot_access_probability
            hot_picks = rng.integers(hot_start, hot_start + hot_pages, size=phase)
            cold_picks = rng.integers(0, self.pages, size=phase)
            vpages = np.where(in_hot, hot_picks, cold_picks)
            writes = rng.random(phase) < self.write_ratio
            yield vpages, writes
            emitted += phase
