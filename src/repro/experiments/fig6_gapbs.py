"""Figure 6: GAPBS execution time normalized to static tiering.

"MULTI-CLOCK outperforms static tiering by 4-68% for the GAPBS
workloads.  When compared to Nimble, MULTI-CLOCK improved the execution
time by 1-16%. ... AT-CPM shows 3% and 1% better performance than
MULTI-CLOCK for BFS and BC workloads" — i.e. the gaps are much smaller
than YCSB's, and AT-CPM can edge ahead where initial placement is lucky.
"""

from __future__ import annotations

from repro.analysis.compare import PolicyComparison, normalize_exec_time
from repro.experiments.common import EVALUATED_POLICIES, scaled_config
from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.workloads.gapbs import KERNELS, Graph

__all__ = ["run_fig6", "render_fig6", "GAPBS_KERNEL_ORDER"]

GAPBS_KERNEL_ORDER = ("bfs", "sssp", "pr", "cc", "bc", "tc")


def run_fig6(
    *,
    scale_exp: int = 12,
    edge_factor: int = 10,
    trials: int = 3,
    interval_s: float = 0.1,
    policies: tuple[str, ...] = EVALUATED_POLICIES,
    kernels: tuple[str, ...] = GAPBS_KERNEL_ORDER,
) -> dict[str, PolicyComparison]:
    """Normalized per-trial execution time for each kernel.

    The graph is loaded first (excluded from timing, as in Section V-B)
    and DRAM is sized to roughly 40% of the kernel footprint so the
    working set spans both tiers.

    ``interval_s`` (paper seconds) is much shorter than YCSB's because a
    GAPBS trial must span many daemon wakeups, as it does on the paper's
    testbed where a trial runs tens of seconds against the 1-second
    interval; our scaled trials last a few virtual milliseconds.
    """
    graph = Graph.rmat(scale=scale_exp, edge_factor=edge_factor, seed=7)
    comparisons = {}
    for kernel_name in kernels:
        results: dict[str, RunResult] = {}
        for policy in policies:
            kernel = KERNELS[kernel_name](graph, trials=trials, seed=3)
            dram = max(24, int(kernel.footprint_pages() * 0.4))
            config = scaled_config(
                dram_pages=dram,
                pm_pages=kernel.footprint_pages() * 4,
                interval_s=interval_s,
                scan_budget_pages=64,
            )
            machine = Machine(config, policy)
            run_workload(kernel.load_workload(), config, machine=machine)
            results[policy] = run_workload(kernel, config, machine=machine)
        comparisons[kernel_name] = normalize_exec_time(results)
    return comparisons


def render_fig6(comparisons: dict[str, PolicyComparison]) -> str:
    lines = ["Fig 6 — GAPBS execution time normalized to static (lower is better)", ""]
    policies = list(next(iter(comparisons.values())).values)
    lines.append("kernel  " + "  ".join(f"{p:>16}" for p in policies))
    for kernel, comparison in comparisons.items():
        row = "  ".join(f"{comparison.values[p]:>16.3f}" for p in policies)
        lines.append(f"{kernel:>6}  {row}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig6(run_fig6()))
