"""Table I: qualitative comparison of tiering techniques, from code.

Each policy class carries its Table-I row as metadata, so the table the
paper hand-writes is regenerated from the registry — and stays in sync
with what the code actually implements.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.policies.base import _REGISTRY

__all__ = ["run_table1", "render_table1"]

_COLUMNS = (
    ("tiering", "Tiering"),
    ("page_access_tracking", "Page Access Tracking"),
    ("selection_promotion", "Selection: Promotion"),
    ("selection_demotion", "Selection: Demotion"),
    ("numa_aware", "NUMA Aware"),
    ("space_overhead", "Space Overhead"),
    ("generality", "Generality"),
    ("evaluation", "Evaluation"),
    ("usability_limitation", "Usability Limitation"),
    ("key_insight", "Key Insight"),
)


def run_table1() -> list[dict[str, str]]:
    """One row per registered policy, MULTI-CLOCK last as in the paper."""
    rows = []
    ordering = sorted(_REGISTRY, key=lambda name: (name == "multiclock", name))
    for name in ordering:
        features = _REGISTRY[name].features
        if features is None:
            continue
        rows.append({field: getattr(features, field) for field, __ in _COLUMNS})
    return rows


def render_table1() -> str:
    rows = run_table1()
    headers = [header for __, header in _COLUMNS]
    body = [[row[field] for field, __ in _COLUMNS] for row in rows]
    return render_table(headers, body)


if __name__ == "__main__":
    print(render_table1())
