"""Extension: YCSB workload E on a scan-capable back-end.

The paper could not run workload E because Memcached lacks SCAN
(Section V-B).  With the reproduction's clustered (sorted) store, E
becomes operational, and the result is a finding the paper's Section
V-C1 predicts without being able to measure: scan-dominated range reads
have *weak per-page locality* (every scan sweeps a fresh range), so
"workloads with weak locality ... would not benefit from MULTI-CLOCK".
Expect static tiering to win outright, with MULTI-CLOCK degrading least
among the dynamic policies because its double-reference filter keeps
most one-touch scan pages out of DRAM.
"""

from __future__ import annotations

from repro.analysis.compare import PolicyComparison, normalize_throughput
from repro.experiments.common import scale, scaled_config
from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.workloads.ycsb import YCSBSession

__all__ = ["run_ext_workload_e", "render_ext_workload_e"]

POLICIES = ("static", "multiclock", "nimble", "autotiering-opm")


def run_ext_workload_e(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    policies: tuple[str, ...] = POLICIES,
) -> PolicyComparison:
    n_records = n_records if n_records is not None else scale(3000)
    ops = ops if ops is not None else scale(4000)
    config = scaled_config(dram_pages=640, pm_pages=8192)
    results: dict[str, RunResult] = {}
    for policy in policies:
        machine = Machine(config, policy)
        session = YCSBSession(n_records, seed=3, backend="sorted")
        run_workload(session.load_phase(), config, machine=machine)
        results[policy] = run_workload(
            session.phase("E", ops=ops), config, machine=machine
        )
    return normalize_throughput(results)


def render_ext_workload_e(comparison: PolicyComparison) -> str:
    lines = [
        "Extension — YCSB workload E (SCAN) on the clustered store",
        "(normalized throughput; the paper could not run E on Memcached)",
        "",
        comparison.render(),
        "",
        "Scan-dominated access has weak per-page locality, the case the",
        "paper predicts dynamic tiering cannot help (Section V-C1).",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_ext_workload_e(run_ext_workload_e()))
