"""Multi-tenant colocation — the service-machine experiment.

The paper's subject machine is a Memcached *service*: one box, many
tenants, one shared DRAM tier.  This experiment colocates N
:class:`~repro.workloads.multitenant.KVTenantWorkload` tenants —
heterogeneous Zipf skew, phase-shifted diurnal traffic, per-phase
hotspot shifts — on one two-tier machine with the memcg controller
armed, and reports what each tenant *experienced*: per-operation p50 /
p99 access latency from a per-tenant
:class:`~repro.metrics.histogram.Log2Histogram`, resident pages per
tier, swap footprint, and whether the OOM killer took the tenant down.

Tenants are interleaved round-robin in scheduler-timeslice bursts (the
:class:`~repro.workloads.multitenant.MultiTenantWorkload` discipline),
so a quiet diurnal phase of one tenant hands the machine to the busy
ones.  A tenant whose group the OOM killer selects dies mid-run
(:class:`~repro.mm.memcg.ProcessKilledError`); the driver records the
kill and keeps feeding the survivors — the machine-stays-up property
the memcg layer exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import render_table
from repro.experiments.common import scale, scaled_config
from repro.machine import Machine
from repro.mm.memcg import ProcessKilledError
from repro.workloads.multitenant import KVTenantWorkload

__all__ = ["TenantRow", "run_colo", "render_colo", "build_colo_tenants"]

#: Heterogeneous tenant profiles, cycled when more tenants are asked
#: for: (zipf alpha, read ratio, diurnal phase weights).  Tenant 0 is
#: skewed and diurnal, tenant 1 is flatter with an inverted day/night
#: cycle, tenant 2 is read-heavy with a collapsing tail phase.
TENANT_PROFILES: tuple[tuple[float, float, tuple[float, ...]], ...] = (
    (1.2, 0.9, (1.0, 0.35, 1.0)),
    (1.0, 0.8, (0.35, 1.0, 0.5)),
    (1.1, 0.95, (1.0, 0.7, 0.25)),
    (0.9, 0.85, (0.5, 0.5, 1.0)),
)

#: Operations per round-robin burst — the scheduler timeslice.
TIMESLICE_OPS = 32


@dataclass(frozen=True)
class TenantRow:
    """What one tenant experienced on the shared machine."""

    name: str
    alpha: float
    limit_pages: int | None
    footprint_pages: int
    ops_completed: int
    killed: bool
    p50_ns: float | None
    p99_ns: float | None
    rss_pages: int
    rss_by_node: dict[int, int]
    swap_pages: int


def build_colo_tenants(
    n_tenants: int,
    records_per_tenant: int,
    ops_per_tenant: int,
    *,
    seed: int = 7,
    value_size: int = 1024,
) -> list[KVTenantWorkload]:
    """N tenants with cycled heterogeneous profiles and distinct seeds."""
    tenants = []
    for i in range(n_tenants):
        alpha, read_ratio, phases = TENANT_PROFILES[i % len(TENANT_PROFILES)]
        tenants.append(
            KVTenantWorkload(
                f"tenant{i}",
                records_per_tenant,
                ops_per_tenant,
                alpha=alpha,
                read_ratio=read_ratio,
                phases=phases,
                value_size=value_size,
                seed=seed + i,
            )
        )
    return tenants


def run_colo(
    *,
    n_tenants: int = 3,
    records_per_tenant: int | None = None,
    ops_per_tenant: int | None = None,
    policy: str = "multiclock",
    dram_pages: int | None = None,
    pm_pages: int | None = None,
    swap_pages: int = 1 << 20,
    limits: Sequence[int | None] | None = None,
    interval_s: float = 1.0,
    seed: int = 7,
) -> dict:
    """Colocate ``n_tenants`` KV tenants on one machine; meter each.

    ``limits`` gives each tenant's memcg page limit positionally (None =
    unlimited; a short sequence leaves the rest unlimited).
    ``interval_s`` is in paper seconds, like every experiment here.
    Machine sizing defaults to the YCSB discipline: DRAM a third of the
    combined footprint, PM twice it — tight enough that tenants
    actually fight for the fast tier.
    """
    if n_tenants <= 0:
        raise ValueError("need at least one tenant")
    if limits is not None and len(limits) > n_tenants:
        raise ValueError(
            f"{len(limits)} limits given for {n_tenants} tenants; "
            "pass at most one limit per tenant"
        )
    records_per_tenant = (
        records_per_tenant if records_per_tenant is not None else scale(2000)
    )
    ops_per_tenant = (
        ops_per_tenant if ops_per_tenant is not None else scale(8000)
    )
    tenants = build_colo_tenants(
        n_tenants, records_per_tenant, ops_per_tenant, seed=seed
    )
    footprint = sum(t.footprint_pages() for t in tenants)
    config = scaled_config(
        dram_pages if dram_pages is not None else max(256, footprint // 3),
        pm_pages if pm_pages is not None else footprint * 2,
        interval_s=interval_s,
        seed=seed,
    ).with_overrides(swap_pages=swap_pages)
    machine = Machine(config, policy)
    registry = machine.enable_metrics()
    memcg = machine.enable_memcg()

    groups = []
    for i, tenant in enumerate(tenants):
        tenant.setup(machine)
        limit = None
        if limits is not None and i < len(limits):
            limit = limits[i]
        group = memcg.create_group(tenant.name, limit_pages=limit)
        assert tenant.process is not None
        memcg.attach(tenant.process, group)
        groups.append(group)

    histograms = {t.name: registry.tenant_histogram(t.name) for t in tenants}
    streams = {t.name: t.operations() for t in tenants}
    ops_done = {t.name: 0 for t in tenants}
    killed: set[str] = set()

    live = list(tenants)
    while live:
        finished = []
        for tenant in live:
            stream = streams[tenant.name]
            hist = histograms[tenant.name]
            process = tenant.process
            try:
                for __ in range(TIMESLICE_OPS):
                    op = next(stream, None)
                    if op is None:
                        finished.append(tenant)
                        break
                    op_ns = 0
                    for touch in op:
                        op_ns += machine.touch(
                            process, touch.vpage,
                            is_write=touch.is_write, lines=touch.lines,
                        )
                    hist.record(op_ns)
                    ops_done[tenant.name] += 1
            except ProcessKilledError:
                killed.add(tenant.name)
                finished.append(tenant)
        for tenant in finished:
            live.remove(tenant)

    rows = []
    for tenant, group in zip(tenants, groups):
        hist = histograms[tenant.name]
        rows.append(
            TenantRow(
                name=tenant.name,
                alpha=tenant.alpha,
                limit_pages=group.limit_pages,
                footprint_pages=tenant.footprint_pages(),
                ops_completed=ops_done[tenant.name],
                killed=tenant.name in killed,
                p50_ns=hist.quantile(0.5) if hist.count else None,
                p99_ns=hist.quantile(0.99) if hist.count else None,
                rss_pages=group.rss_total,
                rss_by_node=dict(group.rss),
                swap_pages=memcg.swap_pages_of(group),
            )
        )
    return {
        "rows": rows,
        "policy": policy,
        "machine": machine,
        "registry": registry,
        "memcg": memcg,
        "oom_kills": machine.stats.snapshot().get("memcg.oom_group_kills", 0),
    }


def render_colo(result: dict) -> str:
    """Per-tenant latency/footprint table plus the machine verdict."""
    rows = []
    for row in result["rows"]:
        rows.append(
            [
                row.name,
                f"{row.alpha:.2f}",
                "max" if row.limit_pages is None else row.limit_pages,
                row.footprint_pages,
                row.ops_completed,
                "KILLED" if row.killed else "ok",
                "-" if row.p50_ns is None else f"{row.p50_ns:,.0f}",
                "-" if row.p99_ns is None else f"{row.p99_ns:,.0f}",
                row.rss_pages,
                row.swap_pages,
            ]
        )
    table = render_table(
        ["tenant", "alpha", "limit", "footprint", "ops", "status",
         "p50_ns", "p99_ns", "rss", "swap"],
        rows,
    )
    survivors = sum(1 for row in result["rows"] if not row.killed)
    verdict = (
        f"{survivors}/{len(result['rows'])} tenants finished on "
        f"{result['policy']}; {result['oom_kills']} OOM group kill(s)"
    )
    return f"{table}\n{verdict}"
