"""Figure 9: re-access percentage of recently promoted pages.

"Pages promoted by MULTI-CLOCK have 15% higher re-access percentage than
Nimble. ... Nimble promotes more pages than MULTI-CLOCK, but a lower
percentage of the promoted pages are re-accessed again.  This explains
the improved performance results."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import scale, scaled_config
from repro.machine import Machine
from repro.run import run_workload
from repro.workloads.ycsb import YCSBSession

__all__ = ["ReaccessSeries", "run_fig9", "render_fig9"]


@dataclass(frozen=True)
class ReaccessSeries:
    policy: str
    promoted_per_window: tuple[float, ...]
    reaccessed_per_window: tuple[float, ...]

    @property
    def percentage_per_window(self) -> tuple[float, ...]:
        return tuple(
            100.0 * re / promoted if promoted else 0.0
            for promoted, re in zip(self.promoted_per_window, self.reaccessed_per_window)
        )

    @property
    def overall_percentage(self) -> float:
        promoted = sum(self.promoted_per_window)
        if promoted == 0:
            return 0.0
        return 100.0 * sum(self.reaccessed_per_window) / promoted


def run_fig9(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    policies: tuple[str, ...] = ("multiclock", "nimble"),
) -> dict[str, ReaccessSeries]:
    n_records = n_records if n_records is not None else scale(4000)
    ops = ops if ops is not None else scale(30_000)
    config = scaled_config(dram_pages=640, pm_pages=8192)
    series = {}
    for policy in policies:
        machine = Machine(config, policy)
        session = YCSBSession(n_records, seed=13)
        run_workload(session.load_phase(), config, machine=machine)
        run_workload(session.phase("A", ops=ops), config, machine=machine)
        promoted = tuple(
            p.value for p in machine.stats.series["promoted_total_window"].totals()
        )
        reaccessed_points = machine.stats.series["promoted_reaccessed_window"].totals()
        reaccessed = tuple(p.value for p in reaccessed_points)
        # Pad to equal length (a trailing window may have no re-accesses).
        width = max(len(promoted), len(reaccessed))
        promoted += (0.0,) * (width - len(promoted))
        reaccessed += (0.0,) * (width - len(reaccessed))
        series[policy] = ReaccessSeries(policy, promoted, reaccessed)
    return series


def render_fig9(series: dict[str, ReaccessSeries]) -> str:
    lines = ["Fig 9 — re-access percentage of recently promoted pages (YCSB A)", ""]
    for policy, data in series.items():
        lines.append(f"{policy}: overall {data.overall_percentage:.1f}% re-accessed")
        for window, pct in enumerate(data.percentage_per_window):
            bar = "#" * int(pct / 2)
            lines.append(f"  window {window:>3} {pct:>6.1f}% {bar}")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig9(run_fig9()))
