"""Figure 10: scanning-interval sensitivity.

"We set the time interval to 100ms, 250ms, 500ms, 1s, 5s, and 60s and
run the workload A from YCSB ... overall MULTI-CLOCK performs better
when compared to Nimble.  For larger scan intervals above 5s, we do not
observe much difference due to the lag in the reaction time.  The
one-second scan interval was found to be the best performing."

Intervals below are in *paper seconds*; the scaled-time mapping of
:mod:`repro.experiments.common` converts them to simulator time.
"""

from __future__ import annotations

from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.run import RunResult

__all__ = ["PAPER_INTERVALS", "run_fig10", "render_fig10"]

PAPER_INTERVALS = (0.01, 0.1, 0.25, 0.5, 1.0, 5.0, 60.0)
"""The paper sweeps 100ms..60s; we extend one point below (10ms) because
the time-compressed simulator's overhead/reactivity balance point sits at
a shorter interval than the testbed's — the extra point makes the U-shape
(too-frequent scanning hurts, too-rare scanning lags) visible."""


def run_fig10(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    intervals: tuple[float, ...] = PAPER_INTERVALS,
    policies: tuple[str, ...] = ("multiclock", "nimble"),
) -> dict[str, dict[float, RunResult]]:
    """Throughput of YCSB A for each (policy, scan interval) pair."""
    n_records = n_records if n_records is not None else scale(3000)
    ops = ops if ops is not None else scale(8000)
    sweeps: dict[str, dict[float, RunResult]] = {}
    for policy in policies:
        sweeps[policy] = {}
        for interval in intervals:
            config = scaled_config(dram_pages=640, pm_pages=8192, interval_s=interval)
            results = run_ycsb_sequence(
                policy, config, n_records=n_records, ops_per_phase=ops, phases=("A",)
            )
            sweeps[policy][interval] = results["A"]
    return sweeps


def render_fig10(sweeps: dict[str, dict[float, RunResult]]) -> str:
    lines = ["Fig 10 — scan interval sensitivity (YCSB A throughput, ops/s)", ""]
    intervals = sorted(next(iter(sweeps.values())))
    header = "policy      " + "  ".join(f"{interval:>9}s" for interval in intervals)
    lines.append(header)
    for policy, by_interval in sweeps.items():
        row = "  ".join(f"{by_interval[i].throughput_ops:>10,.0f}" for i in intervals)
        lines.append(f"{policy:>10}  {row}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig10(run_fig10()))
