"""Shared experiment configuration and runners.

**Time scaling.** The paper's testbed runs multi-minute workloads against
a 1-second daemon interval.  Simulating minutes of virtual time in Python
is wasteful, so every experiment here scales the *entire time axis* down
by ``TIME_SCALE`` (default 1/200): daemon intervals become 5 ms, the
Fig 8/9 stats windows become 100 ms, and runs last on the order of a
virtual second.  All ratios that determine behaviour — accesses per scan
interval, migration cost per access, workload phase length per wakeup —
are preserved, which is what makes the paper's shapes reproducible at
laptop scale.  ``REPRO_SCALE`` (environment variable, default 1.0) scales
workload sizes up for higher-fidelity runs.
"""

from __future__ import annotations

import math
import os
from typing import Callable

from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.base import Workload
from repro.workloads.ycsb import EXECUTION_SEQUENCE, YCSBSession

__all__ = [
    "TIME_SCALE",
    "scale",
    "scaled_config",
    "run_policies",
    "run_ycsb_sequence",
    "EVALUATED_POLICIES",
]

TIME_SCALE = 1.0 / 200.0
"""Virtual-time compression relative to the paper's testbed."""

EVALUATED_POLICIES = ("static", "multiclock", "nimble", "autotiering-cpm", "autotiering-opm")
"""The Fig 5/6 comparison set, in the paper's order."""


# Validated REPRO_SCALE factor, keyed by the raw env string so a test
# (or a long-lived process) that changes the variable is still honoured.
_scale_cache: tuple[str, float] | None = None


def _scale_factor() -> float:
    """Validate REPRO_SCALE once per value and cache the factor.

    A malformed value (``REPRO_SCALE=fast``, zero, negative, nan, inf)
    is an operator mistake: it raises a ``ValueError`` that the CLI
    turns into its one-line ``error:`` exit instead of a traceback.
    """
    global _scale_cache
    raw = os.environ.get("REPRO_SCALE", "1.0")
    if _scale_cache is not None and _scale_cache[0] == raw:
        return _scale_cache[1]
    try:
        factor = float(raw)
    except ValueError:
        factor = math.nan
    if not math.isfinite(factor) or factor <= 0.0:
        raise ValueError(
            f"invalid REPRO_SCALE={raw!r}: must be a finite positive number "
            "(e.g. REPRO_SCALE=2.0 doubles workload sizes)"
        )
    _scale_cache = (raw, factor)
    return factor


def scale(n: int) -> int:
    """Scale a workload size by the REPRO_SCALE environment variable."""
    return max(1, int(n * _scale_factor()))


def scaled_config(
    dram_pages: int,
    pm_pages: int,
    *,
    interval_s: float = 1.0,
    seed: int = 42,
    scan_budget_pages: int = 128,
) -> SimulationConfig:
    """A config with the paper's daemon settings on the scaled time axis.

    ``interval_s`` is in *paper* seconds (1.0 = the paper's default
    kpromoted interval); it is multiplied by TIME_SCALE internally.

    **Budget scaling.** The paper sets the CLOCK scan budget to 1024
    pages against footprints of hundreds of gigabytes — promotion
    bandwidth is a scarce resource, which is exactly why *selective*
    promotion (MULTI-CLOCK) beats volume promotion (Nimble).  Our scaled
    footprints are a few thousand pages, so a literal 1024-page budget
    would cover most of memory every wakeup and erase that scarcity; the
    default here keeps the budget at a few percent of a typical
    experiment footprint.  The hint-fault scanner instead gets a *large*
    budget: AutoNUMA-family scanners sweep their entire footprint over a
    few intervals by design, which is where their "costly software page
    fault-based page access tracking" overhead comes from (Section V-C1).
    """
    scaled_interval = interval_s * TIME_SCALE
    return SimulationConfig(
        dram_pages=(dram_pages,),
        pm_pages=(pm_pages,),
        daemons=DaemonConfig(
            kpromoted_interval_s=scaled_interval,
            kswapd_interval_s=max(scaled_interval / 2, 1e-4),
            hint_scan_interval_s=scaled_interval,
            scan_budget_pages=scan_budget_pages,
            hint_scan_budget_pages=4096,
        ),
        seed=seed,
        stats_window_s=20.0 * TIME_SCALE,
    )


def run_policies(
    workload_factory: Callable[[], Workload],
    config: SimulationConfig,
    policies: tuple[str, ...] = EVALUATED_POLICIES,
    *,
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> dict[str, RunResult]:
    """Run a fresh workload instance under each policy.

    ``workers > 1`` shards the policies across a pool of persistent,
    crash-isolated worker processes via :mod:`repro.sweep`; ``progress``
    receives the pool's streamed per-cell status lines.  Cells are
    merged by policy name in the requested order, so the result is
    identical to the sequential run (each cell builds its own machine
    either way).  A cell that keeps failing after the pool's retries
    raises, matching the sequential path's behaviour of propagating the
    first error.  Factory cells carry live objects, so they are never
    served from the sweep result cache.
    """
    if workers <= 1:
        return {
            policy: run_workload(workload_factory(), config, policy=policy)
            for policy in policies
        }
    from repro.sweep import SweepCell, SweepSpec, run_sweep

    spec = SweepSpec(
        name="run_policies",
        cells=tuple(
            SweepCell(
                id=policy,
                runner="policy-factory",
                params={
                    "policy": policy,
                    "factory": workload_factory,
                    "config": config,
                },
            )
            for policy in policies
        ),
    )
    outcome = run_sweep(spec, workers=workers, progress=progress)
    if not outcome.ok:
        detail = "; ".join(f"{o.cell.id}: {o.error}" for o in outcome.failures)
        raise RuntimeError(f"run_policies sweep cells failed: {detail}")
    payloads = outcome.payloads()
    return {policy: RunResult.from_dict(payloads[policy]) for policy in policies}


def run_ycsb_sequence(
    policy: str,
    config: SimulationConfig,
    *,
    n_records: int,
    ops_per_phase: int,
    value_size: int = 1024,
    seed: int = 42,
    phases: tuple[str, ...] = EXECUTION_SEQUENCE,
) -> dict[str, RunResult]:
    """The paper's prescribed sequence on one machine: Load, A..W, D.

    The warm-up Load phase's result is returned under the ``"load"``
    key — its promotions and faults are part of the story sequence
    reports tell — while the paper-phase keys (``"A"`` ... ``"D"``)
    stay exactly as before for existing callers.
    """
    machine = Machine(config, policy)
    session = YCSBSession(n_records, value_size=value_size, seed=seed)
    results: dict[str, RunResult] = {}
    results["load"] = run_workload(session.load_phase(), config, machine=machine)
    for name in phases:
        results[name] = run_workload(
            session.phase(name, ops=ops_per_phase), config, machine=machine
        )
    return results
