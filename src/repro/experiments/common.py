"""Shared experiment configuration and runners.

**Time scaling.** The paper's testbed runs multi-minute workloads against
a 1-second daemon interval.  Simulating minutes of virtual time in Python
is wasteful, so every experiment here scales the *entire time axis* down
by ``TIME_SCALE`` (default 1/200): daemon intervals become 5 ms, the
Fig 8/9 stats windows become 100 ms, and runs last on the order of a
virtual second.  All ratios that determine behaviour — accesses per scan
interval, migration cost per access, workload phase length per wakeup —
are preserved, which is what makes the paper's shapes reproducible at
laptop scale.  ``REPRO_SCALE`` (environment variable, default 1.0) scales
workload sizes up for higher-fidelity runs.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.base import Workload
from repro.workloads.ycsb import EXECUTION_SEQUENCE, YCSBSession

__all__ = [
    "TIME_SCALE",
    "scale",
    "scaled_config",
    "run_policies",
    "run_ycsb_sequence",
    "EVALUATED_POLICIES",
]

TIME_SCALE = 1.0 / 200.0
"""Virtual-time compression relative to the paper's testbed."""

EVALUATED_POLICIES = ("static", "multiclock", "nimble", "autotiering-cpm", "autotiering-opm")
"""The Fig 5/6 comparison set, in the paper's order."""


def scale(n: int) -> int:
    """Scale a workload size by the REPRO_SCALE environment variable."""
    factor = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(1, int(n * factor))


def scaled_config(
    dram_pages: int,
    pm_pages: int,
    *,
    interval_s: float = 1.0,
    seed: int = 42,
    scan_budget_pages: int = 128,
) -> SimulationConfig:
    """A config with the paper's daemon settings on the scaled time axis.

    ``interval_s`` is in *paper* seconds (1.0 = the paper's default
    kpromoted interval); it is multiplied by TIME_SCALE internally.

    **Budget scaling.** The paper sets the CLOCK scan budget to 1024
    pages against footprints of hundreds of gigabytes — promotion
    bandwidth is a scarce resource, which is exactly why *selective*
    promotion (MULTI-CLOCK) beats volume promotion (Nimble).  Our scaled
    footprints are a few thousand pages, so a literal 1024-page budget
    would cover most of memory every wakeup and erase that scarcity; the
    default here keeps the budget at a few percent of a typical
    experiment footprint.  The hint-fault scanner instead gets a *large*
    budget: AutoNUMA-family scanners sweep their entire footprint over a
    few intervals by design, which is where their "costly software page
    fault-based page access tracking" overhead comes from (Section V-C1).
    """
    scaled_interval = interval_s * TIME_SCALE
    return SimulationConfig(
        dram_pages=(dram_pages,),
        pm_pages=(pm_pages,),
        daemons=DaemonConfig(
            kpromoted_interval_s=scaled_interval,
            kswapd_interval_s=max(scaled_interval / 2, 1e-4),
            hint_scan_interval_s=scaled_interval,
            scan_budget_pages=scan_budget_pages,
            hint_scan_budget_pages=4096,
        ),
        seed=seed,
        stats_window_s=20.0 * TIME_SCALE,
    )


def run_policies(
    workload_factory: Callable[[], Workload],
    config: SimulationConfig,
    policies: tuple[str, ...] = EVALUATED_POLICIES,
) -> dict[str, RunResult]:
    """Run a fresh workload instance under each policy."""
    return {
        policy: run_workload(workload_factory(), config, policy=policy)
        for policy in policies
    }


def run_ycsb_sequence(
    policy: str,
    config: SimulationConfig,
    *,
    n_records: int,
    ops_per_phase: int,
    value_size: int = 1024,
    seed: int = 42,
    phases: tuple[str, ...] = EXECUTION_SEQUENCE,
) -> dict[str, RunResult]:
    """The paper's prescribed sequence on one machine: Load, A..W, D."""
    machine = Machine(config, policy)
    session = YCSBSession(n_records, value_size=value_size, seed=seed)
    run_workload(session.load_phase(), config, machine=machine)
    results: dict[str, RunResult] = {}
    for name in phases:
        results[name] = run_workload(
            session.phase(name, ops=ops_per_phase), config, machine=machine
        )
    return results
