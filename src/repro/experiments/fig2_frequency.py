"""Figure 2: future access frequency of single- vs multi-access pages."""

from __future__ import annotations

from repro.analysis.windows import WindowAnalysis, analyze_windows
from repro.experiments.common import scale
from repro.workloads.motivation import PROFILES, MotivationWorkload

__all__ = ["run_fig2", "render_fig2"]


def run_fig2(
    *, pages: int | None = None, segments: int = 24, ops_per_segment: int | None = None
) -> dict[str, WindowAnalysis]:
    """Window analysis for the four motivation profiles."""
    pages = pages if pages is not None else scale(1500)
    ops_per_segment = ops_per_segment if ops_per_segment is not None else scale(6000)
    analyses = {}
    for name in PROFILES:
        workload = MotivationWorkload(
            name, pages=pages, segments=segments, ops_per_segment=ops_per_segment
        )
        analyses[name] = analyze_windows(workload.trace(), workload=name)
    return analyses


def render_fig2(analyses: dict[str, WindowAnalysis]) -> str:
    lines = ["Fig 2 — future-window access frequency by observation-window class", ""]
    lines.append(f"{'workload':>12} {'single':>8} {'multi':>8} {'multi/single':>13}")
    for name, analysis in analyses.items():
        lines.append(
            f"{name:>12} {analysis.mean_future('single'):>8.2f} "
            f"{analysis.mean_future('multi'):>8.2f} "
            f"{analysis.multi_over_single_ratio:>12.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig2(run_fig2()))
