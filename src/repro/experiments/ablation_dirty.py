"""Section VII ablation: dirtiness-weighted placement under asymmetric PM.

Compares baseline MULTI-CLOCK against the RW-weighted variant
(:mod:`repro.core.rw_weighted`) on a read-only (C) and a write-only (W)
YCSB workload.  Expectation: on W every promote candidate is dirty, so
the variant matches the baseline exactly; on C the candidates go clean
and the variant stops paying double migrations for them — fewer
promotions, with the throughput consequence showing what a binary
dirtiness rule costs read traffic (the paper asks for a *weighted
formula*; this ablation shows why the read side must stay in it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.run import RunResult

__all__ = ["DirtyAblationRow", "run_ablation_dirty", "render_ablation_dirty"]

POLICIES = ("multiclock", "multiclock-rw")
PHASES = ("A", "C", "W")
"""Phase A is a warmup so the measured phases run against converged
lists; C (read-only — promote candidates go clean once the warmup's
stale dirty bits drain) and W (write-only — every candidate is dirty)
are reported."""
REPORTED_PHASES = ("C", "W")


@dataclass(frozen=True)
class DirtyAblationRow:
    phase: str
    results: dict[str, RunResult]

    def gain(self) -> float:
        base = self.results["multiclock"].throughput_ops
        return self.results["multiclock-rw"].throughput_ops / base - 1.0


def run_ablation_dirty(
    *, n_records: int | None = None, ops: int | None = None
) -> list[DirtyAblationRow]:
    n_records = n_records if n_records is not None else scale(3000)
    ops = ops if ops is not None else scale(12_000)
    config = scaled_config(dram_pages=640, pm_pages=8192)
    per_policy = {
        policy: run_ycsb_sequence(
            policy, config, n_records=n_records, ops_per_phase=ops, phases=PHASES
        )
        for policy in POLICIES
    }
    return [
        DirtyAblationRow(phase, {p: per_policy[p][phase] for p in POLICIES})
        for phase in REPORTED_PHASES
    ]


def render_ablation_dirty(rows: list[DirtyAblationRow]) -> str:
    table = render_table(
        ["workload", "multiclock ops/s", "multiclock-rw ops/s",
         "rw promotions", "baseline promotions", "rw gain"],
        [
            [
                row.phase,
                f"{row.results['multiclock'].throughput_ops:,.0f}",
                f"{row.results['multiclock-rw'].throughput_ops:,.0f}",
                row.results["multiclock-rw"].promotions,
                row.results["multiclock"].promotions,
                f"{100 * row.gain():+.1f}%",
            ]
            for row in rows
        ],
    )
    return "Section VII ablation — dirtiness-weighted placement\n\n" + table


if __name__ == "__main__":
    print(render_ablation_dirty(run_ablation_dirty()))
