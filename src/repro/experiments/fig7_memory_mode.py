"""Figure 7: MULTI-CLOCK vs Memory-mode at a 4x-DRAM footprint.

"As Memory-mode uses all of the DRAM capacity for caching, to allow for a
competitive comparison with MULTI-CLOCK, we set the workload size to be
4x of the available DRAM capacity. ... For the YCSB workloads,
MULTI-CLOCK outperforms Memory-mode by as much as 9% and operates within
2% of Memory-mode's performance.  For PageRank, MULTI-CLOCK outperforms
Memory-mode by 21%."
"""

from __future__ import annotations

from repro.analysis.compare import (
    PolicyComparison,
    normalize_exec_time,
    normalize_throughput,
)
from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.workloads.gapbs import Graph, PageRankWorkload
from repro.workloads.ycsb import EXECUTION_SEQUENCE

__all__ = ["run_fig7", "render_fig7"]

POLICIES = ("static", "multiclock", "memory-mode")


def run_fig7(
    *,
    n_records: int | None = None,
    ops_per_phase: int | None = None,
    pr_scale: int = 12,
    phases: tuple[str, ...] = EXECUTION_SEQUENCE,
) -> dict[str, PolicyComparison]:
    """Fig 7a (YCSB throughput) plus Fig 7b (PageRank exec time)."""
    n_records = n_records if n_records is not None else scale(4000)
    ops_per_phase = ops_per_phase if ops_per_phase is not None else scale(10_000)
    comparisons: dict[str, PolicyComparison] = {}
    # Size DRAM so the YCSB footprint is ~4x DRAM.
    from repro.workloads.ycsb import YCSBSession

    footprint = YCSBSession(n_records).footprint_pages()
    config = scaled_config(dram_pages=max(64, footprint // 4), pm_pages=footprint * 3)
    per_policy = {
        policy: run_ycsb_sequence(
            policy, config, n_records=n_records, ops_per_phase=ops_per_phase,
            phases=phases,
        )
        for policy in POLICIES
    }
    for phase in phases:
        results = {policy: per_policy[policy][phase] for policy in POLICIES}
        comparisons[f"ycsb-{phase}"] = normalize_throughput(results)

    graph = Graph.rmat(scale=pr_scale, edge_factor=10, seed=7)
    pr_results: dict[str, RunResult] = {}
    for policy in POLICIES:
        kernel = PageRankWorkload(graph, trials=2, seed=3)
        pr_config = scaled_config(
            dram_pages=max(24, kernel.footprint_pages() // 4),
            pm_pages=kernel.footprint_pages() * 3,
        )
        machine = Machine(pr_config, policy)
        run_workload(kernel.load_workload(), pr_config, machine=machine)
        pr_results[policy] = run_workload(kernel, pr_config, machine=machine)
    comparisons["gapbs-pr"] = normalize_exec_time(pr_results)
    return comparisons


def render_fig7(comparisons: dict[str, PolicyComparison]) -> str:
    lines = ["Fig 7 — Memory-mode comparison at 4x-DRAM footprint", ""]
    lines.append(f"{'experiment':>12}  " + "  ".join(f"{p:>12}" for p in POLICIES))
    for name, comparison in comparisons.items():
        row = "  ".join(f"{comparison.values[p]:>12.3f}" for p in POLICIES)
        metric = "throughput" if comparison.metric == "throughput" else "exec time"
        lines.append(f"{name:>12}  {row}   ({metric})")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig7(run_fig7()))
