"""Section VII ablation: varying the DRAM:PM capacity ratio.

"it will also be interesting to see the performance of MULTI-CLOCK with
varying DRAM and PM ratios" — the paper leaves this to future work; we
run it.  The expectation: the smaller the DRAM share of the footprint,
the more dynamic tiering matters (static placement strands a larger hot
fraction in PM), until DRAM is so small even the hot set cannot fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.workloads.ycsb import YCSBSession

__all__ = ["RatioPoint", "run_ablation_ratio", "render_ablation_ratio"]

DRAM_FRACTIONS = (0.125, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class RatioPoint:
    dram_fraction: float
    static_ops: float
    multiclock_ops: float

    @property
    def gain(self) -> float:
        return self.multiclock_ops / self.static_ops - 1.0


def run_ablation_ratio(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    fractions: tuple[float, ...] = DRAM_FRACTIONS,
) -> list[RatioPoint]:
    n_records = n_records if n_records is not None else scale(3000)
    ops = ops if ops is not None else scale(10_000)
    footprint = YCSBSession(n_records).footprint_pages()
    points = []
    # Workload C (read-only zipfian) isolates the placement effect: reads
    # pay PM's full latency gap, and no write traffic muddies the signal.
    phases = ("A", "C")  # A warms the lists; C is measured.
    for fraction in fractions:
        dram = max(64, int(footprint * fraction))
        config = scaled_config(dram_pages=dram, pm_pages=footprint * 3)
        static = run_ycsb_sequence(
            "static", config, n_records=n_records, ops_per_phase=ops, phases=phases
        )["C"]
        multiclock = run_ycsb_sequence(
            "multiclock", config, n_records=n_records, ops_per_phase=ops, phases=phases
        )["C"]
        points.append(
            RatioPoint(fraction, static.throughput_ops, multiclock.throughput_ops)
        )
    return points


def render_ablation_ratio(points: list[RatioPoint]) -> str:
    table = render_table(
        ["DRAM fraction of footprint", "static ops/s", "multiclock ops/s", "gain"],
        [
            [
                f"{p.dram_fraction:.3f}",
                f"{p.static_ops:,.0f}",
                f"{p.multiclock_ops:,.0f}",
                f"{100 * p.gain:+.1f}%",
            ]
            for p in points
        ],
    )
    return "Section VII ablation — DRAM:PM ratio sweep (YCSB A)\n\n" + table


if __name__ == "__main__":
    print(render_ablation_ratio(run_ablation_ratio()))
