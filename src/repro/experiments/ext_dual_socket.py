"""Extension: MULTI-CLOCK on a dual-socket machine.

The paper's testbed is dual-socket — each socket contributes a DRAM node
and a DAX-KMEM PM node — and the prototype runs "one kernel thread per
NUMA node ... to avoid lock contention" (Section IV).  This experiment
places two tenants, one pinned per socket, on a dual-socket machine with
the same total capacity as the single-socket baseline, and checks that
the tiering gains survive the topology: the per-node daemons keep each
socket's hot set local, while static tiering both strands hot pages in
PM and leaks first-touch traffic across the interconnect once the local
DRAM fills.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.common import scale, scaled_config
from repro.run import RunResult, run_workload
from repro.workloads.multitenant import MultiTenantWorkload
from repro.workloads.synthetic import ShiftingHotSetWorkload

__all__ = ["DualSocketCell", "run_ext_dual_socket", "render_ext_dual_socket"]

POLICIES = ("static", "multiclock", "nimble")


@dataclass(frozen=True)
class DualSocketCell:
    topology: str
    policy: str
    result: RunResult


def _tenants(ops: int, pages: int):
    # Two phases per tenant, each long enough to span many kpromoted
    # wakeups (the ladder needs several consecutive scans per page).
    return [
        ShiftingHotSetWorkload(
            pages=pages, ops=ops, phase_ops=max(1, ops // 2),
            hot_fraction=0.12, seed=21 + i,
        )
        for i in range(2)
    ]


def run_ext_dual_socket(
    *, ops: int | None = None, pages: int | None = None
) -> list[DualSocketCell]:
    ops = ops if ops is not None else scale(80_000)
    pages = pages if pages is not None else scale(1800)
    cells = []
    # Budget sized so the CLOCK hand completes revolutions within a
    # workload phase; note that the per-node daemon design means the
    # dual-socket machine scans with twice the aggregate bandwidth —
    # one of the practical payoffs of "one kernel thread per NUMA node".
    single = scaled_config(dram_pages=512, pm_pages=4096, scan_budget_pages=256)
    dual = single.with_overrides(
        dram_pages=(256, 256), pm_pages=(2048, 2048), sockets=2
    )
    for topology, config, sockets in (
        ("single-socket", single, None),
        ("dual-socket", dual, [0, 1]),
    ):
        for policy in POLICIES:
            workload = MultiTenantWorkload(_tenants(ops, pages), home_sockets=sockets)
            result = run_workload(workload, config, policy=policy)
            cells.append(DualSocketCell(topology, policy, result))
    return cells


def render_ext_dual_socket(cells: list[DualSocketCell]) -> str:
    table = render_table(
        ["topology", "policy", "ops/s", "DRAM %", "remote %", "promotions"],
        [
            [
                cell.topology,
                cell.policy,
                f"{cell.result.throughput_ops:,.0f}",
                f"{100 * cell.result.dram_access_fraction:.1f}",
                f"{100 * cell.result.counters.get('accesses.remote', 0) / max(1, cell.result.counters.get('accesses.total', 0)):.1f}",
                cell.result.promotions,
            ]
            for cell in cells
        ],
    )
    return (
        "Extension — dual-socket topology (two pinned tenants)\n\n" + table
    )


if __name__ == "__main__":
    print(render_ext_dual_socket(run_ext_dual_socket()))
