"""Figure 4: state-machine transition coverage report.

Figure 4 is a diagram, not a measurement; the reproducible artifact is
evidence that a live MULTI-CLOCK system exercises every vertex of the
state machine.  This experiment drives a mixed workload and samples page
states throughout, reporting the set of observed states and the
transition-related counters.
"""

from __future__ import annotations

from collections import Counter

from repro.core.state import PageState, classify
from repro.experiments.common import scale, scaled_config
from repro.machine import Machine
from repro.workloads.synthetic import ShiftingHotSetWorkload

__all__ = ["run_fig4", "render_fig4"]


def run_fig4(*, ops: int | None = None) -> dict[str, object]:
    """Run a hot-set workload, sampling page states every few thousand ops."""
    ops = ops if ops is not None else scale(60_000)
    config = scaled_config(dram_pages=256, pm_pages=2048)
    machine = Machine(config, "multiclock")
    workload = ShiftingHotSetWorkload(
        pages=1200, ops=ops, phase_ops=max(1, ops // 4), hot_fraction=0.1, seed=17
    )
    workload.setup(machine)
    observed: Counter = Counter()
    for i, access in enumerate(workload.accesses()):
        machine.touch(access.process, access.vpage, is_write=access.is_write,
                      lines=access.lines)
        if i % 2000 == 0:
            for pte in workload.process.page_table.entries():
                observed[classify(pte.page)] += 1
    counters = machine.stats.snapshot()
    return {
        "observed_states": observed,
        "promotions": counters.get("migrate.promotions", 0),
        "demotions": counters.get("migrate.demotions", 0),
        "promote_list_adds": counters.get("multiclock.promote_list_adds", 0),
        "evictions": counters.get("reclaim.evictions", 0),
    }


def render_fig4(data: dict[str, object]) -> str:
    observed: Counter = data["observed_states"]
    lines = ["Fig 4 — page state machine coverage", ""]
    for state in PageState:
        seen = observed.get(state, 0)
        marker = "yes" if seen else " no"
        lines.append(f"  {state.value:>22}: observed {seen:>8} times [{marker}]")
    lines.append("")
    lines.append(
        f"edge 10 (-> promote list): {data['promote_list_adds']} | "
        f"edge 13 (promotions): {data['promotions']} | "
        f"edge 3 (demotions): {data['demotions']} | "
        f"edge 4 (evictions): {data['evictions']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig4(run_fig4()))
