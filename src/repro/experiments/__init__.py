"""Experiments: one module per table/figure of the paper's evaluation.

Each module exposes ``run_*`` (returns structured data) and ``render_*``
(ASCII report) and can be executed directly::

    python -m repro.experiments.fig5_ycsb

The benchmarks under ``benchmarks/`` call the same ``run_*`` entry
points, so the pytest-benchmark suite and the standalone scripts always
agree.
"""

from repro.experiments.common import (
    EVALUATED_POLICIES,
    TIME_SCALE,
    run_policies,
    run_ycsb_sequence,
    scale,
    scaled_config,
)

__all__ = [
    "EVALUATED_POLICIES",
    "TIME_SCALE",
    "run_policies",
    "run_ycsb_sequence",
    "scale",
    "scaled_config",
]
