"""Figure 5: YCSB throughput normalized to static tiering.

"MULTI-CLOCK outperforms static tiering, Nimble, AT-CPM, and AT-OPM for
all the workloads. ... MULTI-CLOCK outperforms static tiering by
20-132%. ... In comparison with Nimble, MULTI-CLOCK achieves 9-36%
better performance. ... When compared to AT-CPM, MULTI-CLOCK outperforms
by 260-677%.  Finally, MULTI-CLOCK achieved 10-352% better performance
than AT-OPM."
"""

from __future__ import annotations

from repro.analysis.compare import PolicyComparison, normalize_throughput
from repro.experiments.common import (
    EVALUATED_POLICIES,
    run_ycsb_sequence,
    scale,
    scaled_config,
)
from repro.run import RunResult
from repro.workloads.ycsb import EXECUTION_SEQUENCE

__all__ = ["run_fig5", "render_fig5"]


def run_fig5(
    *,
    n_records: int | None = None,
    ops_per_phase: int | None = None,
    policies: tuple[str, ...] = EVALUATED_POLICIES,
    phases: tuple[str, ...] = EXECUTION_SEQUENCE,
) -> dict[str, PolicyComparison]:
    """Per-workload normalized throughput for the comparison set.

    The footprint is configured "larger than the DRAM size" (Section V-C):
    the default sizes put roughly 3.5x the DRAM capacity in play.
    """
    n_records = n_records if n_records is not None else scale(3000)
    ops_per_phase = ops_per_phase if ops_per_phase is not None else scale(6000)
    from repro.workloads.ycsb import YCSBSession

    # The CLOCK scan budget scales with the footprint so promotion
    # bandwidth stays a fixed (small) fraction of memory at any size.
    footprint = YCSBSession(n_records).footprint_pages()
    config = scaled_config(
        dram_pages=640, pm_pages=8192, scan_budget_pages=max(96, footprint // 8)
    )
    per_policy: dict[str, dict[str, RunResult]] = {
        policy: run_ycsb_sequence(
            policy, config, n_records=n_records, ops_per_phase=ops_per_phase,
            phases=phases,
        )
        for policy in policies
    }
    comparisons = {}
    for phase in phases:
        results = {policy: per_policy[policy][phase] for policy in policies}
        comparisons[phase] = normalize_throughput(results)
    return comparisons


def render_fig5(comparisons: dict[str, PolicyComparison]) -> str:
    lines = ["Fig 5 — YCSB throughput normalized to static tiering", ""]
    header_policies = list(next(iter(comparisons.values())).values)
    lines.append("workload  " + "  ".join(f"{p:>16}" for p in header_policies))
    for phase, comparison in comparisons.items():
        row = "  ".join(f"{comparison.values[p]:>16.3f}" for p in header_policies)
        lines.append(f"{phase:>8}  {row}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig5(run_fig5()))
