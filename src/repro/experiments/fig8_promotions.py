"""Figure 8: pages promoted per time window, MULTI-CLOCK vs Nimble.

"Nimble promotes more pages than MULTI-CLOCK" — the recency-only
selector fires on a single reference, so it moves far more pages per
window; the selective double-reference filter is MULTI-CLOCK's whole
point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.machine import Machine
from repro.run import run_workload
from repro.sim.stats import WindowPoint
from repro.workloads.ycsb import YCSBSession

__all__ = ["PromotionSeries", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class PromotionSeries:
    policy: str
    points: tuple[WindowPoint, ...]

    @property
    def total(self) -> float:
        return sum(point.value for point in self.points)

    @property
    def mean_per_window(self) -> float:
        return self.total / len(self.points) if self.points else 0.0


def run_fig8(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    policies: tuple[str, ...] = ("multiclock", "nimble"),
) -> dict[str, PromotionSeries]:
    """Run YCSB workload A under each policy, collecting the windowed
    promotion counts the paper plots."""
    n_records = n_records if n_records is not None else scale(4000)
    ops = ops if ops is not None else scale(30_000)
    config = scaled_config(dram_pages=640, pm_pages=8192)
    series = {}
    for policy in policies:
        machine = Machine(config, policy)
        session = YCSBSession(n_records, seed=13)
        run_workload(session.load_phase(), config, machine=machine)
        run_workload(session.phase("A", ops=ops), config, machine=machine)
        points = tuple(machine.stats.series["promotions_window"].totals())
        series[policy] = PromotionSeries(policy, points)
    return series


def render_fig8(series: dict[str, PromotionSeries]) -> str:
    lines = ["Fig 8 — pages promoted per window (YCSB A)", ""]
    for policy, data in series.items():
        lines.append(
            f"{policy}: total={data.total:.0f}, mean/window={data.mean_per_window:.1f}"
        )
        for point in data.points:
            bar = "#" * min(60, int(point.value / 10))
            lines.append(f"  window {point.window_id:>3} {point.value:>8.0f} {bar}")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig8(run_fig8()))
