"""Table II analogue: the reproduction's module inventory.

The paper's Table II counts lines added to each Linux source file — a
property of the kernel patch that has no direct counterpart here.  The
honest equivalent is an inventory of this reproduction's modules and
sizes, split by subsystem, which this experiment generates by walking the
installed package.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.report import render_table

__all__ = ["run_table2", "render_table2"]


def run_table2() -> list[tuple[str, int, int]]:
    """Per-module (path, code lines, total lines) for the package."""
    root = Path(repro.__file__).parent
    rows = []
    for path in sorted(root.rglob("*.py")):
        text = path.read_text()
        total = text.count("\n") + 1
        code = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("#")
        )
        rows.append((str(path.relative_to(root.parent)), code, total))
    return rows


def render_table2() -> str:
    rows = run_table2()
    table = render_table(
        ["Source File", "Code Lines", "Total Lines"],
        [[name, code, total] for name, code, total in rows],
    )
    code_sum = sum(code for __, code, __t in rows)
    total_sum = sum(total for __, __c, total in rows)
    return f"{table}\n\ntotal: {code_sum} code lines / {total_sum} lines in {len(rows)} modules"


if __name__ == "__main__":
    print(render_table2())
