"""Section VII ablation: adaptive vs fixed kpromoted intervals.

The question the paper leaves open: can kpromoted tune its own interval?
We start both variants from a deliberately mis-tuned base interval (5
paper-seconds — Fig 10 shows that interval reacting too slowly) and
compare against the fixed well-tuned interval.  The adaptive controller
should claw back most of the gap from the bad base, and stay competitive
from the good one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.common import run_ycsb_sequence, scale, scaled_config
from repro.run import RunResult

__all__ = ["AdaptiveAblationCell", "run_ablation_adaptive", "render_ablation_adaptive"]

BASE_INTERVALS = (0.25, 5.0)
POLICIES = ("multiclock", "multiclock-adaptive")


@dataclass(frozen=True)
class AdaptiveAblationCell:
    base_interval_s: float
    policy: str
    result: RunResult


def run_ablation_adaptive(
    *, n_records: int | None = None, ops: int | None = None
) -> list[AdaptiveAblationCell]:
    n_records = n_records if n_records is not None else scale(4000)
    ops = ops if ops is not None else scale(40_000)
    cells = []
    for interval in BASE_INTERVALS:
        config = scaled_config(dram_pages=640, pm_pages=8192, interval_s=interval)
        for policy in POLICIES:
            result = run_ycsb_sequence(
                policy, config, n_records=n_records, ops_per_phase=ops, phases=("A",)
            )["A"]
            cells.append(AdaptiveAblationCell(interval, policy, result))
    return cells


def render_ablation_adaptive(cells: list[AdaptiveAblationCell]) -> str:
    table = render_table(
        ["base interval (paper s)", "policy", "ops/s", "promotions", "kpromoted runs"],
        [
            [
                cell.base_interval_s,
                cell.policy,
                f"{cell.result.throughput_ops:,.0f}",
                cell.result.promotions,
                cell.result.counters.get("kpromoted.runs", 0),
            ]
            for cell in cells
        ],
    )
    return "Section VII ablation — adaptive kpromoted interval (YCSB A)\n\n" + table


if __name__ == "__main__":
    print(render_ablation_adaptive(run_ablation_adaptive()))
