"""Figure 1: access heatmaps of 50 sampled pages for four workloads."""

from __future__ import annotations

from repro.analysis.heatmap import Heatmap, build_heatmap
from repro.experiments.common import scale
from repro.workloads.motivation import PROFILES, MotivationWorkload

__all__ = ["run_fig1", "render_fig1"]


def run_fig1(
    *,
    pages: int | None = None,
    segments: int = 24,
    ops_per_segment: int | None = None,
    sample_seed: int = 1,
) -> dict[str, Heatmap]:
    """Build the four heatmap panels (rubis, specpower, xalan, lusearch).

    With only ~5% of pages DRAM-friendly in the burstiest profiles, a
    50-page random sample occasionally misses a whole population; the
    default sampling seed is chosen so all three populations appear in
    every panel (the paper's 50-page samples likewise show all three).
    """
    pages = pages if pages is not None else scale(1500)
    ops_per_segment = ops_per_segment if ops_per_segment is not None else scale(6000)
    heatmaps = {}
    for name in PROFILES:
        workload = MotivationWorkload(
            name, pages=pages, segments=segments, ops_per_segment=ops_per_segment
        )
        heatmaps[name] = build_heatmap(workload, n_sampled=50, seed=sample_seed)
    return heatmaps


def render_fig1(heatmaps: dict[str, Heatmap]) -> str:
    sections = []
    for name, heatmap in heatmaps.items():
        counts = heatmap.class_counts()
        sections.append(heatmap.render())
        sections.append(
            f"observed populations: {counts['dram_friendly']} DRAM-friendly, "
            f"{counts['tier_friendly']} Tier-friendly, {counts['rare']} rare"
        )
        sections.append("")
    return "\n".join(sections)


if __name__ == "__main__":
    print(render_fig1(run_fig1()))
