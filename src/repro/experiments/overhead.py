"""Section V-F: overhead accounting.

"Mainly the overhead of MULTI-CLOCK includes the overhead for promotion
and demotion of the pages across different tiers. ... for memory-
intensive workloads, MULTI-CLOCK's benefit will surpass the migration
overhead."  The virtual clock's app/system split makes that claim
directly measurable: this experiment reports, per policy, the share of
run time spent on daemon scans and migrations versus application memory
accesses — alongside the throughput, so overhead can be weighed against
benefit exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.common import (
    EVALUATED_POLICIES,
    run_ycsb_sequence,
    scale,
    scaled_config,
)

__all__ = ["OverheadRow", "run_overhead", "render_overhead"]


@dataclass(frozen=True)
class OverheadRow:
    policy: str
    throughput_ops: float
    system_share: float
    promotions: int
    demotions: int
    hint_faults: int

    @property
    def system_percent(self) -> float:
        return 100.0 * self.system_share


def run_overhead(
    *,
    n_records: int | None = None,
    ops: int | None = None,
    policies: tuple[str, ...] = EVALUATED_POLICIES,
) -> list[OverheadRow]:
    n_records = n_records if n_records is not None else scale(3000)
    ops = ops if ops is not None else scale(10_000)
    config = scaled_config(dram_pages=640, pm_pages=8192)
    rows = []
    for policy in policies:
        results = run_ycsb_sequence(
            policy, config, n_records=n_records, ops_per_phase=ops, phases=("A",)
        )
        result = results["A"]
        total = result.app_ns + result.system_ns
        rows.append(
            OverheadRow(
                policy=policy,
                throughput_ops=result.throughput_ops,
                system_share=result.system_ns / total if total else 0.0,
                promotions=result.promotions,
                demotions=result.demotions,
                hint_faults=result.counters.get("faults.hint", 0),
            )
        )
    return rows


def render_overhead(rows: list[OverheadRow]) -> str:
    table = render_table(
        ["policy", "ops/s", "system %", "promotions", "demotions", "hint faults"],
        [
            [
                row.policy,
                f"{row.throughput_ops:,.0f}",
                f"{row.system_percent:.1f}",
                row.promotions,
                row.demotions,
                row.hint_faults,
            ]
            for row in rows
        ],
    )
    return "Section V-F — overhead accounting (YCSB A)\n\n" + table


if __name__ == "__main__":
    print(render_overhead(run_overhead()))
