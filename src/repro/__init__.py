"""MULTI-CLOCK: Dynamic Tiering for Hybrid Memory Systems (HPCA 2022).

A trace-driven reproduction of the paper's Linux hybrid-memory tiering
system: per-tier CLOCK page selection with recency *and* frequency, the
``kpromoted`` promotion daemon, watermark-driven demotion, and every
baseline from the evaluation (static tiering, Nimble page selection,
AutoTiering-CPM/OPM, AutoNUMA-tiering and Memory-mode).

Quickstart::

    from repro import Machine, SimulationConfig, run_workload
    from repro.workloads.synthetic import ZipfWorkload

    config = SimulationConfig(dram_pages=(2048,), pm_pages=(8192,))
    result = run_workload(ZipfWorkload(pages=6000, ops=50_000), config,
                          policy="multiclock")
    print(result.summary())
"""

from repro.machine import Machine
from repro.run import RunResult, run_workload
from repro.sim.config import PAGE_SIZE, DaemonConfig, LatencyConfig, SimulationConfig

__all__ = [
    "Machine",
    "RunResult",
    "run_workload",
    "PAGE_SIZE",
    "DaemonConfig",
    "LatencyConfig",
    "SimulationConfig",
]

__version__ = "1.0.0"
