"""Kernel-style tracepoints for the simulator.

Linux answers "what did the VM actually do?" with tracepoints
(``trace_mm_lru_activate``, ``trace_mm_migrate_pages``, ...) feeding
per-CPU ring buffers that tools read from debugfs.  This package is that
surface for the simulator: :class:`Tracer` exposes one ``trace_*`` method
per event, every emission lands in a bounded per-node ring buffer with a
virtual timestamp, and the exporters/auditor consume the rings.

Tracing is off unless a :class:`Tracer` is installed (see
``Machine.enable_tracing``); every call site guards with ``if tr is not
None``, the analogue of tracepoints compiling to nops, so tracing-off
runs are bit-identical to a build without this package.
"""

from repro.trace.audit import AuditReport, audit_machine
from repro.trace.buffer import RingBuffer, TraceEvent
from repro.trace.export import (
    iter_events,
    render_summary,
    render_tail,
    write_ndjson,
    write_perfetto,
    write_trace_events,
)
from repro.trace.tracer import Tracer

__all__ = [
    "AuditReport",
    "RingBuffer",
    "TraceEvent",
    "Tracer",
    "audit_machine",
    "iter_events",
    "render_summary",
    "render_tail",
    "write_ndjson",
    "write_perfetto",
    "write_trace_events",
]
