"""Page-lifecycle auditor: replay a trace, cross-check the StatsBook.

The trace stream and the counters are written by *different* code at
*different* layers — e.g. ``kpromoted.promoted`` is accumulated from
``ScanResult`` merges in the daemon's ``run()`` while the
``kpromoted_promote`` tracepoint fires inside the drain loop — so
agreement between the two is evidence that the accounting, not just the
arithmetic, is right.  Exactly the class of bug this PR's satellites fix
(misattributed residency tiers, double-consumed REFERENCED flags) shows
up here as a counter/trace mismatch.

Two layers of checking:

1. **Counter cross-checks** — each cross-check compares a counter *delta*
   (since the tracer's enable-time baseline) against the tracer's
   ``hits``.  Hits count every emission even when the ring overwrote the
   event, so these stay exact under ring pressure.
2. **Replay checks** — run only while every ring is complete (nothing
   overwritten): per-pfn lifecycle replay (pages are allocated before
   they are used, never used after free/evict, and migrate from the node
   the trace last placed them on — pfns are globally unique and never
   reused, which is what makes this a pure fold over the stream), plus
   breakdowns that need event fields (migration directions, which
   scanner demoted, fault windows opened).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.trace.export import iter_events

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine

__all__ = ["AuditReport", "audit_machine"]

_MAX_DETAILS = 20

#: counter-vs-hits equalities: (counter names to sum, event name).
_COUNTER_CHECKS: tuple[tuple[tuple[str, ...], str], ...] = (
    (("alloc.pages",), "mm_page_alloc"),
    (("reclaim.evictions",), "mm_vmscan_evict"),
    (("oom.kills",), "oom_kill"),
    (("kpromoted.promoted",), "kpromoted_promote"),
    (("kpromoted.deactivated",), "kpromoted_recycle"),
    (("migrate.attempts",), "mm_migrate_pages"),
    (("faults.copy_failures_injected",), "fault_copy_fail"),
    (("multiclock.promote_list_adds", "kpromoted.to_promote_list"), "mm_promote_list_add"),
    (("backing.swap_outs",), "mm_swap_out"),
    (("backing.swap_ins",), "mm_swap_in"),
)

#: events that never concern one page even though replay sees them.
_DEATHS = ("mm_page_free", "mm_vmscan_evict")


@dataclass
class AuditReport:
    """Outcome of one trace-vs-counters audit."""

    checks: int = 0
    events_replayed: int = 0
    complete: bool = True
    mismatches: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [
            f"trace audit: {self.checks} cross-checks, "
            f"{self.events_replayed} events replayed, "
            f"rings {'complete' if self.complete else 'OVERWRITTEN (replay skipped)'}"
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        if self.ok:
            lines.append("  verdict: OK — counters and trace agree")
        else:
            lines.extend(f"  MISMATCH: {m}" for m in self.mismatches)
            lines.append(f"  verdict: {len(self.mismatches)} mismatch(es)")
        return "\n".join(lines)

    def _mismatch(self, message: str) -> None:
        if len(self.mismatches) < _MAX_DETAILS:
            self.mismatches.append(message)
        elif len(self.mismatches) == _MAX_DETAILS:
            self.mismatches.append("... further mismatches elided")


def audit_machine(machine: "Machine") -> AuditReport:
    """Cross-check ``machine``'s trace against its StatsBook counters.

    The tracer must have been enabled before the workload ran (its
    enable-time baseline makes the counter deltas exact either way, but
    replay only sees events emitted while it was live).
    """
    tracer = machine.system.trace
    if tracer is None:
        raise RuntimeError("no tracer installed — call Machine.enable_tracing() first")
    report = AuditReport(complete=tracer.complete)
    stats = machine.system.stats
    backing = machine.system.backing
    baseline = tracer.baseline

    def counter_delta(name: str) -> int:
        if name == "backing.swap_outs":
            current = backing.swap_outs
        elif name == "backing.swap_ins":
            current = backing.swap_ins
        else:
            current = stats.get(name)
        return current - baseline.get(name, 0)

    for names, event_name in _COUNTER_CHECKS:
        expected = sum(counter_delta(name) for name in names)
        observed = tracer.hits.get(event_name, 0)
        report.checks += 1
        if expected != observed:
            report._mismatch(
                f"{'+'.join(names)} = {expected} but {observed} {event_name} events emitted"
            )

    if not tracer.complete:
        report.notes.append(
            f"{tracer.events_dropped} events overwritten — raise capacity_per_node "
            "for lifecycle replay"
        )
        return report
    _replay(machine, tracer, report, counter_delta)
    return report


def _replay(machine, tracer, report: AuditReport, counter_delta) -> None:
    directions = {"promote": 0, "demote": 0, "lateral": 0}
    kswapd_demotes = 0
    windows_opened = 0
    # pfn -> [node the trace last placed it on, alive]
    pages: dict[int, list] = {}
    for event in iter_events(tracer):
        report.events_replayed += 1
        name = event.name
        if name == "fault_window":
            windows_opened += event.fields["opening"]
            continue
        if name == "mm_vmscan_demote" and event.fields["scanner"] == "kswapd":
            kswapd_demotes += 1
        if name == "mm_migrate_pages" and event.fields["outcome"] == "migrated":
            directions[event.fields["direction"]] += 1
        pfn = event.pfn
        if pfn < 0:
            continue
        state = pages.get(pfn)
        if name == "mm_page_alloc":
            if state is not None and state[1]:
                report._mismatch(f"pfn {pfn} allocated while already live")
            pages[pfn] = [event.node_id, True]
            continue
        if state is None:
            continue  # allocated before tracing started: nothing to hold it to
        node, alive = state
        if not alive:
            report._mismatch(f"{name} for pfn {pfn} after it was freed (seq {event.seq})")
            continue
        if name in _DEATHS:
            if node != event.node_id:
                report._mismatch(
                    f"pfn {pfn} freed on node {event.node_id} but last seen on {node}"
                )
            state[1] = False
        elif name == "mm_migrate_pages":
            if node != event.node_id:
                report._mismatch(
                    f"pfn {pfn} migrating from node {event.node_id} but last seen on {node}"
                )
            if event.fields["outcome"] == "migrated":
                state[0] = event.fields["dest"]
        elif name in ("mm_vmscan_demote", "kpromoted_promote", "kswapd_promote"):
            # Emitted by the scanner *after* the migration moved the page,
            # so the page must already sit on the destination.
            if node != event.fields["dest"]:
                report._mismatch(
                    f"{name} says pfn {pfn} landed on node {event.fields['dest']} "
                    f"but the trace has it on {node}"
                )
        elif node != event.node_id:
            report._mismatch(
                f"{name} for pfn {pfn} on node {event.node_id} but last seen on {node}"
            )
    replay_checks = (
        ("migrate.promotions", directions["promote"]),
        ("migrate.demotions", directions["demote"]),
        ("migrate.lateral", directions["lateral"]),
        ("kswapd.demoted", kswapd_demotes),
        ("faults.windows_opened", windows_opened),
    )
    for counter_name, observed in replay_checks:
        report.checks += 1
        expected = counter_delta(counter_name)
        if expected != observed:
            report._mismatch(
                f"{counter_name} = {expected} but replay saw {observed}"
            )
