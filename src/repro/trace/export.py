"""Trace consumers: merged iteration, NDJSON/perfetto export, summaries.

NDJSON (one JSON object per line) is the grep-friendly interchange form;
the perfetto writer emits the Chrome trace-event JSON that
https://ui.perfetto.dev loads directly, with one track per NUMA node so
per-node daemon activity lines up visually.  Virtual nanoseconds map to
trace microseconds (the trace-event unit), so one simulated second reads
as one second in the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.sim.vclock import NANOS_PER_SECOND
from repro.trace.buffer import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import Tracer

__all__ = [
    "iter_events",
    "write_ndjson",
    "write_perfetto",
    "write_trace_events",
    "render_tail",
    "render_summary",
]


def write_trace_events(records: Iterable[dict], path: str | Path) -> Path:
    """Write prepared Chrome trace-event records as one loadable JSON file.

    The shared writer behind :func:`write_perfetto` (simulated-machine
    tracepoints) and ``repro timeline`` (control-plane journal spans) —
    both emit ``{"traceEvents": [...]}`` that https://ui.perfetto.dev
    opens directly.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump({"traceEvents": list(records), "displayTimeUnit": "ms"}, fh)
        fh.write("\n")
    return path


def iter_events(
    tracer: "Tracer", *, prefixes: Sequence[str] | None = None
) -> Iterator[TraceEvent]:
    """All surviving events across every ring, in emission order.

    ``prefixes`` filters by event-name prefix (``["mm_lru", "oom"]``),
    mirroring ``trace-cmd record -e mm_lru*``.
    """
    merged: list[TraceEvent] = []
    for ring in tracer.buffers.values():
        merged.extend(ring)
    merged.sort(key=lambda ev: ev.seq)
    for event in merged:
        if prefixes is None or any(event.name.startswith(p) for p in prefixes):
            yield event


def write_ndjson(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """One compact JSON object per line, in emission order."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            json.dump(event.to_dict(), fh, separators=(",", ":"), sort_keys=True)
            fh.write("\n")
    return path


def write_perfetto(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Chrome trace-event JSON: instant events, one track per node."""
    records = []
    for event in events:
        args = dict(event.fields)
        if event.pfn >= 0:
            args["pfn"] = event.pfn
        records.append(
            {
                "name": event.name,
                "ph": "i",
                "s": "t",
                "ts": event.ts_ns / 1000.0,
                "pid": 0,
                "tid": event.node_id,
                "args": args,
            }
        )
    return write_trace_events(records, path)


def render_tail(events: Sequence[TraceEvent], count: int) -> str:
    """The last ``count`` events, one per line — ``trace_pipe`` style."""
    lines = []
    for event in events[-count:]:
        extra = " ".join(f"{k}={v}" for k, v in sorted(event.fields.items()))
        pfn = f" pfn={event.pfn}" if event.pfn >= 0 else ""
        lines.append(
            f"[{event.ts_ns / NANOS_PER_SECOND:12.6f}] node{event.node_id:>2} "
            f"{event.name}:{pfn}{' ' + extra if extra else ''}"
        )
    return "\n".join(lines) if lines else "(no events)"


def render_summary(tracer: "Tracer", *, buckets: int = 20, width: int = 40) -> str:
    """Per-event totals plus an event-rate histogram over virtual time."""
    lines = ["event                        hits  buffered"]
    buffered: dict[str, int] = {}
    for ring in tracer.buffers.values():
        for event in ring:
            buffered[event.name] = buffered.get(event.name, 0) + 1
    for name in sorted(tracer.hits):
        lines.append(f"{name:<24} {tracer.hits[name]:>9}  {buffered.get(name, 0):>8}")
    lines.append(
        f"{'total':<24} {tracer.events_emitted:>9}  "
        f"{sum(len(r) for r in tracer.buffers.values()):>8}"
        f"  ({tracer.events_dropped} overwritten)"
    )
    events = list(iter_events(tracer))
    if events:
        lo = events[0].ts_ns
        hi = max(events[-1].ts_ns, lo + 1)
        span = hi - lo
        counts = [0] * buckets
        for event in events:
            index = min(buckets - 1, (event.ts_ns - lo) * buckets // span)
            counts[index] += 1
        peak = max(counts) or 1
        lines.append("")
        lines.append(f"buffered event rate over virtual time ({span / NANOS_PER_SECOND:.4f}s span):")
        for i, n in enumerate(counts):
            start_s = (lo + i * span / buckets) / NANOS_PER_SECOND
            lines.append(f"{start_s:10.4f}s {n:>7} {'#' * (width * n // peak)}")
    return "\n".join(lines)
