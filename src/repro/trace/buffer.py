"""Bounded trace ring buffers — the simulator's per-CPU trace pages.

The kernel's tracing buffers are fixed-size per CPU and overwrite the
oldest entries when full; readers learn how much they missed from an
``overrun`` count.  :class:`RingBuffer` mirrors that contract per NUMA
node: appends never fail and never grow memory without bound, overwrites
are counted in :attr:`RingBuffer.dropped`, and iteration yields the
surviving events oldest first.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["TraceEvent", "RingBuffer"]


class TraceEvent:
    """One emitted tracepoint record.

    ``seq`` is a global monotonic sequence number (emission order across
    all rings — virtual timestamps are not unique because many events
    share one clock reading), ``ts_ns`` the virtual time, ``node_id`` the
    ring it was emitted to (-1 for machine-wide events), ``pfn`` the page
    concerned (-1 when the event is not about one page).
    """

    __slots__ = ("seq", "ts_ns", "name", "node_id", "pfn", "fields")

    def __init__(
        self,
        seq: int,
        ts_ns: int,
        name: str,
        node_id: int,
        pfn: int,
        fields: dict[str, Any],
    ) -> None:
        self.seq = seq
        self.ts_ns = ts_ns
        self.name = name
        self.node_id = node_id
        self.pfn = pfn
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "seq": self.seq,
            "ts_ns": self.ts_ns,
            "event": self.name,
            "node": self.node_id,
        }
        if self.pfn >= 0:
            data["pfn"] = self.pfn
        data.update(self.fields)
        return data

    def __repr__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.fields.items())
        pfn = f" pfn={self.pfn}" if self.pfn >= 0 else ""
        return f"<{self.name} @{self.ts_ns}ns node={self.node_id}{pfn}{extra}>"


class RingBuffer:
    """Fixed-capacity overwrite-oldest event buffer for one node."""

    __slots__ = ("capacity", "dropped", "_slots", "_next")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._slots: list[TraceEvent] = []
        self._next = 0  # overwrite position once the ring is full

    def append(self, event: TraceEvent) -> None:
        slots = self._slots
        if len(slots) < self.capacity:
            slots.append(event)
        else:
            slots[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[TraceEvent]:
        """Surviving events, oldest first."""
        slots = self._slots
        if len(slots) < self.capacity:
            yield from slots
        else:
            yield from slots[self._next :]
            yield from slots[: self._next]
