"""The tracepoint surface: one ``trace_*`` method per kernel event.

A :class:`Tracer` is installed on a machine with
``Machine.enable_tracing()``; until then every call site sees ``None``
and skips emission entirely — the analogue of tracepoints compiled to
nops.  The tracer deliberately owns *all* of its own state:

* events go to per-node :class:`~repro.trace.buffer.RingBuffer`\\ s keyed
  by ``node_id`` (-1 collects machine-wide events like OOM kills);
* per-event emission counts live in :attr:`Tracer.hits`, a plain dict
  **outside** the simulation's :class:`~repro.sim.stats.StatsBook` —
  tracing must never change the counter key set or values a run reports,
  or tracing-on runs would stop being comparable to tracing-off ones;
* timestamps are read from the shared virtual clock but the clock is
  never advanced: observation is free, exactly like the residency probe.

``hits`` counts every emission even when the ring overwrote the event,
so counter cross-checks (see :mod:`repro.trace.audit`) stay exact under
ring pressure; only per-event *replay* needs complete rings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.trace.buffer import RingBuffer, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.vclock import VirtualClock

__all__ = ["Tracer", "DEFAULT_RING_CAPACITY"]

DEFAULT_RING_CAPACITY = 65536
"""Events retained per node before the ring overwrites the oldest."""


class Tracer:
    """Bounded, virtually-timestamped event recorder for one machine."""

    def __init__(
        self, clock: "VirtualClock", *, capacity_per_node: int = DEFAULT_RING_CAPACITY
    ) -> None:
        if capacity_per_node <= 0:
            raise ValueError("capacity_per_node must be positive")
        self._clock = clock
        self.capacity_per_node = capacity_per_node
        self.buffers: dict[int, RingBuffer] = {}
        self.hits: dict[str, int] = {}
        # Counter values at the moment tracing was enabled: the auditor
        # compares *deltas* against hits so a tracer attached mid-run
        # still cross-checks exactly.
        self.baseline: dict[str, int] = {}
        self._seq = 0

    @property
    def events_emitted(self) -> int:
        return self._seq

    @property
    def events_dropped(self) -> int:
        return sum(ring.dropped for ring in self.buffers.values())

    @property
    def complete(self) -> bool:
        """True while no ring has overwritten anything."""
        return self.events_dropped == 0

    def emit(self, name: str, node_id: int = -1, pfn: int = -1, **fields) -> None:
        """Record one event into ``node_id``'s ring. Hot sites use the
        typed ``trace_*`` wrappers; this is the shared tail."""
        self.hits[name] = self.hits.get(name, 0) + 1
        ring = self.buffers.get(node_id)
        if ring is None:
            ring = self.buffers[node_id] = RingBuffer(self.capacity_per_node)
        self._seq += 1
        ring.append(TraceEvent(self._seq, self._clock.now_ns, name, node_id, pfn, fields))

    # -- mm tracepoints ------------------------------------------------------

    def trace_mm_page_alloc(self, node_id: int, pfn: int, is_anon: bool, fell_back: bool) -> None:
        self.emit("mm_page_alloc", node_id, pfn, anon=is_anon, fell_back=fell_back)

    def trace_mm_page_free(self, node_id: int, pfn: int, reason: str) -> None:
        self.emit("mm_page_free", node_id, pfn, reason=reason)

    def trace_mm_lru_activate(self, node_id: int, pfn: int, scanner: str) -> None:
        self.emit("mm_lru_activate", node_id, pfn, scanner=scanner)

    def trace_mm_lru_deactivate(self, node_id: int, pfn: int, scanner: str) -> None:
        self.emit("mm_lru_deactivate", node_id, pfn, scanner=scanner)

    def trace_mm_promote_list_add(self, node_id: int, pfn: int, source: str) -> None:
        self.emit("mm_promote_list_add", node_id, pfn, source=source)

    def trace_mm_vmscan_demote(self, node_id: int, pfn: int, dest: int, scanner: str) -> None:
        self.emit("mm_vmscan_demote", node_id, pfn, dest=dest, scanner=scanner)

    def trace_mm_vmscan_evict(self, node_id: int, pfn: int, is_anon: bool) -> None:
        self.emit("mm_vmscan_evict", node_id, pfn, anon=is_anon)

    def trace_mm_migrate_pages(
        self, node_id: int, pfn: int, dest: int, direction: str, outcome: str
    ) -> None:
        self.emit(
            "mm_migrate_pages", node_id, pfn,
            dest=dest, direction=direction, outcome=outcome,
        )

    def trace_mm_swap_out(self, process_id: int, vpage: int) -> None:
        self.emit("mm_swap_out", pid=process_id, vpage=vpage)

    def trace_mm_swap_in(self, process_id: int, vpage: int) -> None:
        self.emit("mm_swap_in", pid=process_id, vpage=vpage)

    def trace_oom_kill(self, reason: str, pid: int = -1) -> None:
        # The pid field (the victim process of a memcg OOM kill) is only
        # emitted when set, so machine-wide OOM events keep their
        # historical shape byte-for-byte.
        if pid >= 0:
            self.emit("oom_kill", reason=reason, pid=pid)
        else:
            self.emit("oom_kill", reason=reason)

    # -- daemon tracepoints --------------------------------------------------

    def trace_kpromoted_promote(self, node_id: int, pfn: int, dest: int) -> None:
        self.emit("kpromoted_promote", node_id, pfn, dest=dest)

    def trace_kpromoted_recycle(self, node_id: int, pfn: int, reason: str) -> None:
        self.emit("kpromoted_recycle", node_id, pfn, reason=reason)

    def trace_kswapd_wake(self, node_id: int, free_pages: int) -> None:
        self.emit("kswapd_wake", node_id, free_pages=free_pages)

    def trace_kswapd_promote(self, node_id: int, pfn: int, dest: int) -> None:
        self.emit("kswapd_promote", node_id, pfn, dest=dest)

    def trace_kswapd_recycle_promote(self, node_id: int, pfn: int) -> None:
        self.emit("kswapd_recycle_promote", node_id, pfn)

    # -- fault-injection tracepoints ----------------------------------------

    def trace_fault_window(self, index: int, kind: str, opening: bool) -> None:
        self.emit("fault_window", index=index, kind=kind, opening=opening)

    def trace_fault_copy_fail(self, node_id: int, pfn: int, dest: int) -> None:
        self.emit("fault_copy_fail", node_id, pfn, dest=dest)
