"""Figure 2: observation/performance window frequency analysis.

"We divide the whole execution period ... into multiple sets of
observation windows followed by performance windows.  We divide sampled
pages that were accessed into two defined categories: pages that were
accessed only once during that particular observation window and pages
that were accessed multiple times.  Finally, we measure their accesses in
the next performance window."

The paper's conclusion — pages accessed multiple times in an observation
window are accessed "with a much higher frequency on average" in the
following performance window — is MULTI-CLOCK's principal hypothesis, and
:func:`analyze_windows` reproduces the measurement for any traceable
workload.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

__all__ = ["WindowPairStats", "WindowAnalysis", "analyze_windows"]


@dataclass(frozen=True)
class WindowPairStats:
    """One (observation, performance) window pair."""

    pair_id: int
    single_pages: int
    multi_pages: int
    single_mean_future: float
    multi_mean_future: float


@dataclass(frozen=True)
class WindowAnalysis:
    """Aggregate over all window pairs."""

    workload: str
    pairs: tuple[WindowPairStats, ...]

    def mean_future(self, group: str) -> float:
        """Average future-window frequency for 'single' or 'multi' pages,
        weighted by group population per pair."""
        total_pages = 0
        total_accesses = 0.0
        for pair in self.pairs:
            pages = pair.single_pages if group == "single" else pair.multi_pages
            mean = pair.single_mean_future if group == "single" else pair.multi_mean_future
            total_pages += pages
            total_accesses += mean * pages
        return total_accesses / total_pages if total_pages else 0.0

    @property
    def multi_over_single_ratio(self) -> float:
        """How much more future traffic multi-access pages receive."""
        single = self.mean_future("single")
        if single == 0:
            return float("inf") if self.mean_future("multi") > 0 else 1.0
        return self.mean_future("multi") / single

    def render(self) -> str:
        lines = [
            f"Fig 2 window analysis — {self.workload}",
            f"{'pair':>4} {'#single':>8} {'#multi':>8} "
            f"{'future(single)':>15} {'future(multi)':>14}",
        ]
        for pair in self.pairs:
            lines.append(
                f"{pair.pair_id:>4} {pair.single_pages:>8} {pair.multi_pages:>8} "
                f"{pair.single_mean_future:>15.2f} {pair.multi_mean_future:>14.2f}"
            )
        lines.append(
            f"aggregate: single={self.mean_future('single'):.2f} "
            f"multi={self.mean_future('multi'):.2f} "
            f"ratio={self.multi_over_single_ratio:.2f}x"
        )
        return "\n".join(lines)


def analyze_windows(
    trace: Iterable[tuple[int, int]],
    *,
    workload: str = "trace",
    segments_per_window: int = 2,
) -> WindowAnalysis:
    """Group a ``(segment, vpage)`` trace into window pairs and compare.

    Consecutive windows of ``segments_per_window`` segments alternate in
    the roles (observation, performance), sliding by one window so every
    adjacent window pair contributes, as in the paper's "all (observation
    window, performance window) pairs".
    """
    if segments_per_window <= 0:
        raise ValueError("segments_per_window must be positive")
    window_counts: dict[int, Counter] = {}
    for segment, vpage in trace:
        window = segment // segments_per_window
        window_counts.setdefault(window, Counter())[vpage] += 1
    if not window_counts:
        return WindowAnalysis(workload, ())
    pairs = []
    last_window = max(window_counts)
    for window in range(last_window):
        observed = window_counts.get(window, Counter())
        future = window_counts.get(window + 1, Counter())
        single = [page for page, count in observed.items() if count == 1]
        multi = [page for page, count in observed.items() if count > 1]
        single_future = [future.get(page, 0) for page in single]
        multi_future = [future.get(page, 0) for page in multi]
        pairs.append(
            WindowPairStats(
                pair_id=window,
                single_pages=len(single),
                multi_pages=len(multi),
                single_mean_future=_mean(single_future),
                multi_mean_future=_mean(multi_future),
            )
        )
    return WindowAnalysis(workload, tuple(pairs))


def _mean(values: list[int]) -> float:
    return sum(values) / len(values) if values else 0.0
