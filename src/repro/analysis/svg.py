"""Dependency-free inline-SVG chart builders for the HTML dashboard.

The builders emit *classed* SVG — ``.grid``, ``.axis``, ``.tick``,
``.line.series-N``, ``.bar`` — and leave every colour to the embedding
document's stylesheet, so one chart definition follows the page's light
and dark themes for free.  Mark conventions: 2px lines, bars with
4px-rounded data ends anchored to the baseline, a single left axis,
recessive hairline grid, sparse muted tick labels, and native
``<title>`` tooltips on every mark as the hover layer.
"""

from __future__ import annotations

import math
from html import escape
from typing import Sequence

__all__ = ["line_chart", "bar_chart", "format_si", "MAX_SERIES"]

#: Categorical palette slots available to one chart.  Callers must fold
#: or facet beyond this — slots are assigned in fixed order, never cycled.
MAX_SERIES = 8

_M_LEFT = 54.0
_M_RIGHT = 12.0
_M_TOP = 14.0
_M_BOTTOM = 26.0


def format_si(value: float) -> str:
    """Compact tick label: ``1200`` → ``1.2k``, ``3.4e6`` → ``3.4M``."""
    if math.isnan(value) or math.isinf(value):
        return "?"
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= cut:
            text = f"{magnitude / cut:.1f}".rstrip("0").rstrip(".")
            return f"{sign}{text}{suffix}"
    if magnitude == int(magnitude):
        return f"{sign}{int(magnitude)}"
    return f"{sign}{magnitude:.2f}".rstrip("0").rstrip(".")


def _c(value: float) -> str:
    """Coordinate formatting: one decimal, no trailing ``.0``."""
    return f"{value:.1f}".rstrip("0").rstrip(".")


def _nice_step(span: float, target_ticks: int = 4) -> float:
    """A 1/2/2.5/5×10^k step giving roughly ``target_ticks`` divisions."""
    raw = span / max(target_ticks, 1)
    if raw <= 0:
        return 1.0
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        if multiple * magnitude >= raw:
            return multiple * magnitude
    return 10.0 * magnitude


def _ticks(lo: float, hi: float, target: int = 4) -> list[float]:
    step = _nice_step(hi - lo, target)
    first = math.ceil(lo / step) * step
    out = []
    value = first
    while value <= hi + step * 1e-9:
        out.append(0.0 if abs(value) < step * 1e-9 else value)
        value += step
    return out


def _empty(width: float, height: float, message: str = "no data") -> str:
    return (
        f'<svg viewBox="0 0 {_c(width)} {_c(height)}" role="img">'
        f'<text class="tick" x="{_c(width / 2)}" y="{_c(height / 2)}" '
        f'text-anchor="middle">{escape(message)}</text></svg>'
    )


def line_chart(
    series: Sequence[tuple[str, Sequence[tuple[float, float | None]]]],
    *,
    width: float = 620,
    height: float = 200,
    unit: str = "",
    x_unit: str = "s",
) -> str:
    """Multi-series line chart; ``None`` values break the line (gaps).

    ``series`` is ``[(label, [(x, y_or_None), ...]), ...]`` with x in
    virtual seconds.  At most :data:`MAX_SERIES` series are drawn, in
    slot order.
    """
    series = list(series)[:MAX_SERIES]
    finite = [
        (x, y) for _, points in series for x, y in points if y is not None
    ]
    if not finite:
        return _empty(width, height)
    xs = [x for x, _ in finite]
    ys = [y for _, y in finite]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    y_lo = min(0.0, min(ys))
    y_hi = max(0.0, max(ys))
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    plot_w = width - _M_LEFT - _M_RIGHT
    plot_h = height - _M_TOP - _M_BOTTOM

    def sx(x: float) -> float:
        return _M_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return _M_TOP + (y_hi - y) / (y_hi - y_lo) * plot_h

    parts = [f'<svg viewBox="0 0 {_c(width)} {_c(height)}" role="img">']
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line class="grid" x1="{_c(_M_LEFT)}" y1="{_c(y)}" '
            f'x2="{_c(width - _M_RIGHT)}" y2="{_c(y)}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_c(_M_LEFT - 6)}" y="{_c(y + 3.5)}" '
            f'text-anchor="end">{format_si(tick)}</text>'
        )
    baseline = sy(0.0)
    parts.append(
        f'<line class="axis" x1="{_c(_M_LEFT)}" y1="{_c(baseline)}" '
        f'x2="{_c(width - _M_RIGHT)}" y2="{_c(baseline)}"/>'
    )
    for tick in _ticks(x_lo, x_hi):
        if tick < x_lo or tick > x_hi:
            continue
        x = sx(tick)
        parts.append(
            f'<text class="tick" x="{_c(x)}" y="{_c(height - 8)}" '
            f'text-anchor="middle">{format_si(tick)}{escape(x_unit)}</text>'
        )
    hover: list[str] = []
    for index, (label, points) in enumerate(series):
        slot = index + 1
        segments: list[str] = []
        run: list[str] = []
        for x, y in points:
            if y is None:
                if run:
                    segments.append("M" + " L".join(run))
                    run = []
                continue
            run.append(f"{_c(sx(x))},{_c(sy(y))}")
            hover.append(
                f'<circle class="pt" cx="{_c(sx(x))}" cy="{_c(sy(y))}" r="8">'
                f"<title>{escape(label)} @ {format_si(x)}{escape(x_unit)}: "
                f"{format_si(y)}{escape(unit)}</title></circle>"
            )
        if run:
            segments.append("M" + " L".join(run))
        if segments:
            parts.append(
                f'<path class="line series-{slot}" d="{" ".join(segments)}"/>'
            )
    parts.extend(hover)
    parts.append("</svg>")
    return "".join(parts)


def _bar_path(x: float, top: float, w: float, h: float, r: float = 4.0) -> str:
    """A bar anchored to the baseline with a rounded data end (the top)."""
    r = min(r, w / 2, h)
    if r <= 0.1:
        return f"M{_c(x)},{_c(top + h)} v{_c(-h)} h{_c(w)} v{_c(h)} Z"
    return (
        f"M{_c(x)},{_c(top + h)} v{_c(-(h - r))} q0,{_c(-r)} {_c(r)},{_c(-r)} "
        f"h{_c(w - 2 * r)} q{_c(r)},0 {_c(r)},{_c(r)} v{_c(h - r)} Z"
    )


def bar_chart(
    bars: Sequence[tuple[str, float]],
    *,
    width: float = 620,
    height: float = 200,
    unit: str = "",
    max_x_labels: int = 6,
) -> str:
    """Single-series bar chart: ``[(label, value), ...]`` left to right.

    Bars sit 2px apart on the baseline; only the peak bar gets a direct
    value label, x labels are thinned to ``max_x_labels``.
    """
    bars = list(bars)
    if not bars or all(value <= 0 for _, value in bars):
        return _empty(width, height, "no samples")
    peak = max(value for _, value in bars)
    plot_w = width - _M_LEFT - _M_RIGHT
    plot_h = height - _M_TOP - _M_BOTTOM
    slot_w = plot_w / len(bars)
    bar_w = max(1.0, slot_w - 2.0)
    baseline = _M_TOP + plot_h
    parts = [f'<svg viewBox="0 0 {_c(width)} {_c(height)}" role="img">']
    for tick in _ticks(0.0, peak):
        y = _M_TOP + plot_h * (1.0 - tick / peak)
        parts.append(
            f'<line class="grid" x1="{_c(_M_LEFT)}" y1="{_c(y)}" '
            f'x2="{_c(width - _M_RIGHT)}" y2="{_c(y)}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_c(_M_LEFT - 6)}" y="{_c(y + 3.5)}" '
            f'text-anchor="end">{format_si(tick)}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_c(_M_LEFT)}" y1="{_c(baseline)}" '
        f'x2="{_c(width - _M_RIGHT)}" y2="{_c(baseline)}"/>'
    )
    label_stride = max(1, math.ceil(len(bars) / max_x_labels))
    peak_index = max(range(len(bars)), key=lambda i: bars[i][1])
    for index, (label, value) in enumerate(bars):
        x = _M_LEFT + index * slot_w + (slot_w - bar_w) / 2
        h = plot_h * value / peak
        center = x + bar_w / 2
        if value > 0:
            parts.append(
                f'<path class="bar" d="{_bar_path(x, baseline - h, bar_w, h)}">'
                f"<title>{escape(label)}: {format_si(value)}{escape(unit)}"
                "</title></path>"
            )
        if index % label_stride == 0:
            parts.append(
                f'<text class="tick" x="{_c(center)}" y="{_c(height - 8)}" '
                f'text-anchor="middle">{escape(label)}</text>'
            )
        if index == peak_index:
            parts.append(
                f'<text class="val" x="{_c(center)}" '
                f'y="{_c(baseline - h - 4)}" text-anchor="middle">'
                f"{format_si(value)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)
