"""Tier-residency probes: where a workload's pages live over time.

The evaluation's per-window figures show *what the policy did* (Figs 8
and 9); a residency probe shows *what the memory looks like* while it
happens — how many of a process's pages sit in DRAM, PM, or swap at each
sample point.  Attach one to a machine and it samples on the daemon
scheduler like any kernel thread::

    machine = Machine(config, "multiclock")
    probe = ResidencyProbe(machine, process, interval_s=0.01)
    ...run the workload...
    print(probe.render())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine import Machine
from repro.mm.address_space import Process
from repro.mm.hardware import MemoryTier
from repro.sim.events import Daemon
from repro.sim.vclock import NANOS_PER_SECOND

__all__ = ["ResidencySample", "ResidencyProbe"]


@dataclass(frozen=True)
class ResidencySample:
    """One snapshot of a process's page placement."""

    time_ns: int
    dram_pages: int
    pm_pages: int
    swapped_pages: int

    @property
    def resident(self) -> int:
        return self.dram_pages + self.pm_pages

    @property
    def dram_fraction(self) -> float:
        return self.dram_pages / self.resident if self.resident else 0.0


class ResidencyProbe:
    """Periodic sampler of one process's tier residency."""

    def __init__(
        self, machine: Machine, process: Process, *, interval_s: float = 0.01
    ) -> None:
        self.machine = machine
        self.process = process
        self.samples: list[ResidencySample] = []
        self._daemon = machine.scheduler.register(
            Daemon(f"residency-probe/{process.pid}", interval_s, self._sample)
        )

    def _sample(self, now_ns: int) -> int:
        dram = pm = 0
        system = self.machine.system
        for pte in self.process.page_table.entries():
            # An explicit tier split: the old `else: pm += 1` arm counted
            # every non-DRAM resident page as PM, which silently folded
            # any future tier (or a misplaced page) into the PM column.
            tier = system.tier_of(pte.page)
            if tier is MemoryTier.DRAM:
                dram += 1
            elif tier is MemoryTier.PM:
                pm += 1
        # O(1) from the backing store's per-process count, instead of
        # re-testing every vpage of every anonymous region per sample.
        swapped = system.backing.swapped_pages_of(self.process.pid)
        self.samples.append(ResidencySample(now_ns, dram, pm, swapped))
        return 0  # observation is free: probes must not perturb timing

    # -- reporting ------------------------------------------------------------

    def final(self) -> ResidencySample | None:
        return self.samples[-1] if self.samples else None

    def peak_dram_fraction(self) -> float:
        return max((s.dram_fraction for s in self.samples), default=0.0)

    def render(self, *, width: int = 50) -> str:
        if not self.samples:
            return "(no samples)"
        peak = max(s.resident + s.swapped_pages for s in self.samples) or 1
        lines = [f"tier residency of {self.process.name} (D=DRAM, p=PM, s=swap)"]
        for sample in self.samples:
            t = sample.time_ns / NANOS_PER_SECOND
            d = int(width * sample.dram_pages / peak)
            p = int(width * sample.pm_pages / peak)
            s = int(width * sample.swapped_pages / peak)
            lines.append(
                f"{t:9.4f}s |{'D' * d}{'p' * p}{'s' * s}| "
                f"dram={sample.dram_pages} pm={sample.pm_pages} "
                f"swap={sample.swapped_pages}"
            )
        return "\n".join(lines)
