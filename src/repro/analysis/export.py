"""CSV export of experiment results, for external plotting.

The ASCII renderings are for terminals; anyone regenerating the paper's
figures with a real plotting stack wants the underlying series.  These
writers emit plain CSV (no dependencies) for the three result shapes the
experiments produce: policy comparisons (Figs 5-7, 10 columns), windowed
series (Figs 8-9), and generic labelled rows.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Sequence

from repro.analysis.compare import PolicyComparison
from repro.sim.stats import WindowPoint

__all__ = ["write_comparisons_csv", "write_series_csv", "write_rows_csv"]


def write_comparisons_csv(
    comparisons: dict[str, PolicyComparison], path: str | Path
) -> Path:
    """One row per workload, one column per policy (the Fig 5/6 layout)."""
    path = Path(path)
    if not comparisons:
        raise ValueError("nothing to export")
    policies = sorted(next(iter(comparisons.values())).values)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        first = next(iter(comparisons.values()))
        writer.writerow(["workload", "metric", "baseline", *policies])
        for name, comparison in comparisons.items():
            writer.writerow(
                [name, comparison.metric, comparison.baseline]
                + [f"{comparison.values[p]:.6f}" for p in policies]
            )
    return path


def write_series_csv(
    series: dict[str, Sequence[WindowPoint]], path: str | Path
) -> Path:
    """One row per window, one column per labelled series (Figs 8/9)."""
    path = Path(path)
    if not series:
        raise ValueError("nothing to export")
    labels = sorted(series)
    width = max((len(points) for points in series.values()), default=0)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["window", *labels])
        for window in range(width):
            row: list[object] = [window]
            for label in labels:
                points = series[label]
                if window >= len(points) or math.isnan(points[window].value):
                    # No-data windows export as empty cells, not 0.0 —
                    # plotting stacks then show a gap, matching means().
                    row.append("")
                else:
                    row.append(f"{points[window].value:.6f}")
            writer.writerow(row)
    return path


def write_rows_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]], path: str | Path
) -> Path:
    """Generic labelled rows (overhead/ablation tables)."""
    path = Path(path)
    if len(set(map(len, rows))) > 1 or (rows and len(rows[0]) != len(headers)):
        raise ValueError("every row must match the header width")
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
