"""Figure 1: access-frequency heatmaps of sampled pages over time.

"We randomly sampled pages from memory, assigned them unique identifiers,
and traced the accesses to these sampled pages. ... On the Y axis, 50
sampled pages are sorted in ascending identifier order.  The x axis
represents execution time.  Each block of the heatmap shows the intensity
of the access frequency for a particular page for a particular time
segment."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng
from repro.workloads.motivation import MotivationWorkload

__all__ = ["Heatmap", "build_heatmap"]

_SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class Heatmap:
    """Sampled-page access counts per time segment."""

    workload: str
    sampled_pages: np.ndarray
    counts: np.ndarray  # shape (n_sampled, n_segments)

    @property
    def n_segments(self) -> int:
        return self.counts.shape[1]

    def row_class(self, row: int, *, hot_threshold: float = 0.3) -> str:
        """Classify a sampled page from its observed row, mirroring the
        paper's reading of the heatmap: steady rows are DRAM-friendly,
        mostly-idle rows with bursts are Tier-friendly, the rest rare.

        The threshold is a fraction of the row's own peak; it is kept
        well below 0.5 because a steady page's per-segment counts are
        Poisson-noisy around their mean."""
        row_counts = self.counts[row]
        if row_counts.sum() == 0:
            return "rare"
        peak = row_counts.max()
        active = row_counts > hot_threshold * peak
        active_fraction = active.mean()
        per_segment_mean = row_counts.mean()
        if active_fraction >= 0.75 and per_segment_mean >= 1.0:
            return "dram_friendly"
        if 0.0 < active_fraction < 0.75 and peak >= 4:
            return "tier_friendly"
        return "rare"

    def class_counts(self) -> dict[str, int]:
        tallies: dict[str, int] = {"dram_friendly": 0, "tier_friendly": 0, "rare": 0}
        for row in range(len(self.sampled_pages)):
            tallies[self.row_class(row)] += 1
        return tallies

    def render(self) -> str:
        """ASCII rendering: one row per sampled page, shaded by intensity."""
        peak = max(1.0, float(self.counts.max()))
        lines = [f"Fig 1 heatmap — {self.workload} "
                 f"({len(self.sampled_pages)} pages x {self.n_segments} segments)"]
        for row in range(len(self.sampled_pages)):
            cells = "".join(
                _SHADES[min(len(_SHADES) - 1, int(len(_SHADES) * c / (peak + 1e-9)))]
                for c in self.counts[row]
            )
            lines.append(f"page {self.sampled_pages[row]:>6} |{cells}|")
        return "\n".join(lines)


def build_heatmap(
    workload: MotivationWorkload, *, n_sampled: int = 50, seed: int = 0
) -> Heatmap:
    """Trace the workload and bucket sampled-page accesses by segment."""
    rng = make_rng(seed, f"heatmap-sample-{workload.name}")
    n_sampled = min(n_sampled, workload.pages)
    sampled = np.sort(rng.choice(workload.pages, size=n_sampled, replace=False))
    row_of = {int(vpage): row for row, vpage in enumerate(sampled.tolist())}
    counts = np.zeros((n_sampled, workload.segments), dtype=np.int64)
    for segment, vpage in workload.trace():
        row = row_of.get(vpage)
        if row is not None:
            counts[row, segment] += 1
    return Heatmap(workload.name, sampled, counts)
