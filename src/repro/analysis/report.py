"""ASCII rendering helpers shared by benchmarks and examples."""

from __future__ import annotations

import math
from typing import Sequence

from repro.sim.stats import WindowPoint

__all__ = ["render_table", "render_bars", "render_series"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_bars(values: dict[str, float], *, width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    lines = []
    for label, value in values.items():
        bar = "#" * max(0, int(width * value / peak))
        lines.append(f"{label:>20} {value:>12.3f}{unit} {bar}")
    return "\n".join(lines)


def render_series(
    points: Sequence[WindowPoint], *, label: str = "window", width: int = 40
) -> str:
    """One bar per time window — the Fig 8/9 plot style.

    Windows with no data (NaN values from ``WindowedSeries.means()``)
    render as an explicit gap instead of a zero-height bar.
    """
    if not points:
        return "(no data)"
    finite = [point.value for point in points if not math.isnan(point.value)]
    peak = max(finite, default=0.0) or 1.0
    lines = []
    for point in points:
        if math.isnan(point.value):
            lines.append(f"{label} {point.window_id:>4} {'-':>12} (no data)")
            continue
        bar = "#" * max(0, int(width * point.value / peak))
        lines.append(f"{label} {point.window_id:>4} {point.value:>12.2f} {bar}")
    return "\n".join(lines)
