"""Analysis utilities: the measurement side of every figure."""

from repro.analysis.compare import (
    PolicyComparison,
    normalize_exec_time,
    normalize_throughput,
)
from repro.analysis.dashboard import build_dashboard
from repro.analysis.heatmap import Heatmap, build_heatmap
from repro.analysis.report import render_bars, render_series, render_table
from repro.analysis.residency import ResidencyProbe, ResidencySample
from repro.analysis.svg import bar_chart, format_si, line_chart
from repro.analysis.windows import WindowAnalysis, WindowPairStats, analyze_windows

__all__ = [
    "PolicyComparison",
    "normalize_exec_time",
    "normalize_throughput",
    "Heatmap",
    "build_heatmap",
    "build_dashboard",
    "bar_chart",
    "format_si",
    "line_chart",
    "render_bars",
    "render_series",
    "render_table",
    "ResidencyProbe",
    "ResidencySample",
    "WindowAnalysis",
    "WindowPairStats",
    "analyze_windows",
]
