"""Single-file HTML run dashboard (``repro report --html``).

:func:`build_dashboard` turns a :func:`~repro.metrics.exposition.build_snapshot`
dict — plus the run's :class:`~repro.run.RunResult` and any
``SWEEP_report.json`` / ``CHAOS_report.json`` content — into one
self-contained HTML document: inline CSS, inline SVG, no scripts, no
external assets, so the file can be mailed or archived next to the
report JSONs it renders.

Theme notes: every colour lives in CSS custom properties on
``.viz-root`` with a ``prefers-color-scheme: dark`` override, so the
same markup serves both modes; chart series take palette slots in fixed
order (node 0 is always slot 1); text renders in ink tokens, never in
series colours.
"""

from __future__ import annotations

from html import escape
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.svg import MAX_SERIES, bar_chart, format_si, line_chart

if TYPE_CHECKING:  # pragma: no cover
    from repro.run import RunResult

__all__ = ["build_dashboard"]

_NANOS = 1_000_000_000

_SERIES_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_SERIES_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)


def _palette_vars(colors: tuple[str, ...]) -> str:
    return "".join(
        f"--series-{i + 1}:{color};" for i, color in enumerate(colors)
    )


_CSS = f"""
.viz-root {{
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --good: #006300; --critical: #d03b3b;
  {_palette_vars(_SERIES_LIGHT)}
  margin: 0; background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}}
@media (prefers-color-scheme: dark) {{
  .viz-root {{
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --good: #0ca30c; --critical: #d03b3b;
    {_palette_vars(_SERIES_DARK)}
  }}
}}
main {{ max-width: 1100px; margin: 0 auto; padding: 24px 20px 48px; }}
h1 {{ font-size: 22px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 28px 0 8px; }}
h3 {{ font-size: 13px; font-weight: 600; margin: 0 0 6px;
     color: var(--text-secondary); }}
.meta, footer {{ color: var(--text-muted); font-size: 12px; }}
footer {{ margin-top: 32px; }}
.card {{ background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 14px 16px; }}
.charts {{ display: grid; gap: 12px;
          grid-template-columns: repeat(auto-fit, minmax(330px, 1fr)); }}
.tiles {{ display: grid; gap: 12px; margin-top: 12px;
         grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); }}
.tile .v {{ font-size: 24px; font-weight: 600; }}
.tile .l {{ color: var(--text-muted); font-size: 12px; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 4px 14px; margin: 0 0 6px;
          color: var(--text-secondary); font-size: 12px; }}
.legend .item {{ display: inline-flex; align-items: center; gap: 5px; }}
.swatch {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
.note {{ color: var(--text-muted); font-size: 12px; margin: 8px 0; }}
table {{ border-collapse: collapse; font-variant-numeric: tabular-nums;
        font-size: 13px; }}
th, td {{ padding: 4px 12px 4px 0; border-bottom: 1px solid var(--grid);
         text-align: left; }}
th {{ color: var(--text-muted); font-weight: 500; }}
td.num, th.num {{ text-align: right; }}
details {{ margin: 8px 0; }}
summary {{ cursor: pointer; color: var(--text-secondary); font-size: 13px; }}
.ok {{ color: var(--good); }}
.bad {{ color: var(--critical); font-weight: 600; }}
svg {{ width: 100%; height: auto; display: block; }}
svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg .axis {{ stroke: var(--axis); stroke-width: 1; }}
svg text.tick {{ fill: var(--text-muted); font-size: 11px;
                font-family: inherit; font-variant-numeric: tabular-nums; }}
svg text.val {{ fill: var(--text-secondary); font-size: 11px;
               font-family: inherit; font-variant-numeric: tabular-nums; }}
svg .line {{ fill: none; stroke-width: 2; stroke-linejoin: round;
            stroke-linecap: round; }}
svg .pt {{ fill: transparent; }}
svg .bar {{ fill: var(--series-1); }}
""" + "".join(
    f"svg .line.series-{i} {{ stroke: var(--series-{i}); }} "
    f".swatch.series-{i} {{ background: var(--series-{i}); }}\n"
    for i in range(1, MAX_SERIES + 1)
)


def _node_label(node_id: int, nodes_meta: Mapping[str, Any]) -> str:
    if node_id == -1:
        return "machine"
    tier = nodes_meta.get(str(node_id), {}).get("tier", "?")
    return f"node {node_id} ({tier})"


def _legend(labels: list[str]) -> str:
    """Legend box — present whenever a chart carries two or more series."""
    if len(labels) < 2:
        return ""
    items = "".join(
        f'<span class="item"><span class="swatch series-{i + 1}"></span>'
        f"{escape(label)}</span>"
        for i, label in enumerate(labels[:MAX_SERIES])
    )
    return f'<div class="legend">{items}</div>'


def _tiles(result: "RunResult") -> str:
    tiles = (
        (f"{result.throughput_ops:,.0f}", "ops / virtual second"),
        (f"{result.elapsed_seconds:.3f}s", "virtual time"),
        (f"{100 * result.dram_access_fraction:.1f}%", "DRAM accesses"),
        (f"{result.accesses:,}", "page accesses"),
        (f"{result.promotions:,}", "promotions"),
        (f"{result.demotions:,}", "demotions"),
    )
    cells = "".join(
        f'<div class="card tile"><div class="v">{escape(value)}</div>'
        f'<div class="l">{escape(label)}</div></div>'
        for value, label in tiles
    )
    header = (
        f"{escape(result.workload)} on {escape(result.policy)}"
        + (" (throughput from raw accesses)" if result.ops_fallback else "")
    )
    return f'<p class="meta">{header}</p><div class="tiles">{cells}</div>'


def _series_from_windows(windows: list[Mapping[str, Any]]) -> list[tuple[float, float | None]]:
    return [(point["start_s"], point["value"]) for point in windows]


def _gauge_section(snapshot: Mapping[str, Any]) -> str:
    gauges: Mapping[str, Any] = snapshot.get("gauges", {})
    nodes_meta = snapshot["meta"]["nodes"]
    cards = []
    for name, per_node in gauges.items():
        node_ids = sorted(per_node, key=int)
        if len(node_ids) > MAX_SERIES:
            node_ids = node_ids[:MAX_SERIES]
        labels = [_node_label(int(node_id), nodes_meta) for node_id in node_ids]
        series = [
            (label, _series_from_windows(per_node[node_id]["windows"]))
            for label, node_id in zip(labels, node_ids)
        ]
        chart = line_chart(series, unit=" pages")
        cards.append(
            f'<div class="card"><h3>{escape(name)}</h3>'
            f"{_legend(labels)}{chart}</div>"
        )
    if not cards:
        return '<p class="note">no gauge samples (sampler never fired).</p>'
    last_rows = []
    for name, per_node in gauges.items():
        for node_id in sorted(per_node, key=int):
            last_rows.append(
                f"<tr><td>{escape(name)}</td>"
                f"<td>{escape(_node_label(int(node_id), nodes_meta))}</td>"
                f'<td class="num">{format_si(per_node[node_id]["last"])}</td></tr>'
            )
    table = (
        "<details><summary>gauge table (last sampled values)</summary>"
        '<table><tr><th>gauge</th><th>node</th><th class="num">last</th></tr>'
        f"{''.join(last_rows)}</table></details>"
    )
    return f'<div class="charts">{"".join(cards)}</div>{table}'


def _event_section(snapshot: Mapping[str, Any]) -> str:
    events: Mapping[str, Any] = snapshot.get("events", {})
    nodes_meta = snapshot["meta"]["nodes"]
    cards = []
    for name, per_node in events.items():
        node_ids = sorted(per_node, key=int)[:MAX_SERIES]
        labels = [_node_label(int(node_id), nodes_meta) for node_id in node_ids]
        series = [
            (label, _series_from_windows(per_node[node_id]))
            for label, node_id in zip(labels, node_ids)
        ]
        chart = line_chart(series, unit=" pages/window")
        cards.append(
            f'<div class="card"><h3>{escape(name)} per window</h3>'
            f"{_legend(labels)}{chart}</div>"
        )
    if not cards:
        return '<p class="note">no reclaim activity recorded.</p>'
    return f'<div class="charts">{"".join(cards)}</div>'


def _hist_section(snapshot: Mapping[str, Any]) -> str:
    histograms: Mapping[str, Any] = snapshot.get("histograms", {})
    cards = []
    empty = []
    for name, data in histograms.items():
        if not data["count"]:
            empty.append(name)
            continue
        bars = [
            (format_si(bucket["le"]), bucket["count"])
            for bucket in data["buckets"]
        ]
        mean = data["sum"] / data["count"]
        unit = data.get("unit", "")
        caption = (
            f'{data["count"]:,} samples, mean {format_si(mean)}{unit}, '
            f'max {format_si(data["max"])}{unit}'
        )
        p50, p99 = data.get("p50"), data.get("p99")
        if p50 is not None and p99 is not None:
            caption += (
                f", p50 {format_si(p50)}{unit}, p99 {format_si(p99)}{unit}"
            )
        cards.append(
            f'<div class="card"><h3>{escape(name)}</h3>'
            f'<p class="meta">{escape(caption)}</p>'
            f"{bar_chart(bars, unit=unit)}</div>"
        )
    parts = []
    if cards:
        parts.append(f'<div class="charts">{"".join(cards)}</div>')
    if empty:
        parts.append(
            f'<p class="note">no samples: {escape(", ".join(sorted(empty)))}.</p>'
        )
    if not parts:
        parts.append('<p class="note">no histograms registered.</p>')
    return "".join(parts)


def _counters_section(snapshot: Mapping[str, Any]) -> str:
    counters: Mapping[str, int] = snapshot.get("counters", {})
    rows = "".join(
        f'<tr><td>{escape(name)}</td><td class="num">{value:,}</td></tr>'
        for name, value in counters.items()
    )
    return (
        f"<details><summary>counters ({len(counters)})</summary>"
        f'<table><tr><th>counter</th><th class="num">value</th></tr>'
        f"{rows}</table></details>"
    )


def _sweep_section(sweep: Mapping[str, Any]) -> str:
    rows = []
    for cell in sweep.get("cells", []):
        if "result" in cell:
            result = cell["result"]
            elapsed = result["elapsed_ns"] or 1
            throughput = result["operations"] * _NANOS / elapsed
            total = result["counters"].get("accesses.total", 0)
            dram = result["counters"].get("accesses.dram", 0)
            fraction = 100 * dram / total if total else 0.0
            rows.append(
                f"<tr><td>{escape(cell['id'])}</td>"
                f'<td class="ok">✓ {escape(cell["status"])}</td>'
                f'<td class="num">{throughput:,.0f}</td>'
                f'<td class="num">{fraction:.1f}%</td></tr>'
            )
        else:
            rows.append(
                f"<tr><td>{escape(cell['id'])}</td>"
                f'<td class="bad">✗ {escape(cell["status"])}</td>'
                f'<td colspan="2">{escape(str(cell.get("error", "")))}</td></tr>'
            )
    return (
        '<div class="card"><table><tr><th>cell</th><th>status</th>'
        '<th class="num">ops/s</th><th class="num">DRAM</th></tr>'
        f"{''.join(rows)}</table></div>"
    )


def _profile_section(profile: Mapping[str, Any]) -> str:
    """The sweep wall-time attribution table (present when the sweep ran
    with ``--journal``): where the control plane spent its wall."""
    wall = profile.get("wall_s", 0.0) or 0.0
    phase_rows = []
    for name, seconds in (profile.get("phases") or {}).items():
        label = name[:-2] if name.endswith("_s") else name
        share = 100.0 * seconds / wall if wall else 0.0
        phase_rows.append(
            f"<tr><td>{escape(label)}</td>"
            f'<td class="num">{seconds:.3f}</td>'
            f'<td class="num">{share:.1f}%</td></tr>'
        )
    attr_rows = []
    for name, seconds in (profile.get("attribution") or {}).items():
        label = name[:-2] if name.endswith("_s") else name
        attr_rows.append(
            f"<tr><td>{escape(label)}</td>"
            f'<td class="num">{seconds:.3f}</td><td></td></tr>'
        )
    coverage = 100.0 * (profile.get("coverage") or 0.0)
    counts = profile.get("counts") or {}
    summary = (
        f"{wall:.3f}s wall · {coverage:.1f}% phase coverage · "
        f"{counts.get('commits', 0)} commits · "
        f"{counts.get('cell_runs', 0)} cell runs"
    )
    return (
        f'<p class="meta">{escape(summary)}</p>'
        '<div class="card"><table>'
        '<tr><th>phase</th><th class="num">seconds</th>'
        '<th class="num">share</th></tr>'
        f"{''.join(phase_rows)}"
        '<tr><th>attribution (busy)</th><th class="num">seconds</th><th></th></tr>'
        f"{''.join(attr_rows)}"
        "</table></div>"
    )


def _chaos_section(chaos: Mapping[str, Any]) -> str:
    rows = []
    for cell in chaos.get("cells", []):
        audit = cell.get("trace_audit")
        clean = (
            cell["completed"]
            and cell["violations"] == 0
            and not (audit and audit.get("mismatches"))
        )
        if clean:
            status = '<td class="ok">✓ clean</td>'
        elif cell["oom_killed"]:
            status = '<td class="bad">✗ OOM</td>'
        else:
            status = '<td class="bad">✗ DIRTY</td>'
        counters = cell["counters"]
        rows.append(
            f"<tr><td>{escape(cell['policy'])} × {escape(cell['workload'])}</td>"
            f"{status}"
            f'<td class="num">{counters.get("faults.copy_failures_injected", 0):,}</td>'
            f'<td class="num">{counters.get("migrate.retries", 0):,}</td>'
            f'<td class="num">{counters.get("migrate.retry_succeeded", 0):,}</td>'
            f'<td class="num">{cell["violations"]:,}</td></tr>'
        )
    verdict = (
        '<p class="meta ok">✓ all cells clean</p>'
        if chaos.get("all_clean")
        else '<p class="meta bad">✗ failures present</p>'
    )
    return (
        f'{verdict}<div class="card"><table>'
        '<tr><th>cell</th><th>status</th><th class="num">copy faults</th>'
        '<th class="num">retries</th><th class="num">healed</th>'
        '<th class="num">violations</th></tr>'
        f"{''.join(rows)}</table></div>"
    )


def build_dashboard(
    snapshot: Mapping[str, Any],
    result: "RunResult | None" = None,
    *,
    sweep: Mapping[str, Any] | None = None,
    chaos: Mapping[str, Any] | None = None,
    title: str = "MULTI-CLOCK run report",
) -> str:
    """Render the dashboard; returns a complete HTML document string."""
    meta = snapshot["meta"]
    elapsed_s = meta["now_ns"] / _NANOS
    header_meta = (
        f"{elapsed_s:.3f}s virtual time · {meta['samples']} gauge samples "
        f"every {meta['sample_interval_s']}s · {meta['window_seconds']}s windows"
    )
    sections = [
        "<header>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="meta">{escape(header_meta)}</p>',
        "</header>",
    ]
    if result is not None:
        sections.append(_tiles(result))
    sections.append("<h2>Memory gauges</h2>")
    sections.append(_gauge_section(snapshot))
    sections.append("<h2>Reclaim activity</h2>")
    sections.append(_event_section(snapshot))
    sections.append("<h2>Latency distributions</h2>")
    sections.append(_hist_section(snapshot))
    sections.append("<h2>Counters</h2>")
    sections.append(_counters_section(snapshot))
    if sweep is not None:
        sections.append("<h2>Sweep report</h2>")
        sections.append(_sweep_section(sweep))
        if sweep.get("profile"):
            sections.append("<h2>Sweep wall-time profile</h2>")
            sections.append(_profile_section(sweep["profile"]))
    if chaos is not None:
        sections.append("<h2>Chaos report</h2>")
        sections.append(_chaos_section(chaos))
    sections.append("<footer>generated by repro report --html</footer>")
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        '</head>\n<body class="viz-root">\n<main>\n'
        f"{body}\n"
        "</main>\n</body>\n</html>\n"
    )
