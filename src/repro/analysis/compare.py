"""Cross-policy comparisons: the normalization used by Figures 5-7 and 10.

The paper reports throughput (YCSB) and execution time (GAPBS) normalized
to static tiering.  These helpers take :class:`~repro.run.RunResult`
collections keyed by policy and produce the normalized series plus
human-readable renderings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.run import RunResult

__all__ = ["PolicyComparison", "normalize_throughput", "normalize_exec_time"]


@dataclass(frozen=True)
class PolicyComparison:
    """Normalized metric per policy for one workload."""

    workload: str
    metric: str
    baseline: str
    values: dict[str, float]

    def best(self) -> str:
        """Policy with the highest normalized value."""
        return max(self.values, key=self.values.get)

    def gain_over(self, policy: str, other: str) -> float:
        """Relative advantage of ``policy`` over ``other`` (e.g. 0.2 = +20%)."""
        return self.values[policy] / self.values[other] - 1.0

    def render(self) -> str:
        width = 40
        peak = max(self.values.values())
        lines = [f"{self.workload} — {self.metric} (normalized to {self.baseline})"]
        for policy, value in sorted(self.values.items(), key=lambda kv: -kv[1]):
            bar = "#" * max(1, int(width * value / peak))
            lines.append(f"  {policy:>16} {value:6.3f} {bar}")
        return "\n".join(lines)


def normalize_throughput(
    results: dict[str, RunResult], baseline: str = "static"
) -> PolicyComparison:
    """Fig 5/7a style: ops/sec relative to the baseline (higher = better)."""
    base = results[baseline].throughput_ops
    if base <= 0:
        raise ValueError(f"baseline {baseline!r} had zero throughput")
    values = {policy: result.throughput_ops / base for policy, result in results.items()}
    workload = results[baseline].workload
    return PolicyComparison(workload, "throughput", baseline, values)


def normalize_exec_time(
    results: dict[str, RunResult], baseline: str = "static"
) -> PolicyComparison:
    """Fig 6/7b style: execution time relative to the baseline.

    Values are reported as *normalized execution time* (lower = better),
    matching the paper's Y axis.
    """
    base = results[baseline].elapsed_ns
    if base <= 0:
        raise ValueError(f"baseline {baseline!r} had zero elapsed time")
    values = {policy: result.elapsed_ns / base for policy, result in results.items()}
    workload = results[baseline].workload
    return PolicyComparison(workload, "exec_time", baseline, values)
