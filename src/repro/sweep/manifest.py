"""Resumable checkpoint file for sweep runs.

The manifest records, per cell id, whether the cell completed (with its
payload) or exhausted its retries (with the last error).  It is written
atomically after every cell reaches a final state, so a sweep killed at
any point can be resumed with ``--resume``: completed cells are loaded
from the manifest and skipped, failed and never-started cells run
again.

The manifest carries the spec's fingerprint; resuming against a grid
that no longer matches is an operator error, reported as a one-line
``ValueError`` rather than silently merging results from two different
experiments.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.sweep.spec import SweepSpec

__all__ = ["Manifest"]

_VERSION = 1


class Manifest:
    """Checkpoint book for one sweep run; no-op when ``path`` is None."""

    def __init__(self, path: str | None, spec: SweepSpec,
                 cells: dict[str, dict[str, Any]] | None = None) -> None:
        self.path = path
        self.spec_name = spec.name
        self.fingerprint = spec.fingerprint()
        self.cells: dict[str, dict[str, Any]] = cells or {}

    @classmethod
    def load(cls, path: str | None, spec: SweepSpec) -> "Manifest":
        """Load a manifest for resuming; an absent file is an empty book."""
        if path is None or not os.path.exists(path):
            return cls(path, spec)
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        fingerprint = data.get("fingerprint", "")
        if fingerprint != spec.fingerprint():
            raise ValueError(
                f"manifest {path} was written for a different sweep "
                f"(fingerprint {fingerprint or '<missing>'}, expected "
                f"{spec.fingerprint()}); delete it or drop --resume"
            )
        return cls(path, spec, dict(data.get("cells", {})))

    @property
    def completed(self) -> dict[str, Any]:
        """Payloads of cells already done — the ones a resume skips."""
        return {
            cell_id: entry.get("payload")
            for cell_id, entry in self.cells.items()
            if entry.get("status") == "done"
        }

    def record_done(self, cell_id: str, attempts: int, payload: Any) -> None:
        self.cells[cell_id] = {
            "status": "done",
            "attempts": attempts,
            "payload": payload,
        }
        self._flush()

    def record_failed(self, cell_id: str, attempts: int, error: str) -> None:
        self.cells[cell_id] = {
            "status": "failed",
            "attempts": attempts,
            "error": error,
        }
        self._flush()

    def _flush(self) -> None:
        if self.path is None:
            return
        blob = {
            "version": _VERSION,
            "spec": self.spec_name,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(blob, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)
