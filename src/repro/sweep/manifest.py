"""Resumable checkpoint file and content-addressed result cache.

Two persistence layers with different keys and lifetimes:

* :class:`Manifest` — the resumable checkpoint for *one* sweep run.  It
  records, per cell id, whether the cell completed (with its payload)
  or exhausted its retries (with the last error), written atomically
  after every cell reaches a final state.  A sweep killed at any point
  can be resumed with ``--resume``: completed cells are loaded from the
  manifest and skipped, failed and never-started cells run again.  The
  manifest carries the spec's fingerprint; resuming against a grid that
  no longer matches is an operator error, reported as a one-line
  ``ValueError`` rather than silently merging results from two
  different experiments.

* :class:`ResultCache` — a cross-run memo keyed by each cell's *content
  fingerprint* (:func:`~repro.sweep.spec.cell_fingerprint`: a digest of
  runner + params, independent of grid name or cell id).  A re-run of
  an unchanged cell returns its cached payload without spawning any
  work, which is what makes incremental re-sweeps of large grids nearly
  free.  Entries are written atomically by the *parent* after a cell's
  payload is harvested — a worker dying mid-cell (crash, OOM kill,
  timeout) can never leave a partial entry — and a corrupted or
  truncated entry reads as a miss, never an abort.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.sweep.spec import SweepSpec

__all__ = ["Manifest", "ResultCache", "atomic_write_json"]

_VERSION = 1


def atomic_write_json(path: str, blob: Any, *, indent: int | None = None) -> None:
    """Write ``blob`` as sorted JSON via tmp-file + ``os.replace``.

    This is the one write protocol every control-plane sidecar uses —
    manifest, result cache, and the live status board — so a concurrent
    reader (``--resume``, ``repro top``) always sees a complete previous
    or next snapshot, never a torn one.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(blob, fh, indent=indent, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


class Manifest:
    """Checkpoint book for one sweep run; no-op when ``path`` is None."""

    def __init__(self, path: str | None, spec: SweepSpec,
                 cells: dict[str, dict[str, Any]] | None = None) -> None:
        self.path = path
        self.spec_name = spec.name
        self.fingerprint = spec.fingerprint()
        self.cells: dict[str, dict[str, Any]] = cells or {}

    @classmethod
    def load(cls, path: str | None, spec: SweepSpec) -> "Manifest":
        """Load a manifest for resuming; an absent file is an empty book."""
        if path is None or not os.path.exists(path):
            return cls(path, spec)
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        fingerprint = data.get("fingerprint", "")
        if fingerprint != spec.fingerprint():
            raise ValueError(
                f"manifest {path} was written for a different sweep "
                f"(fingerprint {fingerprint or '<missing>'}, expected "
                f"{spec.fingerprint()}); delete it or drop --resume"
            )
        return cls(path, spec, dict(data.get("cells", {})))

    @property
    def completed(self) -> dict[str, Any]:
        """Payloads of cells already done — the ones a resume skips."""
        return {
            cell_id: entry.get("payload")
            for cell_id, entry in self.cells.items()
            if entry.get("status") == "done"
        }

    def record_done(self, cell_id: str, attempts: int, payload: Any) -> None:
        self.cells[cell_id] = {
            "status": "done",
            "attempts": attempts,
            "payload": payload,
        }
        self._flush()

    def record_pending(self, cell_id: str, attempts: int) -> None:
        """Mark a cell as in flight but unfinished.

        Written when a sweep is interrupted (signal, lost host) with the
        cell still leased: the manifest then records honestly that the
        cell was started — and how many attempts it has consumed — while
        leaving it eligible to run again on ``--resume`` (``completed``
        only reports ``done`` cells).
        """
        self.cells[cell_id] = {"status": "pending", "attempts": attempts}
        self._flush()

    def record_failed(self, cell_id: str, attempts: int, error: str) -> None:
        self.cells[cell_id] = {
            "status": "failed",
            "attempts": attempts,
            "error": error,
        }
        self._flush()

    def _flush(self) -> None:
        if self.path is None:
            return
        blob = {
            "version": _VERSION,
            "spec": self.spec_name,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }
        atomic_write_json(self.path, blob, indent=2)


class ResultCache:
    """Content-addressed payload store: one JSON file per cell fingerprint.

    Only *successful* payloads are stored — failures always re-run.
    ``load`` validates that the entry parses and that its recorded
    fingerprint matches the requested key, so a corrupted, truncated or
    hand-edited file degrades to a cache miss (the cell runs live)
    instead of poisoning a sweep.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> dict[str, Any] | None:
        """The cached entry for ``key``, or None on miss/corruption."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("fingerprint") != key:
            return None
        if "payload" not in entry:
            return None
        return entry

    def store(
        self, key: str, *, cell_id: str, attempts: int, payload: Any
    ) -> None:
        """Atomically persist a completed cell's payload under ``key``."""
        entry = {
            "fingerprint": key,
            "cell_id": cell_id,
            "attempts": attempts,
            "payload": payload,
        }
        atomic_write_json(self._path(key), entry)
