"""Builtin cell runners: how one sweep cell executes inside a worker.

Two families:

* **Declarative** (``run-workload``) — params are plain JSON (workload
  kind + sizes, config sizes), so the cell is portable across processes
  and restarts; this is what ``repro sweep`` emits and what makes
  ``--resume`` and the result cache meaningful.  The builders here are
  the single source of truth the CLI also uses for its own
  ``--workload`` flags.
* **Factory** (``policy-factory``, ``chaos-cell``) — params carry live
  objects (workload factories, :class:`SimulationConfig`,
  :class:`FaultPlan`) by fork inheritance; used by
  ``run_policies(workers=N)`` and ``run_chaos(workers=N)`` so their
  public signatures stay unchanged.

``run-workload`` cells share read-only workload construction: the
numeric access stream for each distinct workload spec is generated once
— in the parent via the runner's prewarm hook, so forked workers
inherit it copy-on-write — and replayed per cell through
:meth:`~repro.machine.Machine.touch_batch_array`.  Replay is
bit-identical to driving ``accesses()`` (the stream *is* the definition
of the workload), so sharing changes wall time, never results.

``flaky`` exists for the test suite and the CI smoke: a deterministic
marker-file-gated runner that crashes or hangs until its marker exists,
which is how "a worker died and was retried" is exercised without
randomness.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable

from repro.run import run_numeric_stream, run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.sweep.spec import register_runner
from repro.workloads.base import Workload
from repro.workloads.synthetic import (
    SequentialScanWorkload,
    ShiftingHotSetWorkload,
    UniformWorkload,
    ZipfWorkload,
)

__all__ = ["WORKLOAD_KINDS", "build_workload", "build_config", "shared_stream"]

#: The declarative workload vocabulary, shared with the CLI's
#: ``--workload`` choices.  Order is the canonical presentation order.
WORKLOAD_KINDS: dict[str, Callable[..., Workload]] = {
    "zipf": ZipfWorkload,
    "uniform": UniformWorkload,
    "seqscan": SequentialScanWorkload,
    "shifting-hotset": ShiftingHotSetWorkload,
}


def build_workload(spec: dict[str, Any]) -> Workload:
    """Instantiate a workload from a JSON description.

    ``spec`` keys: ``kind`` (one of :data:`WORKLOAD_KINDS`), ``pages``,
    ``ops``, ``seed``, ``write_ratio``.
    """
    kind = spec.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise ValueError(
            f"unknown workload kind {kind!r}; choose from {', '.join(WORKLOAD_KINDS)}"
        )
    kwargs: dict[str, Any] = {
        "seed": spec.get("seed", 42),
        "write_ratio": spec.get("write_ratio", 0.0),
    }
    ops = spec["ops"]
    if kind == "shifting-hotset":
        kwargs["phase_ops"] = spec.get("phase_ops", max(1, ops // 4))
    return WORKLOAD_KINDS[kind](spec["pages"], ops, **kwargs)


def build_config(spec: dict[str, Any]) -> SimulationConfig:
    """Build a machine config from a JSON description (CLI sizing keys)."""
    interval = spec.get("interval", 0.005)
    return SimulationConfig(
        dram_pages=(spec["dram_pages"],),
        pm_pages=(spec["pm_pages"],),
        swap_pages=spec.get("swap_pages", 1 << 28),
        daemons=DaemonConfig(
            kpromoted_interval_s=interval,
            kswapd_interval_s=interval / 2,
            hint_scan_interval_s=interval,
        ),
        seed=spec.get("seed", 42),
    )


#: Materialised numeric streams keyed by workload-spec JSON, shared
#: read-only across every cell that names the same workload.  Populated
#: in the parent by the prewarm hook (forked workers inherit it) or on
#: first use inside a persistent worker; bounded so thousand-workload
#: grids cannot grow it without limit.
_STREAM_CACHE: dict[str, list] = {}
_STREAM_CACHE_MAX = 64


def shared_stream(workload_spec: dict[str, Any]) -> list:
    """The (vpages, writes) batch list for one declarative workload spec,
    generated at most once per process."""
    key = json.dumps(workload_spec, sort_keys=True)
    stream = _STREAM_CACHE.get(key)
    if stream is None:
        stream = list(build_workload(workload_spec).numeric_batches())
        while len(_STREAM_CACHE) >= _STREAM_CACHE_MAX:
            _STREAM_CACHE.pop(next(iter(_STREAM_CACHE)))
        _STREAM_CACHE[key] = stream
    return stream


def _prewarm_run_workload(cells: list) -> None:
    """Parent-side hook: build each distinct workload stream once, before
    the pool forks, so all workers share one copy-on-write stream."""
    for cell in cells:
        try:
            shared_stream(cell.params["workload"])
        except Exception:  # noqa: BLE001 - a bad spec fails in its own cell
            continue


@register_runner("run-workload", prewarm=_prewarm_run_workload)
def run_workload_cell(params: dict[str, Any]) -> dict[str, Any]:
    """Declarative cell: fresh machine, one workload, one policy.

    The access stream is replayed from the shared numeric-stream cache
    (bit-identical to driving ``workload.accesses()`` — the perf suite
    pins it), so N cells over one workload pay for its construction
    once."""
    config = build_config(params["config"])
    workload = build_workload(params["workload"])
    stream = shared_stream(params["workload"])
    result = run_numeric_stream(workload, config, stream, policy=params["policy"])
    return result.to_dict()


@register_runner("colo")
def colo_cell(params: dict[str, Any]) -> dict[str, Any]:
    """Declarative colocation cell: N KV tenants, memcg armed.

    Params mirror :func:`repro.experiments.colo.run_colo` keywords
    (``n_tenants``, ``records_per_tenant``, ``ops_per_tenant``,
    ``policy``, ``limits``, ``seed``, sizing overrides) — all plain
    JSON, so colo cells cache and resume like ``run-workload`` cells.
    The payload is the per-tenant row set, not the live machine."""
    from repro.experiments.colo import run_colo

    allowed = (
        "n_tenants", "records_per_tenant", "ops_per_tenant", "policy",
        "dram_pages", "pm_pages", "swap_pages", "limits", "interval_s",
        "seed",
    )
    kwargs = {k: params[k] for k in allowed if k in params}
    result = run_colo(**kwargs)
    return {
        "policy": result["policy"],
        "oom_kills": result["oom_kills"],
        "tenants": [
            {
                "name": row.name,
                "alpha": row.alpha,
                "limit_pages": row.limit_pages,
                "footprint_pages": row.footprint_pages,
                "ops_completed": row.ops_completed,
                "killed": row.killed,
                "p50_ns": row.p50_ns,
                "p99_ns": row.p99_ns,
                "rss_pages": row.rss_pages,
                "rss_by_node": {str(k): v for k, v in row.rss_by_node.items()},
                "swap_pages": row.swap_pages,
            }
            for row in result["rows"]
        ],
    }


@register_runner("policy-factory")
def policy_factory_cell(params: dict[str, Any]) -> dict[str, Any]:
    """Factory cell for ``run_policies(workers=N)``: params carry the
    live workload factory and config across the fork."""
    result = run_workload(
        params["factory"](), params["config"], policy=params["policy"]
    )
    return result.to_dict()


@register_runner("chaos-cell")
def chaos_cell(params: dict[str, Any]) -> dict[str, Any]:
    """One chaos-matrix cell, exactly as the sequential loop runs it."""
    from repro.faults.chaos import _run_cell

    cell = _run_cell(
        params["policy"],
        params["workload_name"],
        params["build"](),
        params["plan"],
        params["config"],
        params["check_interval_s"],
        params.get("trace_capacity"),
    )
    return cell.to_dict()


@register_runner("flaky")
def flaky_cell(params: dict[str, Any]) -> Any:
    """Deterministic misbehaviour for tests and the CI smoke.

    Until ``marker`` exists the cell fails in the requested ``mode``
    (``exit`` hard-exits past any exception handling, ``hang`` sleeps
    until the pool's timeout kills it), creating the marker first so the
    *next* attempt succeeds.  With no marker it fails every attempt.

    Two modes serve the distributed layer: ``sleep`` succeeds after a
    short nap (a cell with measurable width, so something can be killed
    *mid-run*), and ``kill-agent`` SIGKILLs the **sweep agent** this
    worker belongs to — the deterministic stand-in for a remote host
    dying.  ``kill-agent`` only fires inside an agent process tree
    (guarded by the ``REPRO_SWEEP_AGENT`` env the agent sets before
    forking workers); under the plain local pool it simply succeeds, so
    a degraded-to-local sweep completes instead of shooting its driver.
    """
    marker = params.get("marker")
    mode = params.get("mode", "exit")
    if mode == "sleep":
        time.sleep(params.get("sleep_s", 0.2))
        return params.get("payload", "slept")
    if mode == "kill-agent":
        import signal

        if os.environ.get("REPRO_SWEEP_AGENT") != "1":
            return params.get("payload", "recovered")
        if marker is None or not os.path.exists(marker):
            if marker is not None:
                with open(marker, "w", encoding="utf-8"):
                    pass
            os.kill(os.getppid(), signal.SIGKILL)
            time.sleep(60.0)  # die with the agent, never return a result
        return params.get("payload", "recovered")
    if marker is not None and os.path.exists(marker):
        return params.get("payload", "recovered")
    if marker is not None:
        with open(marker, "w", encoding="utf-8"):
            pass
    if mode == "hang":
        time.sleep(params.get("hang_s", 3600.0))
        return "woke before the timeout fired"
    os._exit(params.get("exit_code", 17))
