"""Distributed sweep fan-out: host agents, leases, heartbeats, re-dispatch.

``run_remote_sweep`` shards a declarative cell grid across a set of
**host agents** and treats every host as unreliable.  Each agent is a
``repro sweep-agent`` process — reached over a transport (a local
subprocess for the loopback kind, an ssh subprocess for remote hosts) —
that runs its own persistent worker pool and speaks a newline-delimited
JSON protocol of :mod:`~repro.sweep.wire` envelopes:

========== =========== ====================================================
direction  kind        body
========== =========== ====================================================
agent →    ``hello``   ``{host, pid, workers}`` — first line after start
driver →   ``spec``    the whole grid (fingerprinted) + ``heartbeat_s``
agent →    ``spec-ack``  ``{fingerprint}`` — must match the driver's
driver →   ``lease``   ``{lease, cell}`` — run one cell
agent →    ``heartbeat`` ``{busy: [lease ids], done}`` — every interval
agent →    ``result``  ``{lease, cell, ok, payload | error}``
agent →    ``journal`` ``{events}`` — buffered spans, journal mode only
driver →   ``cancel``  ``{lease}`` — kill that lease's worker
driver →   ``shutdown``  drain and exit
========== =========== ====================================================

Fault model (driver side):

* A host that misses three heartbeat intervals, EOFs its transport, or
  sends an undecodable line is **lost**: its leased cells are requeued
  (no attempt charged — the host failed, not the cell) and the host is
  reconnected with exponential backoff plus deterministic jitter, up to
  ``reconnect_attempts`` times, after which it is **dead**.
* A leased cell past ``timeout_s`` is cancelled and charged an attempt,
  exactly like the local pool's timeout.
* A leased cell running longer than ``straggler_factor`` × the median
  committed cell time is *also* dispatched to a second host; the first
  result commits, the sibling lease is cancelled, and a late duplicate
  is discarded deterministically (results commit **at most once** per
  cell id).
* If every host is dead, the sweep **degrades**: the remaining cells
  finish on the local pool rather than aborting, and the per-host
  outcomes record what happened.

Merged results stay byte-identical to a sequential sweep: outcomes are
keyed by cell id, reported in spec order, and payloads round-trip
through JSON on the agent exactly as they do in a local worker.  The
manifest-resume > result-cache > live precedence is applied *before*
any host is contacted, by the same pass the local pool uses.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from statistics import median
from typing import TYPE_CHECKING, Any, Callable

from repro.sweep import pool as _pool
from repro.sweep.manifest import Manifest, ResultCache
from repro.sweep.pool import (
    CellOutcome,
    SweepInterrupted,
    SweepResult,
    _default_obs,
    _kill,
    _prepare,
    _run_pool,
    _SignalGuard,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports sweep)
    from repro.obs import SweepObserver
from repro.sweep.spec import SweepCell, SweepSpec, cell_fingerprint
from repro.sweep.wire import (
    WireError,
    decode_envelope,
    decode_spec,
    encode_envelope,
    encode_spec,
)

__all__ = [
    "HostSpec",
    "HostOutcome",
    "parse_hosts",
    "run_remote_sweep",
    "agent_main",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_STRAGGLER_FACTOR",
]

DEFAULT_HEARTBEAT_S = 5.0
DEFAULT_STRAGGLER_FACTOR = 4.0
#: Heartbeat intervals a host may miss before it is declared lost.
_MISSED_HEARTBEATS = 3
_RECONNECT_BASE_S = 0.25
_RECONNECT_CAP_S = 5.0


# --------------------------------------------------------------------------
# Host descriptions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class HostSpec:
    """One entry of ``--hosts``: where an agent runs and how wide it is."""

    name: str  # unique display name (``loopback#1``, ``user@h1``)
    kind: str  # "loopback" | "ssh"
    target: str  # ssh destination; "" for loopback
    workers: int  # agent-side pool width


def parse_hosts(hosts: "str | list[str] | tuple[HostSpec, ...]",
                *, default_workers: int = 1) -> tuple[HostSpec, ...]:
    """Parse a ``--hosts`` value into :class:`HostSpec` entries.

    Each comma-separated entry is ``loopback`` (an agent subprocess on
    this machine — the CI/test transport) or ``[user@]host`` (an agent
    over ssh), optionally suffixed ``:N`` for the agent's worker count.
    Garbage entries — empty strings, a non-integer worker suffix, or
    shell metacharacters in an ssh target — are operator errors reported
    as one-line ``ValueError``\\ s.
    """
    if isinstance(hosts, tuple) and all(isinstance(h, HostSpec) for h in hosts):
        return hosts
    entries = (
        [e.strip() for e in hosts.split(",")] if isinstance(hosts, str)
        else [str(e).strip() for e in hosts]
    )
    if not entries or all(not e for e in entries):
        raise ValueError("--hosts is empty; give loopback or [user@]host entries")
    specs: list[HostSpec] = []
    counts: dict[str, int] = {}
    for entry in entries:
        if not entry:
            raise ValueError(
                f"--hosts has an empty entry in {','.join(entries)!r}"
            )
        target, _, suffix = entry.partition(":")
        workers = default_workers
        if suffix:
            try:
                workers = int(suffix)
            except ValueError:
                raise ValueError(
                    f"bad --hosts entry {entry!r}: worker suffix {suffix!r} "
                    f"is not an integer"
                ) from None
            if workers < 1:
                raise ValueError(
                    f"bad --hosts entry {entry!r}: worker count must be >= 1"
                )
        if target == "loopback":
            kind = "loopback"
        else:
            kind = "ssh"
            if not target or any(c in target for c in " \t;|&$`'\"(){}<>\\"):
                raise ValueError(
                    f"bad --hosts entry {entry!r}: {target!r} is not a "
                    f"plausible ssh destination"
                )
        n = counts.get(target, 0)
        counts[target] = n + 1
        name = target if kind == "ssh" and n == 0 else f"{target}#{n}"
        specs.append(HostSpec(name=name, kind=kind, target=target, workers=workers))
    return tuple(specs)


@dataclass
class HostOutcome:
    """What one host contributed to (and suffered during) a sweep."""

    host: str
    state: str  # "ok" | "dead" | "unused"
    done: int = 0
    failed: int = 0
    reconnects: int = 0
    duplicates_discarded: int = 0
    error: str = ""
    #: Heartbeat round-trip health, for the ``<out>.hosts.json`` sidecar:
    #: how many beats arrived, the widest observed gap between two, and
    #: how stale the last one was when the sweep finished (None if the
    #: host never beat at all).
    heartbeats: int = 0
    max_heartbeat_gap_s: float = 0.0
    last_heartbeat_age_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "state": self.state,
            "done": self.done,
            "failed": self.failed,
            "reconnects": self.reconnects,
            "duplicates_discarded": self.duplicates_discarded,
            "error": self.error,
            "heartbeats": self.heartbeats,
            "max_heartbeat_gap_s": self.max_heartbeat_gap_s,
            "last_heartbeat_age_s": self.last_heartbeat_age_s,
        }


# --------------------------------------------------------------------------
# Transports: how the driver reaches an agent
# --------------------------------------------------------------------------


class _AgentTransport:
    """A live agent subprocess with line-oriented stdin/stdout.

    The loopback kind starts ``repro sweep-agent`` on this machine with
    the driver's interpreter and PYTHONPATH — the in-machine stand-in
    used by tests and CI.  The ssh kind runs the same command on a
    remote host through ``ssh -o BatchMode=yes`` (key-based auth only;
    an agent must never hang on a password prompt).
    """

    def __init__(self, host: HostSpec) -> None:
        self.host = host
        if host.kind == "loopback":
            repro_root = os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))
            )
            src_dir = os.path.dirname(repro_root)
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH")) if p
            )
            argv = [
                sys.executable, "-m", "repro", "sweep-agent",
                "--workers", str(host.workers),
            ]
        else:
            argv = [
                "ssh", "-o", "BatchMode=yes", "-o", "ConnectTimeout=10",
                host.target,
                f"python3 -m repro sweep-agent --workers {host.workers}",
            ]
            env = None
        # Agent chatter (tracebacks, ssh banners) goes to our stderr;
        # stdout is the protocol channel and must stay clean.
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )

    @property
    def pid(self) -> int:
        return self.proc.pid

    def send_line(self, line: str) -> None:
        assert self.proc.stdin is not None
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def alive(self) -> bool:
        return self.proc.poll() is None

    def close(self, grace_s: float = 0.5) -> None:
        # Close stdin only.  stdout belongs to the pump thread: closing
        # it here would block on the buffered reader's lock while that
        # thread sits in readline() — and a SIGKILLed agent's orphaned
        # worker can hold the pipe's write end open long after the agent
        # is gone.  The daemon pump thread drops the stream when its
        # read finally returns (or the driver exits).
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
        except OSError:
            pass
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(grace_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                try:
                    self.proc.wait(5.0)
                except subprocess.TimeoutExpired:
                    pass


# --------------------------------------------------------------------------
# Driver-side scheduler
# --------------------------------------------------------------------------


@dataclass
class _Lease:
    id: str
    cell: SweepCell
    attempt: int
    host: "_Host"
    started: float
    sid: str | None = None  # open lease span in the journal


@dataclass
class _Host:
    spec: HostSpec
    state: str = "connecting"  # connecting | ready | lost | dead
    transport: _AgentTransport | None = None
    capacity: int = 1
    last_seen: float = 0.0
    last_beat: float = 0.0  # monotonic time of the last heartbeat *kind*
    connect_deadline: float = 0.0
    backoff_until: float = 0.0
    reconnects_used: int = 0
    leases: dict[str, _Lease] = field(default_factory=dict)
    connect_sid: str | None = None  # open ssh.connect span
    reconnect_sid: str | None = None  # open reconnect (backoff) span
    outcome: HostOutcome = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.outcome = HostOutcome(host=self.spec.name, state="unused")


def _jitter(host: str, attempt: int) -> float:
    """Deterministic jitter in [0.75, 1.25): reconnects across a fleet
    spread out, and a re-run spreads them out the same way."""
    digest = hashlib.sha256(f"{host}:{attempt}".encode("utf-8")).digest()
    return 0.75 + (digest[0] / 255.0) * 0.5


class _RemoteScheduler:
    """Drives a grid across unreliable hosts; see the module docstring."""

    def __init__(
        self,
        spec: SweepSpec,
        hosts: tuple[HostSpec, ...],
        *,
        outcomes: dict[str, CellOutcome],
        pending: deque[tuple[SweepCell, int]],
        book: Manifest,
        cache: ResultCache | None,
        timeout_s: float | None,
        max_attempts: int,
        heartbeat_s: float,
        straggler_factor: float | None,
        connect_timeout_s: float,
        reconnect_attempts: int,
        note: Callable[[str], None] | None = None,
        obs: "SweepObserver | None" = None,
        guard: _SignalGuard | None = None,
    ) -> None:
        self.spec = spec
        self.outcomes = outcomes
        self.pending = pending
        self.book = book
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.heartbeat_s = heartbeat_s
        self.straggler_factor = straggler_factor
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.obs = obs if obs is not None else _default_obs(note)
        self.guard = guard
        self.total = len(spec.cells)
        self.hosts = [_Host(spec=h) for h in hosts]
        self.active: dict[str, _Lease] = {}  # lease id -> lease
        self.durations: list[float] = []  # committed cell wall times
        self.spawned_agents = 0
        self.cache_hits = 0  # cells settled from the result cache mid-run
        # Entries carry the transport they were read from: after a
        # reconnect, lines (and the EOF marker) from the *previous*
        # transport's reader thread must not poison the new connection.
        self.inbox: "queue.Queue[tuple[_Host, _AgentTransport, str | None]]" = (
            queue.Queue()
        )
        self._lease_seq = 0
        # With a journal armed, the spec envelope asks every agent to
        # buffer its own spans and ship them back as `journal` lines;
        # journal-off sweeps send exactly the pre-observability bytes.
        extras: dict[str, Any] = {"heartbeat_s": heartbeat_s}
        if self.obs.journal is not None:
            extras["journal"] = True
            extras["trace"] = self.obs.trace_id
        self._spec_line = encode_spec(spec, **extras)

    # -- host lifecycle ----------------------------------------------------

    def _connect(self, host: _Host) -> None:
        host.connect_sid = self.obs.begin(
            "ssh.connect", host=host.spec.name, kind=host.spec.kind,
            attempt=host.reconnects_used,
        )
        try:
            host.transport = _AgentTransport(host.spec)
        except OSError as exc:  # ssh/python binary missing, fork failure
            host.transport = None
            self._lose_host(host, f"cannot start agent: {exc}")
            return
        self.spawned_agents += 1
        host.state = "connecting"
        host.last_seen = time.monotonic()
        host.connect_deadline = host.last_seen + self.connect_timeout_s
        threading.Thread(
            target=self._pump, args=(host, host.transport), daemon=True,
            name=f"sweep-reader-{host.spec.name}",
        ).start()

    def _pump(self, host: _Host, transport: _AgentTransport) -> None:
        stream = transport.proc.stdout
        assert stream is not None
        try:
            for line in stream:
                self.inbox.put((host, transport, line.rstrip("\n")))
        except (OSError, ValueError):
            pass
        self.inbox.put((host, transport, None))

    def _lose_host(self, host: _Host, reason: str) -> None:
        """Requeue the host's leases and schedule a reconnect (or declare
        it dead once reconnects are exhausted)."""
        if host.state == "dead":
            return
        self.obs.end(host.connect_sid, ok=False, reason=reason)
        host.connect_sid = None
        if host.transport is not None:
            host.transport.close()
            host.transport = None
        for lease in list(host.leases.values()):
            host.leases.pop(lease.id, None)
            self.active.pop(lease.id, None)
            self.obs.end(lease.sid, outcome="host-lost")
            lease.sid = None
            if lease.cell.id in self.outcomes or self._has_sibling(lease):
                continue
            # The host failed, not the cell: requeue without charging an
            # attempt, at the front so redispatch beats untried work.
            self.pending.appendleft((lease.cell, lease.attempt))
            self.obs.emit("cell.redispatch", cell=lease.cell.id,
                          host=host.spec.name)
        if host.reconnects_used >= self.reconnect_attempts:
            self.obs.end(host.reconnect_sid, ok=False, reason=reason)
            host.reconnect_sid = None
            host.state = "dead"
            host.outcome.state = "dead"
            host.outcome.error = reason
            self.obs.emit("host.dead", host=host.spec.name, reason=reason)
            return
        self.obs.end(host.reconnect_sid, ok=False, reason=reason)
        host.reconnects_used += 1
        host.outcome.reconnects += 1
        delay = min(
            _RECONNECT_CAP_S,
            _RECONNECT_BASE_S * (2 ** (host.reconnects_used - 1)),
        ) * _jitter(host.spec.name, host.reconnects_used)
        host.state = "lost"
        host.backoff_until = time.monotonic() + delay
        self.obs.emit("host.lost", host=host.spec.name, reason=reason,
                      attempt=host.reconnects_used,
                      limit=self.reconnect_attempts, delay_s=delay)
        host.reconnect_sid = self.obs.begin(
            "reconnect", host=host.spec.name,
            attempt=host.reconnects_used, delay_s=round(delay, 6),
        )

    def _has_sibling(self, lease: _Lease) -> bool:
        return any(
            other.cell.id == lease.cell.id and other.id != lease.id
            for other in self.active.values()
        )

    # -- protocol handling -------------------------------------------------

    def _on_line(self, host: _Host, line: str) -> None:
        host.last_seen = time.monotonic()
        try:
            kind, body = decode_envelope(line)
        except WireError as exc:
            self._lose_host(host, f"protocol error: {exc}")
            return
        if kind == "hello":
            workers = body.get("workers")
            host.capacity = workers if isinstance(workers, int) and workers > 0 else 1
            assert host.transport is not None
            try:
                host.transport.send_line(self._spec_line)
            except OSError as exc:
                self._lose_host(host, f"send failed: {exc}")
        elif kind == "spec-ack":
            if body.get("fingerprint") != self.spec.fingerprint():
                self._lose_host(host, "spec fingerprint mismatch on ack")
                return
            host.state = "ready"
            if host.outcome.state == "unused":
                host.outcome.state = "ok"
            self.obs.end(host.connect_sid, ok=True, workers=host.capacity)
            host.connect_sid = None
            self.obs.end(host.reconnect_sid, ok=True)
            host.reconnect_sid = None
            self.obs.emit("host.ready", host=host.spec.name,
                          workers=host.capacity)
        elif kind == "heartbeat":
            now = time.monotonic()
            gap = now - host.last_beat if host.last_beat else 0.0
            host.last_beat = now
            host.outcome.heartbeats += 1
            if gap > host.outcome.max_heartbeat_gap_s:
                host.outcome.max_heartbeat_gap_s = round(gap, 3)
            busy = body.get("busy")
            self.obs.point(
                "heartbeat", host=host.spec.name, gap_s=round(gap, 6),
                busy=len(busy) if isinstance(busy, list) else 0,
                done=body.get("done", 0),
            )
        elif kind == "result":
            self._on_result(host, body)
        elif kind == "journal":
            events = body.get("events")
            if isinstance(events, list):
                self.obs.record_remote(host.spec.name, events)
        # unknown kinds are ignored: forward-compatible within a version

    def _on_result(self, host: _Host, body: dict[str, Any]) -> None:
        lease = self.active.pop(str(body.get("lease")), None)
        host.leases.pop(str(body.get("lease")), None)
        if lease is None or lease.cell.id in self.outcomes:
            if lease is not None:
                self.obs.end(lease.sid, outcome="duplicate")
                lease.sid = None
            host.outcome.duplicates_discarded += 1
            self.obs.emit("cell.duplicate", cell=str(body.get("cell")),
                          host=host.spec.name)
            return
        # First result wins: cancel any straggler sibling outright.
        for other in [o for o in self.active.values()
                      if o.cell.id == lease.cell.id]:
            self._cancel(other)
        wall = time.monotonic() - lease.started
        self.durations.append(wall)
        ok = bool(body.get("ok"))
        payload = body.get("payload")
        error = str(body.get("error", "agent reported failure"))
        self.obs.end(lease.sid, outcome="result", ok=ok)
        lease.sid = None
        if ok:
            host.outcome.done += 1
        self._settle(lease.cell, lease.attempt, ok, payload, error, host,
                     wall_s=wall)

    def _settle(self, cell: SweepCell, attempt: int, ok: bool,
                payload: Any, error: str, host: _Host | None,
                wall_s: float | None = None) -> None:
        """At-most-once commit of one cell attempt — same retry policy as
        the local pool's ``settle``."""
        where = host.spec.name if host is not None else None
        if ok:
            self.outcomes[cell.id] = CellOutcome(cell, "done", attempt, payload)
            self.book.record_done(cell.id, attempt, payload)
            if self.cache is not None:
                key = cell_fingerprint(cell)
                if key is not None:
                    self.cache.store(key, cell_id=cell.id, attempts=attempt,
                                     payload=payload)
            self.obs.emit("cell.done", cell=cell.id,
                          done=len(self.outcomes), total=self.total,
                          attempt=attempt, host=where, wall_s=wall_s)
        elif attempt < self.max_attempts:
            self.obs.emit("cell.retry", cell=cell.id, attempt=attempt,
                          error=error, host=where, wall_s=wall_s)
            self.pending.appendleft((cell, attempt + 1))
        else:
            self.outcomes[cell.id] = CellOutcome(cell, "failed", attempt,
                                                 None, error)
            self.book.record_failed(cell.id, attempt, error)
            if host is not None:
                host.outcome.failed += 1
            self.obs.emit("cell.failed", cell=cell.id,
                          done=len(self.outcomes), total=self.total,
                          attempt=attempt, error=error, host=where,
                          wall_s=wall_s)
        self.obs.status_tick(pending=len(self.pending),
                             leased=len(self.active),
                             hosts=self._host_status())

    def _cancel(self, lease: _Lease) -> None:
        self.active.pop(lease.id, None)
        lease.host.leases.pop(lease.id, None)
        self.obs.end(lease.sid, outcome="cancelled")
        lease.sid = None
        if lease.host.transport is not None and lease.host.state == "ready":
            try:
                lease.host.transport.send_line(
                    encode_envelope("cancel", {"lease": lease.id})
                )
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self) -> None:
        for host in self.hosts:
            if host.state != "ready" or host.transport is None:
                continue
            while self.pending and len(host.leases) < host.capacity:
                cell, attempt = self.pending.popleft()
                if cell.id in self.outcomes:
                    continue
                if self._serve_from_cache(cell):
                    continue
                self._lease_to(host, cell, attempt)

    def _serve_from_cache(self, cell: SweepCell) -> bool:
        """Settle ``cell`` from the result cache if its payload landed
        there after the sweep started.

        ``_prepare`` only consults the cache once, before dispatch; a
        cell requeued later — host lost mid-cell, or a retry — may by
        then have its fingerprint in the cache because an identical
        (runner, params) cell finished elsewhere in the meantime.
        Without this check the driver re-executes work it already holds
        the answer to.  Determinism makes the served payload identical
        to what a re-run would produce.
        """
        if self.cache is None:
            return False
        key = cell_fingerprint(cell)
        entry = self.cache.load(key) if key is not None else None
        if entry is None:
            return False
        attempts = entry.get("attempts", 1)
        if not isinstance(attempts, int) or attempts < 1:
            attempts = 1
        self.cache_hits += 1
        self.outcomes[cell.id] = CellOutcome(
            cell=cell, status="done", attempts=attempts,
            payload=entry["payload"], cached=True,
        )
        self.book.record_done(cell.id, attempts, entry["payload"])
        self.obs.emit("cell.cache_hit", cell=cell.id, key=key[:12],
                      when="redispatch", done=len(self.outcomes),
                      total=self.total)
        return True

    def _lease_to(self, host: _Host, cell: SweepCell, attempt: int) -> None:
        self._lease_seq += 1
        lease = _Lease(
            id=f"L{self._lease_seq}", cell=cell, attempt=attempt,
            host=host, started=time.monotonic(),
        )
        assert host.transport is not None
        dispatch_sid = self.obs.begin("dispatch", host=host.spec.name,
                                      cell=cell.id, lease=lease.id)
        try:
            host.transport.send_line(
                encode_envelope("lease", {
                    "lease": lease.id, "cell": cell.id, "attempt": attempt,
                })
            )
        except OSError as exc:
            self.obs.end(dispatch_sid, ok=False)
            self.pending.appendleft((cell, attempt))
            self._lose_host(host, f"send failed: {exc}")
            return
        self.obs.end(dispatch_sid, ok=True)
        lease.sid = self.obs.begin("lease", host=host.spec.name,
                                   cell=cell.id, lease=lease.id,
                                   attempt=attempt)
        host.leases[lease.id] = lease
        self.active[lease.id] = lease

    def _redispatch_straggler(self, lease: _Lease, now: float) -> None:
        for host in self.hosts:
            if (host is lease.host or host.state != "ready"
                    or len(host.leases) >= host.capacity):
                continue
            self.obs.emit("cell.straggler", cell=lease.cell.id,
                          host=lease.host.spec.name,
                          elapsed_s=now - lease.started, to=host.spec.name)
            self._lease_to(host, lease.cell, lease.attempt)
            return

    # -- deadline supervision ----------------------------------------------

    def _check_deadlines(self, now: float) -> None:
        suspect_after = self.heartbeat_s * _MISSED_HEARTBEATS
        for host in list(self.hosts):
            if host.state == "connecting" and now >= host.connect_deadline:
                self._lose_host(host, "no hello before the connect timeout")
            elif (host.state in ("ready", "connecting")
                    and now - host.last_seen > suspect_after):
                self._lose_host(
                    host,
                    f"heartbeat silent for {now - host.last_seen:.1f}s "
                    f"(> {suspect_after:.1f}s)",
                )
            elif host.state == "lost" and now >= host.backoff_until:
                self._connect(host)
        if self.timeout_s is not None:
            for lease in list(self.active.values()):
                if now - lease.started < self.timeout_s:
                    continue
                self._cancel(lease)
                if self._has_sibling(lease) or lease.cell.id in self.outcomes:
                    continue
                self._settle(
                    lease.cell, lease.attempt, False, None,
                    f"timeout: attempt {lease.attempt} cancelled after "
                    f"{now - lease.started:.2f}s wall (limit {self.timeout_s}s)",
                    lease.host, wall_s=now - lease.started,
                )
        if self.straggler_factor and len(self.durations) >= 3:
            threshold = self.straggler_factor * median(self.durations)
            for lease in list(self.active.values()):
                if (now - lease.started > threshold
                        and not self._has_sibling(lease)):
                    self._redispatch_straggler(lease, now)

    def _next_wake(self, now: float) -> float:
        """Seconds to sleep in the inbox wait before a deadline could fire."""
        horizon = now + self.heartbeat_s
        for host in self.hosts:
            if host.state == "connecting":
                horizon = min(horizon, host.connect_deadline)
            elif host.state in ("ready",):
                horizon = min(
                    horizon,
                    host.last_seen + self.heartbeat_s * _MISSED_HEARTBEATS,
                )
            elif host.state == "lost":
                horizon = min(horizon, host.backoff_until)
        if self.timeout_s is not None:
            for lease in self.active.values():
                horizon = min(horizon, lease.started + self.timeout_s)
        return max(0.05, horizon - now)

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        for host in self.hosts:
            self._connect(host)
        try:
            while len(self.outcomes) < self.total:
                if self.guard is not None and self.guard.stop:
                    self._interrupt()
                if all(h.state == "dead" for h in self.hosts):
                    return  # caller degrades to the local pool
                self._dispatch()
                now = time.monotonic()
                try:
                    host, transport, line = self.inbox.get(
                        timeout=self._next_wake(now)
                    )
                except queue.Empty:
                    pass
                else:
                    if transport is not host.transport:
                        pass  # stale line from a pre-reconnect transport
                    elif line is None:
                        self._lose_host(host, "transport closed (EOF)")
                    else:
                        self._on_line(host, line)
                self._check_deadlines(time.monotonic())
                self.obs.status_tick(pending=len(self.pending),
                                     leased=len(self.active),
                                     hosts=self._host_status())
        finally:
            self._shutdown_hosts()

    def _interrupt(self) -> None:
        flushed: set[str] = set()
        for lease in list(self.active.values()):
            self.obs.end(lease.sid, outcome="interrupted")
            lease.sid = None
            if lease.cell.id not in self.outcomes and lease.cell.id not in flushed:
                self.book.record_pending(lease.cell.id, lease.attempt)
                flushed.add(lease.cell.id)
                self.obs.emit("cell.interrupted", cell=lease.cell.id)
        done = sum(1 for o in self.outcomes.values() if o.ok)
        failed = len(self.outcomes) - done
        raise SweepInterrupted(done, failed, self.total, self.book.path)

    def _shutdown_hosts(self) -> None:
        for host in self.hosts:
            if host.transport is None:
                continue
            try:
                host.transport.send_line(encode_envelope("shutdown", {}))
            except OSError:
                pass
            host.transport.close()
            host.transport = None

    def _host_status(self) -> dict[str, dict[str, Any]]:
        """Live per-host rows for the status sidecar (`repro top`)."""
        now = time.monotonic()
        return {
            h.spec.name: {
                "state": h.state,
                "busy": len(h.leases),
                "done": h.outcome.done,
                "failed": h.outcome.failed,
                "reconnects": h.outcome.reconnects,
                "heartbeat_age_s": (
                    round(now - h.last_beat, 3) if h.last_beat else None
                ),
                "workers": h.capacity,
            }
            for h in self.hosts
        }

    def host_outcomes(self) -> tuple[HostOutcome, ...]:
        now = time.monotonic()
        for h in self.hosts:
            if h.last_beat:
                h.outcome.last_heartbeat_age_s = round(now - h.last_beat, 3)
        return tuple(h.outcome for h in self.hosts)


def run_remote_sweep(
    spec: SweepSpec,
    hosts: "str | list[str] | tuple[HostSpec, ...]",
    *,
    timeout_s: float | None = None,
    max_attempts: int = _pool.DEFAULT_MAX_ATTEMPTS,
    manifest_path: str | None = None,
    resume: bool = False,
    cache_dir: str | None = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    straggler_factor: float | None = DEFAULT_STRAGGLER_FACTOR,
    connect_timeout_s: float = 10.0,
    reconnect_attempts: int = 1,
    local_workers: int = 1,
    workers_per_host: int = 1,
    progress: Callable[[str], None] | None = None,
    obs: "SweepObserver | None" = None,
) -> SweepResult:
    """Execute ``spec`` across remote host agents; always completes.

    Same contract as :func:`~repro.sweep.pool.run_sweep` — per-cell
    retry up to ``max_attempts``, resumable manifest, result cache,
    deterministic merge — plus the fault model described in the module
    docstring.  With every host dead, the remaining cells run on a local
    pool of ``local_workers``; the sweep never aborts because the fleet
    did.
    """
    host_specs = parse_hosts(hosts, default_workers=workers_per_host)
    max_attempts = max(1, int(max_attempts))
    if not (math.isfinite(heartbeat_s) and heartbeat_s > 0.0):
        raise ValueError(
            f"--heartbeat-s must be a positive finite number, got {heartbeat_s!r}"
        )
    if not straggler_factor:  # 0 / None both mean "never re-dispatch"
        straggler_factor = None
    elif not math.isfinite(straggler_factor) or straggler_factor < 1.0:
        raise ValueError(
            f"--straggler-factor must be >= 1 (or 0 to disable), "
            f"got {straggler_factor!r}"
        )
    if obs is None:
        obs = _default_obs(progress)
    total = len(spec.cells)
    # Fail fast on a non-portable grid — before any agent is started.
    encode_spec(spec)

    sweep_sid = obs.begin("sweep", spec=spec.name, cells=total,
                          hosts=len(host_specs))
    try:
        prep_sid = obs.begin("prepare")
        outcomes, pending, book, cache = _prepare(
            spec, manifest_path=manifest_path, resume=resume,
            cache_dir=cache_dir, obs=obs,
        )
        obs.end(prep_sid, pending=len(pending), settled=len(outcomes))
        obs.status_tick(pending=len(pending), leased=0, force=True)

        scheduler = None
        spawned = 0
        if pending:
            with _SignalGuard(obs.note) as guard:
                scheduler = _RemoteScheduler(
                    spec, host_specs,
                    outcomes=outcomes, pending=pending, book=book, cache=cache,
                    timeout_s=timeout_s, max_attempts=max_attempts,
                    heartbeat_s=heartbeat_s, straggler_factor=straggler_factor,
                    connect_timeout_s=connect_timeout_s,
                    reconnect_attempts=reconnect_attempts,
                    obs=obs, guard=guard,
                )
                scheduler.run()
                spawned = scheduler.spawned_agents
                if len(outcomes) < total:
                    # Graceful degradation: every host is gone, the grid is
                    # not.  Anything still leased was already requeued by
                    # _lose_host, so `pending` is exactly the unfinished set.
                    obs.emit("sweep.degraded", hosts=len(host_specs),
                             cells=total - len(outcomes))
                    spawned += _run_pool(
                        spec, pending, outcomes, book, cache,
                        workers=local_workers, timeout_s=timeout_s,
                        max_attempts=max_attempts, obs=obs, total=total,
                        guard=guard,
                    )

        merge_sid = obs.begin("merge")
        result = SweepResult(
            spec=spec,
            outcomes=tuple(outcomes[cell.id] for cell in spec.cells),
            workers=sum(h.workers for h in host_specs),
            spawned_workers=spawned,
            host_outcomes=(
                scheduler.host_outcomes() if scheduler is not None
                else tuple(HostOutcome(host=h.name, state="unused")
                           for h in host_specs)
            ),
            cache_hits=scheduler.cache_hits if scheduler is not None else 0,
        )
        obs.end(merge_sid, cells=len(result.outcomes))
    except SweepInterrupted:
        obs.end(sweep_sid, state="interrupted")
        obs.status_tick(force=True)
        raise
    obs.end(sweep_sid, state="done" if result.ok else "failed")
    obs.status_tick(pending=0, leased=0, force=True)
    return result


# --------------------------------------------------------------------------
# Agent side
# --------------------------------------------------------------------------


class _AgentPool:
    """The agent's persistent worker pool: lease in, result out.

    Reuses the local pool's worker body (warm imports, JSON result
    framing, crash isolation) but is *incremental* — the driver decides
    what to lease next, the agent only executes.  Cells arrived over the
    wire as JSON, so the pool is spawn-safe by construction.
    """

    def __init__(self, cells: tuple[SweepCell, ...], capacity: int) -> None:
        self.ctx = _pool._context()
        self.cells = cells
        self.index_of = {cell.id: i for i, cell in enumerate(cells)}
        self.capacity = max(1, capacity)
        self.idle: list[Any] = []
        self.busy: dict[str, Any] = {}  # lease id -> worker
        self.done = 0

    def _spawn(self) -> Any:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_pool._worker_main,
            args=(self.cells, child_conn),
            name=f"agent-worker-{len(self.idle) + len(self.busy)}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _pool._Worker(proc, parent_conn)

    def claim(self, cell_id: str) -> tuple[str | None, Any, int | None]:
        """Reserve a worker for ``cell_id`` without starting the cell;
        returns ``(error, worker, index)``.  Split from :meth:`start` so
        the agent can journal the cell's ``begin`` span *before* the
        worker could possibly run (and, in the kill-agent fault mode,
        murder this process ahead of its own begin event)."""
        index = self.index_of.get(cell_id)
        if index is None:
            return f"agent does not know cell {cell_id!r}", None, None
        worker = self.idle.pop() if self.idle else self._spawn()
        return None, worker, index

    def start(self, lease_id: str, worker: Any, index: int) -> str | None:
        """Send a claimed cell to its worker; returns an error or None.
        A worker that died idle is replaced once (the begin span then
        carries the stale pid — a cosmetic casualty of a rare path)."""
        try:
            worker.conn.send(index)
        except (BrokenPipeError, OSError):
            _kill(worker.proc, grace_s=0.1)
            worker = self._spawn()
            try:
                worker.conn.send(index)
            except (BrokenPipeError, OSError):
                return "agent worker died before accepting the cell"
        self.busy[lease_id] = worker
        return None

    def cancel(self, lease_id: str) -> None:
        worker = self.busy.pop(lease_id, None)
        if worker is not None:
            _kill(worker.proc, grace_s=0.5)

    def poll(self, timeout: float) -> list[tuple[str, dict[str, Any]]]:
        """Results (and worker deaths) since the last poll."""
        if not self.busy:
            time.sleep(timeout)
            return []
        owner: dict[Any, str] = {}
        for lease_id, worker in self.busy.items():
            owner[worker.conn] = lease_id
            owner[worker.proc.sentinel] = lease_id
        ready = connection.wait(list(owner), timeout=timeout)
        results: list[tuple[str, dict[str, Any]]] = []
        for lease_id in {owner[r] for r in ready}:
            worker = self.busy.pop(lease_id)
            try:
                blob = json.loads(worker.conn.recv_bytes().decode("utf-8"))
                self.idle.append(worker)
            except (EOFError, OSError, json.JSONDecodeError):
                worker.proc.join(1.0)
                blob = {"ok": False, "error": _pool._crash_error(worker.proc)}
                try:
                    worker.conn.close()
                except OSError:
                    pass
            if blob.get("ok"):
                self.done += 1
            results.append((lease_id, blob))
        return results

    def shutdown(self) -> None:
        for worker in self.idle:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self.busy.values()) + self.idle:
            try:
                worker.conn.close()
            except OSError:
                pass
            _kill(worker.proc, grace_s=1.0)


class _StdinLines:
    """Non-blocking line framing over a raw fd.

    The agent multiplexes driver commands and worker pipes in ONE
    ``connection.wait`` — no stdin reader thread.  A thread blocked in
    ``sys.stdin.readline()`` would hold the buffered reader's lock
    across the pool's ``fork()``; the forked worker's multiprocessing
    bootstrap then closes ``sys.stdin`` and deadlocks on that
    never-to-be-released lock.
    """

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.buffer = b""
        self.eof = False
        os.set_blocking(fd, False)

    def drain(self) -> list[str | None]:
        """Complete lines available now; ``None`` marks driver EOF."""
        lines: list[str | None] = []
        while not self.eof:
            try:
                chunk = os.read(self.fd, 1 << 16)
            except BlockingIOError:
                break
            except OSError:
                chunk = b""
            if not chunk:
                self.eof = True
                break
            self.buffer += chunk
        while b"\n" in self.buffer:
            raw, self.buffer = self.buffer.split(b"\n", 1)
            lines.append(raw.decode("utf-8", errors="replace"))
        if self.eof:
            lines.append(None)
        return lines


def agent_main(workers: int = 1) -> int:
    """``repro sweep-agent``: serve one driver over stdin/stdout.

    Speaks the envelope protocol described in the module docstring.
    Exits 0 on a clean ``shutdown`` (or driver EOF — an orphaned agent
    must not outlive its sweep), 2 on a protocol error before the spec
    was accepted.
    """
    out = sys.stdout

    def emit(kind: str, body: dict[str, Any]) -> None:
        out.write(encode_envelope(kind, body) + "\n")
        out.flush()

    emit("hello", {
        "host": os.uname().nodename if hasattr(os, "uname") else "unknown",
        "pid": os.getpid(),
        "workers": max(1, int(workers)),
    })
    spec_line = sys.stdin.readline()  # still blocking: nothing to fork yet
    if not spec_line:
        return 2
    try:
        spec, extras = decode_spec(spec_line.rstrip("\n"))
    except WireError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    heartbeat_s = float(extras.get("heartbeat_s", DEFAULT_HEARTBEAT_S))
    emit("spec-ack", {"fingerprint": spec.fingerprint()})

    # Workers inherit this and use it to tell "I run under an agent"
    # apart from the plain local pool (see the flaky kill-agent mode).
    os.environ["REPRO_SWEEP_AGENT"] = "1"
    pool = _AgentPool(spec.cells, max(1, int(workers)))
    stdin = _StdinLines(sys.stdin.fileno())

    # Journal mode (spec extras carry the driver's request): buffer
    # begin/end events for this agent's cell.run spans and ship them as
    # `journal` envelopes.  The driver namespaces actors and sids by
    # host on receipt; a SIGKILLed agent simply never flushes its last
    # buffer, and the driver synthesises the missing ends at close.
    journal_on = bool(extras.get("journal"))
    journal_events: list[dict[str, Any]] = []
    open_spans: dict[str, tuple[str, str, str]] = {}  # lease -> (sid, actor, cell)
    span_seq = 0

    def span_begin(lease_id: str, cell_id: str, pid: int | None,
                   attempt: Any) -> None:
        nonlocal span_seq
        if not journal_on:
            return
        span_seq += 1
        sid = f"a{span_seq}"
        actor = f"worker/{pid}" if pid is not None else "agent"
        open_spans[lease_id] = (sid, actor, cell_id)
        event: dict[str, Any] = {
            "ev": "begin", "span": "cell.run", "sid": sid, "actor": actor,
            "cell": cell_id, "lease": lease_id, "t": time.time(),
        }
        if attempt is not None:
            event["fields"] = {"attempt": attempt}
        journal_events.append(event)

    def span_end(lease_id: str, **fields: Any) -> None:
        if not journal_on:
            return
        entry = open_spans.pop(lease_id, None)
        if entry is None:
            return
        sid, actor, cell_id = entry
        journal_events.append({
            "ev": "end", "span": "cell.run", "sid": sid, "actor": actor,
            "cell": cell_id, "lease": lease_id, "t": time.time(),
            "fields": fields,
        })

    lease_cells: dict[str, str] = {}
    # Heartbeats at half the driver's interval: one drop never kills us.
    beat_every = max(0.05, heartbeat_s / 2.0)
    next_beat = time.monotonic() + beat_every
    try:
        while True:
            wait_on: list[Any] = [stdin.fd]
            for worker in pool.busy.values():
                wait_on.append(worker.conn)
                wait_on.append(worker.proc.sentinel)
            timeout = max(0.0, min(beat_every, next_beat - time.monotonic()))
            connection.wait(wait_on, timeout=timeout)
            for command in stdin.drain():
                if command is None:
                    return 0  # driver went away; die with it
                try:
                    kind, body = decode_envelope(command)
                except WireError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    continue
                if kind == "shutdown":
                    # Flush any ends buffered in this drain batch (a
                    # cancel riding with the shutdown) before dying,
                    # or they would surface as synthetic aborted ends.
                    if journal_events:
                        emit("journal", {"events": journal_events})
                    return 0
                if kind == "lease":
                    lease_id = str(body["lease"])
                    cell_id = str(body["cell"])
                    error, worker, index = pool.claim(cell_id)
                    if error is None:
                        # Begin span on the wire BEFORE the cell starts:
                        # a cell that SIGKILLs this agent must never
                        # outrace its own begin event to the driver.
                        span_begin(lease_id, cell_id, worker.proc.pid,
                                   body.get("attempt"))
                        if journal_events:
                            emit("journal", {"events": journal_events})
                            journal_events = []
                        error = pool.start(lease_id, worker, index)
                    if error is not None:
                        span_end(lease_id, ok=False, error=error)
                        emit("result", {
                            "lease": lease_id, "cell": cell_id,
                            "ok": False, "error": error,
                        })
                    else:
                        lease_cells[lease_id] = cell_id
                elif kind == "cancel":
                    lease_id = str(body["lease"])
                    pool.cancel(lease_id)
                    lease_cells.pop(lease_id, None)
                    span_end(lease_id, ok=False, cancelled=True)
            for lease_id, blob in pool.poll(timeout=0.0):
                end_fields: dict[str, Any] = {"ok": bool(blob.get("ok"))}
                if isinstance(blob.get("t0"), (int, float)) and \
                        isinstance(blob.get("t1"), (int, float)):
                    end_fields["compute_s"] = max(0.0, blob["t1"] - blob["t0"])
                span_end(lease_id, **end_fields)
                # Journal before result: the driver may stop reading
                # the moment the last result settles the sweep, and
                # the pipe preserves order — so the span's real end
                # always lands before the result that retires it.
                if journal_events:
                    emit("journal", {"events": journal_events})
                    journal_events = []
                emit("result", {
                    "lease": lease_id,
                    "cell": lease_cells.pop(lease_id, "?"),
                    "ok": bool(blob.get("ok")),
                    "payload": blob.get("payload"),
                    "error": blob.get("error", ""),
                })
            if journal_events:
                emit("journal", {"events": journal_events})
                journal_events = []
            now = time.monotonic()
            if now >= next_beat:
                emit("heartbeat", {
                    "busy": sorted(pool.busy), "done": pool.done,
                })
                next_beat = now + beat_every
    except (BrokenPipeError, OSError):
        return 0  # driver pipe gone mid-write
    finally:
        pool.shutdown()
