"""The crash-isolated worker pool behind every parallel sweep.

Each cell runs in its *own* child process (process-per-cell, not a
long-lived worker pool): the cells here are whole simulations, so fork
cost is noise, and per-cell processes are what buy the isolation
properties the experiment layer needs:

* **crash isolation** — a worker that raises, hard-exits, or is killed
  (OOM killer, signal) costs only its own cell; the sweep never aborts.
* **bounded retry** — a failed attempt (crash *or* timeout) is requeued
  up to ``max_attempts``; a cell that keeps failing is recorded as a
  failed outcome and the rest of the grid still completes.
* **timeouts** — a cell past ``timeout_s`` is terminated (SIGTERM, then
  SIGKILL) and treated as a failed attempt.
* **deterministic merge** — results are keyed by cell id and reported
  in spec order, so worker scheduling never leaks into the output.  A
  parallel sweep over deterministic cells is byte-identical to the
  sequential run; payloads round-trip through JSON in the worker, so
  the merged values are exactly what a report file would contain.

Workers hand results back through per-attempt JSON files (written to a
scratch directory, atomically renamed).  A missing or unparsable result
file *is* the crash signal — nothing about the protocol requires the
child to die politely.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable

from repro.sweep.manifest import Manifest
from repro.sweep.spec import SweepCell, SweepSpec, resolve_runner

__all__ = ["CellOutcome", "SweepResult", "run_sweep", "DEFAULT_MAX_ATTEMPTS"]

DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class CellOutcome:
    """Final state of one cell after isolation, retries and merge."""

    cell: SweepCell
    status: str  # "done" | "failed"
    attempts: int  # attempts consumed this run (0 when resumed)
    payload: Any = None
    error: str = ""
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "done"


@dataclass(frozen=True)
class SweepResult:
    """All outcomes, in spec order regardless of completion order."""

    spec: SweepSpec
    outcomes: tuple[CellOutcome, ...]
    workers: int

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> tuple[CellOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    def payloads(self) -> dict[str, Any]:
        return {o.cell.id: o.payload for o in self.outcomes if o.ok}


def _child_entry(runner_key: str, params: dict, result_path: str) -> None:
    """Worker body: run the cell, write ``{ok, payload|error}`` atomically.

    Exceptions are *reported*, not re-raised — the parent decides about
    retries.  A child that dies before the ``os.replace`` lands simply
    leaves no result file, which the parent reads as a crash.
    """
    try:
        payload = resolve_runner(runner_key)(params)
        blob: dict[str, Any] = {"ok": True, "payload": payload}
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        blob = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    tmp = f"{result_path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(blob, fh, sort_keys=True)
    os.replace(tmp, result_path)


@dataclass
class _Running:
    proc: Any
    cell: SweepCell
    attempt: int
    deadline: float | None
    result_path: str


def _kill(proc: Any) -> None:
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(5.0)


def _harvest(rec: _Running) -> tuple[bool, Any, str]:
    """Classify a finished worker: (ok, payload, error)."""
    if not os.path.exists(rec.result_path):
        code = rec.proc.exitcode
        if code is not None and code < 0:
            return False, None, f"worker killed by signal {-code}"
        return False, None, f"worker crashed without a result (exit code {code})"
    try:
        with open(rec.result_path, "r", encoding="utf-8") as fh:
            blob = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return False, None, f"unreadable worker result: {exc}"
    if blob.get("ok"):
        return True, blob.get("payload"), ""
    return False, None, str(blob.get("error", "worker reported failure"))


def _context() -> Any:
    """Prefer fork so cell params may hold arbitrary objects (factories,
    configs); under spawn-only hosts params must be picklable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    timeout_s: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    manifest_path: str | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute every cell of ``spec`` across ``workers`` processes.

    Always completes: per-cell failures (exceptions, hard crashes,
    timeouts) are retried up to ``max_attempts`` and then recorded as
    failed outcomes.  With ``manifest_path`` set, every final cell state
    is checkpointed; ``resume=True`` loads the manifest and skips cells
    already done (failed cells run again).
    """
    workers = max(1, int(workers))
    max_attempts = max(1, int(max_attempts))
    note = progress or (lambda msg: None)

    prior = (
        Manifest.load(manifest_path, spec)
        if (resume and manifest_path)
        else Manifest(None, spec)
    )
    book = Manifest(manifest_path, spec, dict(prior.cells) if resume else None)

    outcomes: dict[str, CellOutcome] = {}
    pending: deque[tuple[SweepCell, int]] = deque()
    done_before = prior.completed
    for cell in spec.cells:
        if cell.id in done_before:
            attempts = prior.cells[cell.id].get("attempts", 1)
            outcomes[cell.id] = CellOutcome(
                cell=cell, status="done", attempts=0,
                payload=done_before[cell.id], resumed=True,
            )
            note(f"{cell.id}: resumed from manifest (done in {attempts} attempt(s))")
        else:
            pending.append((cell, 1))

    ctx = _context()
    serial = 0
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
        running: dict[Any, _Running] = {}
        while pending or running:
            while pending and len(running) < workers:
                cell, attempt = pending.popleft()
                serial += 1
                result_path = os.path.join(scratch, f"cell-{serial}.json")
                proc = ctx.Process(
                    target=_child_entry,
                    args=(cell.runner, cell.params, result_path),
                    name=f"sweep:{cell.id}",
                    daemon=True,
                )
                proc.start()
                deadline = time.monotonic() + timeout_s if timeout_s else None
                running[proc.sentinel] = _Running(proc, cell, attempt, deadline, result_path)

            deadlines = [r.deadline for r in running.values() if r.deadline is not None]
            wait_s = max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
            ready = set(connection.wait(list(running), timeout=wait_s))
            now = time.monotonic()

            finished: list[tuple[_Running, bool]] = []
            for sentinel, rec in list(running.items()):
                if sentinel in ready:
                    finished.append((rec, False))
                    del running[sentinel]
                elif rec.deadline is not None and now >= rec.deadline:
                    finished.append((rec, True))
                    del running[sentinel]

            for rec, timed_out in finished:
                if timed_out:
                    _kill(rec.proc)
                    ok, payload, error = False, None, f"timeout after {timeout_s}s"
                else:
                    rec.proc.join()
                    ok, payload, error = _harvest(rec)
                if os.path.exists(rec.result_path):
                    os.unlink(rec.result_path)
                cell = rec.cell
                if ok:
                    outcomes[cell.id] = CellOutcome(cell, "done", rec.attempt, payload)
                    book.record_done(cell.id, rec.attempt, payload)
                    note(f"{cell.id}: done (attempt {rec.attempt})")
                elif rec.attempt < max_attempts:
                    note(f"{cell.id}: attempt {rec.attempt} failed ({error}); retrying")
                    pending.append((cell, rec.attempt + 1))
                else:
                    outcomes[cell.id] = CellOutcome(cell, "failed", rec.attempt, None, error)
                    book.record_failed(cell.id, rec.attempt, error)
                    note(f"{cell.id}: FAILED after {rec.attempt} attempt(s): {error}")

    return SweepResult(
        spec=spec,
        outcomes=tuple(outcomes[cell.id] for cell in spec.cells),
        workers=workers,
    )
