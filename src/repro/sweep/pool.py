"""The persistent, crash-isolated worker pool behind every parallel sweep.

``run_sweep`` drives a grid of independent cells through N *long-lived*
worker processes.  Workers are forked once per sweep (not once per cell
— fork-per-cell cost was measured to make small-cell sweeps slower than
sequential runs), inherit warm imports and any runner-prewarmed shared
state (e.g. one read-only workload stream per distinct workload spec),
then pull cell indices from their pipe and stream results back as they
finish.  The isolation properties the experiment layer needs survive
the pooling, now scoped per *worker*:

* **crash isolation** — a worker that raises reports the error and
  lives on; a worker that hard-exits or is killed (OOM killer, signal)
  costs only its in-flight cell and is replaced by a fresh worker; the
  sweep never aborts.
* **bounded retry** — a failed attempt (crash *or* timeout) is requeued
  at the *front* of the pending queue, up to ``max_attempts``, so a
  flaky cell's retry does not wait behind every untried cell on a wide
  grid; a cell that keeps failing is recorded as a failed outcome and
  the rest of the grid still completes.
* **timeouts** — a cell past ``timeout_s`` has its worker terminated
  (SIGTERM, then SIGKILL) and is treated as a failed attempt; the error
  records the actual wall time and attempt number, so a chaos report
  can tell a slow cell from a hung one.
* **deterministic merge** — results are keyed by cell id and reported
  in spec order, so worker scheduling never leaks into the output.
  Payloads round-trip through JSON in the worker (``json.dumps`` on the
  worker side of the pipe, ``json.loads`` on the parent side), so the
  merged values are exactly what a report file would contain and a
  parallel sweep over deterministic cells stays byte-identical to the
  sequential run.

On top of the pool sits a **content-addressed result cache**
(``cache_dir``): before any worker is spawned, each pending cell's
fingerprint (:func:`~repro.sweep.spec.cell_fingerprint`) is looked up
in the :class:`~repro.sweep.manifest.ResultCache`; hits are returned
without spawning any work, so an unchanged grid re-runs with *zero*
child processes.  Manifest resume takes precedence over the cache — the
manifest records what *this* sweep already established, including
attempt counts — and a corrupted cache entry degrades to a live run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import TYPE_CHECKING, Any, Callable

from repro.sweep.manifest import Manifest, ResultCache
from repro.sweep.spec import (
    SweepCell,
    SweepSpec,
    cell_fingerprint,
    resolve_prewarm,
    resolve_runner,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports sweep)
    from repro.obs import SweepObserver

__all__ = [
    "CellOutcome",
    "SweepResult",
    "SweepInterrupted",
    "run_sweep",
    "DEFAULT_MAX_ATTEMPTS",
]

DEFAULT_MAX_ATTEMPTS = 3


def _default_obs(progress: Callable[[str], None] | None) -> "SweepObserver":
    """A journal-less observer that only narrates to ``progress``.

    Imported lazily: :mod:`repro.obs` imports back into the sweep
    package (for ``atomic_write_json``), so a module-level import here
    would be a cycle.
    """
    from repro.obs import SweepObserver

    return SweepObserver(progress=progress)


class SweepInterrupted(RuntimeError):
    """Raised when an operator signal stopped a sweep before completion.

    The sweep shut down *gracefully* before raising: dispatch stopped,
    in-flight cells were flushed to the manifest as pending, and every
    worker (or host agent) was terminated with an escalating
    SIGTERM-grace-SIGKILL.  ``str(exc)`` is a one-line summary suitable
    for the CLI.
    """

    def __init__(self, done: int, failed: int, total: int,
                 manifest_path: str | None) -> None:
        self.done = done
        self.failed = failed
        self.total = total
        self.manifest_path = manifest_path
        hint = (
            f"; manifest flushed to {manifest_path} — re-run with --resume"
            if manifest_path
            else ""
        )
        super().__init__(
            f"{done}/{total} cells done, {failed} failed, "
            f"{total - done - failed} unfinished{hint}"
        )


class _SignalGuard:
    """Two-stage SIGINT/SIGTERM handling around a sweep.

    The first signal flips :attr:`stop` — the pool stops dispatching,
    flushes the manifest and raises :class:`SweepInterrupted`; the
    second signal raises ``KeyboardInterrupt`` straight out of the
    handler, force-killing the run through the pool's ``finally``
    cleanup.  Handlers are only installed in the main thread (the only
    place Python allows it); elsewhere the guard is inert.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, note: Callable[[str], None]) -> None:
        self.stop = False
        self._note = note
        self._previous: dict[int, Any] = {}

    def _handle(self, signum: int, frame: Any) -> None:
        if self.stop:  # second signal: force
            raise KeyboardInterrupt
        self.stop = True
        self._note(
            f"caught {signal.Signals(signum).name}: finishing in-flight "
            f"cells' shutdown, flushing manifest (signal again to force-kill)"
        )

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # non-main interpreter quirks
                    pass
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass


@dataclass(frozen=True)
class CellOutcome:
    """Final state of one cell after isolation, retries and merge."""

    cell: SweepCell
    status: str  # "done" | "failed"
    attempts: int  # total attempts the cell has consumed, across resumes
    payload: Any = None
    error: str = ""
    resumed: bool = False  # skipped because the manifest had it done
    cached: bool = False  # payload served from the result cache

    @property
    def ok(self) -> bool:
        return self.status == "done"


@dataclass(frozen=True)
class SweepResult:
    """All outcomes, in spec order regardless of completion order."""

    spec: SweepSpec
    outcomes: tuple[CellOutcome, ...]
    workers: int
    #: Worker processes actually forked — 0 when every cell was resumed
    #: from the manifest or served from the result cache.  For a
    #: distributed sweep this counts agent processes plus any local
    #: fallback workers.
    spawned_workers: int = 0
    #: Per-host outcomes (:class:`repro.sweep.remote.HostOutcome`) when
    #: the sweep ran through ``run_remote_sweep``; empty for local runs.
    host_outcomes: tuple = ()
    #: Cells settled from the result cache *after* dispatch began (a
    #: requeued cell whose fingerprint-identical sibling finished first).
    #: Start-of-run cache hits show as ``CellOutcome.cached`` instead.
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> tuple[CellOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    def payloads(self) -> dict[str, Any]:
        return {o.cell.id: o.payload for o in self.outcomes if o.ok}


def _worker_main(cells: tuple[SweepCell, ...], conn: Any) -> None:
    """Worker body: pull cell indices, stream ``{ok, payload|error}`` back.

    Lives for the whole sweep: imports stay warm and runner-level caches
    (shared workload streams) persist across cells.  Exceptions are
    *reported*, not re-raised — the parent decides about retries.  A
    worker that dies before ``send_bytes`` lands simply leaves the pipe
    at EOF, which the parent reads as a crash.
    """
    # Warm the runner registry (and everything the builtin runners pull
    # in) before the first cell, not during it.
    import repro.sweep.runners  # noqa: F401

    while True:
        try:
            index = conn.recv()
        except (EOFError, OSError):
            return
        if index is None:
            return
        cell = cells[index]
        # t0/t1 bracket the runner only — the parent differences them into
        # the journal's compute time; journal-off parents ignore the keys.
        t0 = time.time()
        try:
            payload = resolve_runner(cell.runner)(cell.params)
            blob: dict[str, Any] = {"ok": True, "payload": payload}
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            blob = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        blob["t0"] = t0
        blob["t1"] = time.time()
        blob["pid"] = os.getpid()
        try:
            wire = json.dumps(blob, sort_keys=True)
        except TypeError as exc:
            wire = json.dumps(
                {"ok": False, "error": f"unserialisable cell payload: {exc}"}
            )
        try:
            conn.send_bytes(wire.encode("utf-8"))
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Worker:
    """Parent-side handle on one pool member and its in-flight cell."""

    proc: Any
    conn: Any
    cell: SweepCell | None = None
    attempt: int = 0
    deadline: float | None = None
    started: float = 0.0
    run_sid: str | None = None  # open cell.run span in the journal

    @property
    def busy(self) -> bool:
        return self.cell is not None

    def take(self) -> tuple[SweepCell, int]:
        cell, attempt = self.cell, self.attempt
        assert cell is not None
        self.cell = None
        return cell, attempt


def _kill(proc: Any, grace_s: float = 1.0) -> None:
    """Escalating stop: SIGTERM, a bounded grace window, then SIGKILL.

    The grace window is what lets a worker's ``atexit`` hooks and cache
    cleanup run; only a process that ignores SIGTERM past ``grace_s``
    is killed outright.  Already-dead processes are just reaped.
    """
    if proc.exitcode is not None:
        proc.join(0.0)
        return
    proc.terminate()
    proc.join(max(0.0, grace_s))
    if proc.is_alive():
        proc.kill()
        proc.join(5.0)


def _context(start_method: str | None = None) -> Any:
    """Prefer fork so cell params (and prewarmed shared state) travel to
    workers by inheritance and may hold arbitrary objects (factories,
    configs).  Under spawn — fork-less hosts, or an explicit
    ``REPRO_SWEEP_START_METHOD=spawn`` override — the spec must be
    picklable, which every declarative (wire-portable) grid is; prewarm
    hooks simply stop paying off and workers rebuild shared state on
    demand.
    """
    method = start_method or os.environ.get("REPRO_SWEEP_START_METHOD")
    if method:
        if method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unsupported sweep start method {method!r}; this host "
                f"offers: {', '.join(multiprocessing.get_all_start_methods())}"
            )
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    timeout_s: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    manifest_path: str | None = None,
    resume: bool = False,
    cache_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
    obs: "SweepObserver | None" = None,
) -> SweepResult:
    """Execute every cell of ``spec`` across a pool of ``workers``.

    Always completes: per-cell failures (exceptions, hard crashes,
    timeouts) are retried up to ``max_attempts`` and then recorded as
    failed outcomes.  With ``manifest_path`` set, every final cell state
    is checkpointed; ``resume=True`` loads the manifest and skips cells
    already done (failed cells run again), carrying their recorded
    attempt counts through to the outcomes.  With ``cache_dir`` set,
    completed payloads are memoized by cell fingerprint and unchanged
    cells are served from the cache without spawning any worker.

    ``obs`` carries the journal/status sinks (:mod:`repro.obs`); when
    None, a null observer narrating only to ``progress`` is used and
    the sweep's outputs are byte-identical to pre-observability runs.
    """
    workers = max(1, int(workers))
    max_attempts = max(1, int(max_attempts))
    if obs is None:
        obs = _default_obs(progress)
    total = len(spec.cells)

    sweep_sid = obs.begin("sweep", spec=spec.name, cells=total,
                          workers=workers)
    try:
        prep_sid = obs.begin("prepare")
        outcomes, pending, book, cache = _prepare(
            spec, manifest_path=manifest_path, resume=resume,
            cache_dir=cache_dir, obs=obs,
        )
        obs.end(prep_sid, pending=len(pending), settled=len(outcomes))
        obs.status_tick(pending=len(pending), leased=0, force=True)

        spawned = 0
        if pending:
            with _SignalGuard(obs.note) as guard:
                spawned = _run_pool(
                    spec, pending, outcomes, book, cache,
                    workers=workers, timeout_s=timeout_s,
                    max_attempts=max_attempts,
                    obs=obs, total=total, guard=guard,
                )

        merge_sid = obs.begin("merge")
        result = SweepResult(
            spec=spec,
            outcomes=tuple(outcomes[cell.id] for cell in spec.cells),
            workers=workers,
            spawned_workers=spawned,
        )
        obs.end(merge_sid, cells=len(result.outcomes))
    except SweepInterrupted:
        obs.end(sweep_sid, state="interrupted")
        obs.status_tick(force=True)
        raise
    obs.end(sweep_sid, state="done" if result.ok else "failed")
    obs.status_tick(pending=0, leased=0, force=True)
    return result


def _prepare(
    spec: SweepSpec,
    *,
    manifest_path: str | None,
    resume: bool,
    cache_dir: str | None,
    obs: "SweepObserver",
) -> tuple[dict[str, CellOutcome], deque[tuple[SweepCell, int]],
           Manifest, ResultCache | None]:
    """The manifest-resume > result-cache > live precedence pass.

    Shared by the local pool and the distributed scheduler, so "what has
    already been established" means the same thing no matter where the
    remaining cells end up running.  Returns the outcomes settled so
    far, the deque of ``(cell, first_attempt)`` still to run, the
    manifest being written, and the cache (or None).
    """
    prior = (
        Manifest.load(manifest_path, spec)
        if (resume and manifest_path)
        else Manifest(None, spec)
    )
    book = Manifest(manifest_path, spec, dict(prior.cells) if resume else None)

    outcomes: dict[str, CellOutcome] = {}
    pending: deque[tuple[SweepCell, int]] = deque()
    done_before = prior.completed
    for cell in spec.cells:
        if cell.id in done_before:
            attempts = prior.cells[cell.id].get("attempts", 1)
            outcomes[cell.id] = CellOutcome(
                cell=cell, status="done", attempts=attempts,
                payload=done_before[cell.id], resumed=True,
            )
            obs.emit("cell.resumed", cell=cell.id, attempts=attempts)
        else:
            pending.append((cell, 1))

    # Cache pass: anything the manifest did not cover may still be an
    # unchanged cell from an earlier sweep.  Hits never spawn work.
    cache = ResultCache(cache_dir) if cache_dir else None
    if cache is not None and pending:
        live: deque[tuple[SweepCell, int]] = deque()
        for cell, attempt in pending:
            key = cell_fingerprint(cell)
            entry = cache.load(key) if key is not None else None
            if entry is None:
                live.append((cell, attempt))
                continue
            attempts = entry.get("attempts", 1)
            if not isinstance(attempts, int) or attempts < 1:
                attempts = 1
            outcomes[cell.id] = CellOutcome(
                cell=cell, status="done", attempts=attempts,
                payload=entry["payload"], cached=True,
            )
            book.record_done(cell.id, attempts, entry["payload"])
            obs.emit("cell.cache_hit", cell=cell.id, key=key[:12])
        pending = live

    return outcomes, pending, book, cache


def _run_pool(
    spec: SweepSpec,
    pending: deque[tuple[SweepCell, int]],
    outcomes: dict[str, CellOutcome],
    book: Manifest,
    cache: ResultCache | None,
    *,
    workers: int,
    timeout_s: float | None,
    max_attempts: int,
    obs: "SweepObserver",
    total: int,
    guard: "_SignalGuard | None" = None,
) -> int:
    """Drive ``pending`` through a persistent worker pool; returns the
    number of worker processes spawned."""
    ctx = _context()
    # Parent-side warm-up: import the runners (forked workers inherit the
    # loaded modules) and let each runner prewarm shared read-only state
    # for its pending cells — e.g. one numeric workload stream per
    # distinct workload spec, built once per grid instead of per cell.
    import repro.sweep.runners  # noqa: F401

    by_runner: dict[str, list[SweepCell]] = {}
    for cell, _ in pending:
        by_runner.setdefault(cell.runner, []).append(cell)
    for runner_key, runner_cells in by_runner.items():
        prewarm = resolve_prewarm(runner_key)
        if prewarm is None:
            continue
        try:
            prewarm(runner_cells)
        except Exception:  # noqa: BLE001 - best-effort; workers rebuild on demand
            pass

    index_of = {cell.id: i for i, cell in enumerate(spec.cells)}
    spawned = 0
    pool: list[_Worker] = []

    def spawn() -> _Worker:
        nonlocal spawned
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(spec.cells, child_conn),
            name=f"sweep-worker-{spawned}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        spawned += 1
        return _Worker(proc, parent_conn)

    def settle(cell: SweepCell, attempt: int, ok: bool, payload: Any,
               error: str, wall_s: float | None = None) -> None:
        if ok:
            outcomes[cell.id] = CellOutcome(cell, "done", attempt, payload)
            book.record_done(cell.id, attempt, payload)
            if cache is not None:
                key = cell_fingerprint(cell)
                if key is not None:
                    cache.store(key, cell_id=cell.id, attempts=attempt, payload=payload)
            obs.emit("cell.done", cell=cell.id, done=len(outcomes),
                     total=total, attempt=attempt, wall_s=wall_s)
        elif attempt < max_attempts:
            obs.emit("cell.retry", cell=cell.id, attempt=attempt,
                     error=error, wall_s=wall_s)
            # Front of the queue: on a wide sweep the retry must not wait
            # behind every untried cell and become the run's straggler.
            pending.appendleft((cell, attempt + 1))
        else:
            outcomes[cell.id] = CellOutcome(cell, "failed", attempt, None, error)
            book.record_failed(cell.id, attempt, error)
            obs.emit("cell.failed", cell=cell.id, done=len(outcomes),
                     total=total, attempt=attempt, error=error, wall_s=wall_s)
        obs.status_tick(pending=len(pending),
                        leased=sum(1 for w in pool if w.busy))

    def settle_dead_worker(worker: _Worker, error: str) -> None:
        """A worker died (crash or timeout kill): charge its in-flight
        cell one attempt and drop the worker from the pool."""
        pool.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        elapsed = time.monotonic() - worker.started
        obs.end(worker.run_sid, ok=False, error=error)
        worker.run_sid = None
        cell, attempt = worker.take()
        settle(cell, attempt, False, None, error, wall_s=elapsed)

    try:
        while pending or any(w.busy for w in pool):
            if guard is not None and guard.stop:
                _graceful_stop(pool, book, obs)
                done = sum(1 for o in outcomes.values() if o.ok)
                failed = len(outcomes) - done
                raise SweepInterrupted(done, failed, total, book.path)
            # Keep the pool sized to the remaining work: replace crashed
            # workers while cells still need one, never exceed `workers`.
            n_busy = sum(1 for w in pool if w.busy)
            while len(pool) < min(workers, n_busy + len(pending)):
                pool.append(spawn())

            # Hand cells to idle workers.
            for worker in pool:
                if not pending:
                    break
                if worker.busy:
                    continue
                cell, attempt = pending.popleft()
                worker.cell = cell
                worker.attempt = attempt
                worker.started = time.monotonic()
                worker.deadline = (
                    worker.started + timeout_s if timeout_s is not None else None
                )
                try:
                    worker.conn.send(index_of[cell.id])
                except (BrokenPipeError, OSError):
                    # The worker died while idle; the cell never started,
                    # so requeue it without charging an attempt.
                    worker.cell = None
                    pending.appendleft((cell, attempt))
                    pool.remove(worker)
                    break  # re-enter the loop to respawn and reassign
                worker.run_sid = obs.begin(
                    "cell.run", actor=f"worker/local/{worker.proc.pid}",
                    cell=cell.id, attempt=attempt,
                )

            busy = [w for w in pool if w.busy]
            if not busy:
                continue

            deadlines = [w.deadline for w in busy if w.deadline is not None]
            wait_s = (
                max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
            )
            owner: dict[Any, _Worker] = {}
            for w in busy:
                owner[w.conn] = w
                owner[w.proc.sentinel] = w
            ready = set(connection.wait(list(owner), timeout=wait_s))
            now = time.monotonic()

            for worker in busy:
                if worker.conn in ready:
                    # A streamed result — or EOF from a worker that died
                    # between finishing the send and us reading it.
                    try:
                        blob = json.loads(worker.conn.recv_bytes().decode("utf-8"))
                    except (EOFError, OSError, json.JSONDecodeError):
                        worker.proc.join(1.0)
                        settle_dead_worker(worker, _crash_error(worker.proc))
                        continue
                    elapsed = time.monotonic() - worker.started
                    end_fields: dict[str, Any] = {"ok": bool(blob.get("ok"))}
                    if isinstance(blob.get("t0"), (int, float)) and \
                            isinstance(blob.get("t1"), (int, float)):
                        end_fields["compute_s"] = max(
                            0.0, blob["t1"] - blob["t0"])
                    obs.end(worker.run_sid, **end_fields)
                    worker.run_sid = None
                    cell, attempt = worker.take()
                    settle(
                        cell, attempt,
                        bool(blob.get("ok")), blob.get("payload"),
                        str(blob.get("error", "worker reported failure")),
                        wall_s=elapsed,
                    )
                elif worker.proc.sentinel in ready:
                    worker.proc.join(1.0)
                    settle_dead_worker(worker, _crash_error(worker.proc))
                elif worker.deadline is not None and now >= worker.deadline:
                    elapsed = now - worker.started
                    _kill(worker.proc)
                    settle_dead_worker(
                        worker,
                        f"timeout: attempt {worker.attempt} killed after "
                        f"{elapsed:.2f}s wall (limit {timeout_s}s)",
                    )
    finally:
        for worker in pool:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in pool:
            worker.proc.join(1.0)
            if worker.proc.is_alive():
                _kill(worker.proc)
    return spawned


def _graceful_stop(pool: list[_Worker], book: Manifest,
                   obs: "SweepObserver") -> None:
    """First-signal shutdown: stop dispatching, flush in-flight cells to
    the manifest as pending (they re-run on ``--resume``), then stop
    every worker with the escalating SIGTERM-grace-SIGKILL."""
    for worker in pool:
        if worker.busy:
            obs.end(worker.run_sid, ok=False, interrupted=True)
            worker.run_sid = None
            cell, attempt = worker.take()
            book.record_pending(cell.id, attempt)
            obs.emit("cell.interrupted", cell=cell.id)
    for worker in pool:
        try:
            worker.conn.close()
        except OSError:
            pass
        _kill(worker.proc, grace_s=1.0)
    pool.clear()


def _crash_error(proc: Any) -> str:
    code = proc.exitcode
    if code is not None and code < 0:
        return f"worker killed by signal {-code}"
    return f"worker crashed without a result (exit code {code})"
