"""``repro.sweep`` — parallel sweep orchestration with crash isolation.

Shards an arbitrary (policy × workload × seed × config) cell grid
across worker processes and merges results deterministically: cell ids
key the merge, spec order keys the output, and payloads round-trip
through JSON in the workers, so a parallel sweep over deterministic
cells is byte-identical to the sequential run.  See DESIGN.md §7.
"""

from repro.sweep.manifest import Manifest
from repro.sweep.pool import (
    DEFAULT_MAX_ATTEMPTS,
    CellOutcome,
    SweepResult,
    run_sweep,
)
from repro.sweep.spec import SweepCell, SweepSpec, register_runner, resolve_runner

__all__ = [
    "SweepCell",
    "SweepSpec",
    "CellOutcome",
    "SweepResult",
    "Manifest",
    "run_sweep",
    "register_runner",
    "resolve_runner",
    "DEFAULT_MAX_ATTEMPTS",
]
