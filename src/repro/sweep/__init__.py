"""``repro.sweep`` — parallel sweep orchestration with crash isolation.

Shards an arbitrary (policy × workload × seed × config) cell grid
across a pool of persistent worker processes and merges results
deterministically: cell ids key the merge, spec order keys the output,
and payloads round-trip through JSON in the workers, so a parallel
sweep over deterministic cells is byte-identical to the sequential run.
A content-addressed result cache (keyed by per-cell fingerprint) makes
re-runs of unchanged cells free.  See DESIGN.md §7.
"""

from repro.sweep.manifest import Manifest, ResultCache
from repro.sweep.pool import (
    DEFAULT_MAX_ATTEMPTS,
    CellOutcome,
    SweepResult,
    run_sweep,
)
from repro.sweep.spec import (
    SweepCell,
    SweepSpec,
    cell_fingerprint,
    register_runner,
    resolve_runner,
)

__all__ = [
    "SweepCell",
    "SweepSpec",
    "CellOutcome",
    "SweepResult",
    "Manifest",
    "ResultCache",
    "run_sweep",
    "register_runner",
    "resolve_runner",
    "cell_fingerprint",
    "DEFAULT_MAX_ATTEMPTS",
]
