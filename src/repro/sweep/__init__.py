"""``repro.sweep`` — parallel sweep orchestration with crash isolation.

Shards an arbitrary (policy × workload × seed × config) cell grid
across a pool of persistent worker processes and merges results
deterministically: cell ids key the merge, spec order keys the output,
and payloads round-trip through JSON in the workers, so a parallel
sweep over deterministic cells is byte-identical to the sequential run.
A content-addressed result cache (keyed by per-cell fingerprint) makes
re-runs of unchanged cells free.

Declarative grids also shard across *machines*: ``run_remote_sweep``
fans cells out to ``repro sweep-agent`` host agents over a versioned
JSON wire format (:mod:`repro.sweep.wire`), supervises them with
leases and heartbeats, re-dispatches work from lost hosts, and — if
every host dies — finishes the sweep on the local pool.  See
DESIGN.md §7.
"""

from repro.sweep.manifest import Manifest, ResultCache, atomic_write_json
from repro.sweep.pool import (
    DEFAULT_MAX_ATTEMPTS,
    CellOutcome,
    SweepInterrupted,
    SweepResult,
    run_sweep,
)
from repro.sweep.report import build_report, write_report
from repro.sweep.remote import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STRAGGLER_FACTOR,
    HostOutcome,
    HostSpec,
    parse_hosts,
    run_remote_sweep,
)
from repro.sweep.spec import (
    SweepCell,
    SweepSpec,
    cell_fingerprint,
    is_portable,
    register_runner,
    resolve_runner,
)
from repro.sweep.wire import (
    WIRE_VERSION,
    WireError,
    decode_envelope,
    decode_spec,
    encode_envelope,
    encode_spec,
)

__all__ = [
    "SweepCell",
    "SweepSpec",
    "CellOutcome",
    "SweepResult",
    "SweepInterrupted",
    "Manifest",
    "ResultCache",
    "atomic_write_json",
    "build_report",
    "write_report",
    "run_sweep",
    "run_remote_sweep",
    "HostSpec",
    "HostOutcome",
    "parse_hosts",
    "register_runner",
    "resolve_runner",
    "cell_fingerprint",
    "is_portable",
    "encode_envelope",
    "decode_envelope",
    "encode_spec",
    "decode_spec",
    "WireError",
    "WIRE_VERSION",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_STRAGGLER_FACTOR",
]
