"""Spawn-safe wire format for sweep specs and the agent protocol.

The PR 6 pool moves cells to workers by fork inheritance, which is free
but confines a sweep to one machine (and to hosts that *have* fork).
Everything that crosses a socket, an ssh pipe, or a spawn-start-method
process boundary instead travels as one **envelope** per line:

``{"wire": 1, "kind": "...", "digest": "...", "body": {...}}``

* ``wire`` is the protocol version.  A peer running a different repro
  checkout rejects the line with a one-line :class:`WireError` instead
  of mis-parsing it — version skew between a driver and a fleet of
  agents is an operator error, not a crash.
* ``digest`` is a truncated SHA-256 of the canonical JSON of
  ``(kind, body)``.  A truncated or corrupted line (a dying ssh
  connection, an interleaved write) fails the digest check and is
  rejected at the boundary, never half-applied.
* ``body`` is plain JSON.  Encoding a spec therefore *requires* every
  cell's params to be JSON-serialisable; factory-based grids (live
  workload objects) are rejected by name, because they cannot survive
  any process boundary that fork inheritance does not cross.

A spec envelope additionally carries the spec's own
:meth:`~repro.sweep.spec.SweepSpec.fingerprint`; the decoder rebuilds
the spec and verifies the rebuilt fingerprint matches, so an agent can
never silently run a grid different from the one the driver holds.

Span context (PR 10) rides the same rails: a journal-armed driver adds
``journal: true`` and the sweep-wide ``trace`` id to the spec extras,
and agents answer with ``journal`` envelopes — ``{"events": [...]}``
batches of begin/end span events the driver stitches onto its own
journal.  Both are *additive*: an older peer ignores unknown kinds and extra
body keys by design, and a journal-off driver sends no journal extras
at all.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.sweep.spec import SweepCell, SweepSpec, is_portable

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "encode_envelope",
    "decode_envelope",
    "encode_spec",
    "decode_spec",
]

#: Bump on any incompatible change to the envelope or protocol bodies.
WIRE_VERSION = 1


class WireError(ValueError):
    """A line that must not be trusted: wrong version, bad digest,
    unserialisable payload, or a spec that fails its fingerprint check."""


def _digest(kind: str, body: Any) -> str:
    blob = json.dumps([kind, body], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def encode_envelope(kind: str, body: Any) -> str:
    """One newline-free JSON line carrying ``body`` under ``kind``."""
    try:
        digest = _digest(kind, body)
        line = json.dumps(
            {"wire": WIRE_VERSION, "kind": kind, "digest": digest, "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"unserialisable {kind!r} message body: {exc}") from None
    if "\n" in line:  # embedded newlines would split the framing
        raise WireError(f"{kind!r} message body contains a raw newline")
    return line


def decode_envelope(line: str, *, expect: str | None = None) -> tuple[str, Any]:
    """Parse and verify one envelope line; returns ``(kind, body)``.

    Rejects — with a :class:`WireError` naming the reason — anything
    that is not valid JSON, does not carry this :data:`WIRE_VERSION`,
    fails its digest check, or (with ``expect``) has the wrong kind.
    """
    try:
        outer = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable wire line: {exc}") from None
    if not isinstance(outer, dict):
        raise WireError(f"wire line is not an envelope: {type(outer).__name__}")
    version = outer.get("wire")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version skew: peer speaks {version!r}, this side speaks "
            f"{WIRE_VERSION}; upgrade the older end"
        )
    kind = outer.get("kind")
    body = outer.get("body")
    if not isinstance(kind, str):
        raise WireError("envelope is missing its kind")
    if outer.get("digest") != _digest(kind, body):
        raise WireError(f"digest mismatch on {kind!r} envelope (corrupt line)")
    if expect is not None and kind != expect:
        raise WireError(f"expected a {expect!r} envelope, got {kind!r}")
    return kind, body


def encode_spec(spec: SweepSpec, **extra: Any) -> str:
    """Encode a whole grid as one ``spec`` envelope.

    Every cell must be *portable* (JSON params); the first cell that is
    not is named in the error, because that cell could only ever travel
    by fork inheritance.  ``extra`` keys (e.g. the agent's heartbeat
    interval) ride along in the body next to the grid.
    """
    for cell in spec.cells:
        if not is_portable(cell):
            raise WireError(
                f"cell {cell.id!r} has non-JSON params and cannot cross a "
                f"process boundary; distributed sweeps need declarative cells"
            )
    body = {
        "name": spec.name,
        "fingerprint": spec.fingerprint(),
        "cells": [
            {"id": cell.id, "runner": cell.runner, "params": cell.params}
            for cell in spec.cells
        ],
        **extra,
    }
    return encode_envelope("spec", body)


def decode_spec(line: str) -> tuple[SweepSpec, dict[str, Any]]:
    """Rebuild a :class:`SweepSpec` from a ``spec`` envelope.

    Returns ``(spec, extras)`` where ``extras`` holds any non-grid keys
    the encoder attached.  The rebuilt spec's fingerprint must equal the
    one carried in the body — a mismatch means the grid was altered in
    flight (or the two sides disagree about what a fingerprint is,
    which is the same operator problem as version skew).
    """
    _, body = decode_envelope(line, expect="spec")
    try:
        cells = tuple(
            SweepCell(id=c["id"], runner=c["runner"], params=c.get("params", {}))
            for c in body["cells"]
        )
        spec = SweepSpec(name=body["name"], cells=cells)
        carried = body["fingerprint"]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed spec envelope: {exc}") from None
    rebuilt = spec.fingerprint()
    if rebuilt != carried:
        raise WireError(
            f"spec fingerprint mismatch: envelope says {carried!r}, rebuilt "
            f"grid digests to {rebuilt!r}; the grid was altered in flight"
        )
    extras = {
        k: v
        for k, v in body.items()
        if k not in ("name", "fingerprint", "cells")
    }
    return spec, extras
