"""Build and write ``SWEEP_report.json``.

The report is deterministic: cells in grid order, no attempt counts or
host timings, so the bytes are independent of ``--workers`` and of
scheduling — a parallel, distributed, or resumed sweep over the same
grid produces the same file as a sequential one.

Observability rides in two *optional* top-level sections:

* ``timing`` — per-attempt wall time and outcome rows, sorted by
  (cell id, attempt);
* ``profile`` — the journal-folded wall-time attribution table
  (:func:`repro.obs.profile.fold_profile`).

Both are only present when the sweep ran with ``--journal``; without
them the report is **byte-identical** to a pre-observability run, which
CI pins with a literal ``cmp``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.sweep.pool import SweepResult

__all__ = ["build_report", "write_report"]


def build_report(
    result: SweepResult,
    *,
    grid: dict[str, Any] | None = None,
    timing: list[dict[str, Any]] | None = None,
    profile: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The report dict for ``result``; ``timing``/``profile`` are
    attached only when provided (journal-armed runs)."""
    report: dict[str, Any] = {
        "grid": grid or {},
        "cells": [
            {
                "id": o.cell.id,
                "status": o.status,
                **({"result": o.payload} if o.ok else {"error": o.error}),
            }
            for o in result.outcomes
        ],
    }
    if timing is not None:
        report["timing"] = timing
    if profile is not None:
        report["profile"] = profile
    return report


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
