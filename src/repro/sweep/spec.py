"""Cell grid descriptions for the sweep orchestrator.

A sweep is a list of independent *cells* — one (policy × workload ×
seed × config) point each — plus the name of a registered *runner* that
knows how to execute one cell in a worker process and return a
JSON-serialisable payload.  Experiments (:func:`run_policies`), the
chaos matrix (:func:`run_chaos`) and the CLI all express their grids as
a :class:`SweepSpec`, so they share one pool, one retry policy and one
manifest format.

Runners are looked up by name in a registry rather than pickled,
because the lookup must also work inside a worker that was forked (or
spawned) before the parent decided which cell it would run.  Cell
``params`` are passed to the worker by fork inheritance, so they may
hold arbitrary objects (workload factories, configs); grids that want
resumable manifests should keep them JSON-serialisable, which is what
the CLI's declarative cells do.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SweepCell",
    "SweepSpec",
    "register_runner",
    "resolve_runner",
    "resolve_prewarm",
    "cell_fingerprint",
    "is_portable",
]

_REGISTRY: dict[str, Callable[[dict], Any]] = {}
_PREWARMS: dict[str, Callable[[list], None]] = {}


def register_runner(
    name: str, *, prewarm: Callable[[list], None] | None = None
) -> Callable[[Callable[[dict], Any]], Callable[[dict], Any]]:
    """Register a cell runner under ``name``.

    A runner takes the cell's ``params`` dict and returns a
    JSON-serialisable payload; it runs inside a worker process, so a
    hard crash (signal, ``os._exit``) costs only its own cell.

    ``prewarm``, when given, is called in the *parent* process with the
    list of pending cells for this runner before the pool forks its
    workers.  It may populate module-level read-only caches (shared
    workload streams, lookup tables) that forked workers then inherit
    copy-on-write — construction happens once per grid instead of once
    per cell.  A prewarm must be best-effort: anything it skips is
    simply built on demand inside a worker.
    """

    def deco(fn: Callable[[dict], Any]) -> Callable[[dict], Any]:
        _REGISTRY[name] = fn
        if prewarm is not None:
            _PREWARMS[name] = prewarm
        return fn

    return deco


def resolve_runner(name: str) -> Callable[[dict], Any]:
    """Look up a runner, loading the builtin set on first use."""
    # The builtins self-register on import; lazy so that importing the
    # spec layer (and unpickling cells in spawned workers) stays cheap.
    import repro.sweep.runners  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep runner {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def resolve_prewarm(name: str) -> Callable[[list], None] | None:
    """The runner's parent-side prewarm hook, or None.

    Unknown runner names resolve to None here — the per-cell "unknown
    sweep runner" error belongs to the worker, where it is crash-isolated
    and recorded as a failed cell instead of aborting the sweep.
    """
    import repro.sweep.runners  # noqa: F401

    return _PREWARMS.get(name)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of work in a sweep grid."""

    id: str
    runner: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered cell grid.

    The cell order is the *canonical output order*: merged results are
    always reported in spec order, never in worker completion order,
    which is what keeps a parallel sweep byte-identical to a sequential
    one.
    """

    name: str
    cells: tuple[SweepCell, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for cell in self.cells:
            if cell.id in seen:
                raise ValueError(f"duplicate sweep cell id {cell.id!r}")
            seen.add(cell.id)

    def fingerprint(self) -> str:
        """Stable digest of the grid, used to match manifests on resume.

        Cells whose params are not JSON-serialisable (factory-based API
        grids) contribute only their id and runner name — resume still
        works, it just cannot detect a silently changed factory.
        """
        parts = [self.name]
        for cell in self.cells:
            try:
                blob = json.dumps(cell.params, sort_keys=True)
            except TypeError:
                blob = "<non-portable-params>"
            parts.append(f"{cell.id}\x00{cell.runner}\x00{blob}")
        return hashlib.sha256("\x01".join(parts).encode("utf-8")).hexdigest()[:16]


def is_portable(cell: SweepCell) -> bool:
    """Whether the cell's params survive a process boundary as JSON.

    Portable cells can be fingerprinted for the result cache, carried in
    a resumable manifest, and shipped over the wire to a remote agent or
    a spawn-start-method worker; factory-based cells (live objects in
    ``params``) can only travel by fork inheritance.
    """
    try:
        json.dumps(cell.params, sort_keys=True)
    except (TypeError, ValueError):
        return False
    return True


def cell_fingerprint(cell: SweepCell) -> str | None:
    """Content address of one cell: a digest of (runner, params) alone.

    This is the result-cache key — deliberately *not* including the
    spec name or the cell id, so the same (runner, params) point reached
    from two different grids shares one cache entry.  Cells whose params
    are not JSON-serialisable (factory-based API grids) return None and
    are simply never cached.
    """
    try:
        blob = json.dumps(
            {"runner": cell.runner, "params": cell.params}, sort_keys=True
        )
    except TypeError:
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
