"""Page flags, mirroring the relevant bits of Linux's ``page-flags.h``.

The paper extends ``struct page``'s flag word with one new flag,
``PagePromote`` ("we also reused the space allocated for the page flags
to maintain the newly defined flag").  We model the flag word as an
IntFlag so tests can assert exact flag sets cheaply.
"""

from __future__ import annotations

import enum

__all__ = ["PageFlags"]


class PageFlags(enum.IntFlag):
    """Subset of Linux page flags used by the reproduction.

    ``PROMOTE`` is the paper's new ``PagePromote`` flag; the rest are the
    standard PFRA flags the MULTI-CLOCK state machine reads and writes.
    """

    NONE = 0
    REFERENCED = enum.auto()
    ACTIVE = enum.auto()
    PROMOTE = enum.auto()
    UNEVICTABLE = enum.auto()
    DIRTY = enum.auto()
    LOCKED = enum.auto()
    LRU = enum.auto()
    SWAPBACKED = enum.auto()
