"""Generic CLOCK scan machinery — the simulator's ``mm/vmscan.c``.

MULTI-CLOCK "determines the relative importance of pages within and
across tiers by running a modified version of Linux's Page Frame
Reclamation Algorithm (PFRA) ... to each memory tier separately"
(Section III).  This module implements the *unmodified* PFRA pieces that
both MULTI-CLOCK and the baselines share:

* ``mark_page_accessed`` — the supervised-access inline state update;
* ``shrink_active_list``-style deactivation with the √(10·n):1
  active:inactive ratio cap;
* ``shrink_inactive_list``-style reclaim scanning, with demotion to a
  lower tier or eviction to the backing store.

The one MULTI-CLOCK-specific transition (active-referenced page accessed
again → promote list, edge 10 of Figure 4) is injected as the
``on_second_reference`` hook so this code stays policy-neutral.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.pagestore import NO_PFN
from repro.mm.system import MemorySystem
from repro.sim.config import PAGE_SIZE

__all__ = [
    "active_ratio_threshold",
    "mark_page_accessed",
    "deactivate_excess_active",
    "shrink_inactive_list",
    "ScanResult",
    "ScanWeightFn",
]

from dataclasses import dataclass

SecondReferenceHook = Callable[[NumaNode, Page], None]

#: Per-pfn reclaim pressure: 1 keeps vanilla CLOCK behaviour, anything
#: higher strips the page's second chance (memcg proportional reclaim).
ScanWeightFn = Callable[[int], int]

_GIB = 1 << 30


def active_ratio_threshold(node: NumaNode, cap: float | None = None) -> float:
    """The PFRA active:inactive ratio limit for one node.

    Section III-C: "typically sqrt(10*n):1, where n is the amount of
    memory in GB available in the tier".  Clamped to at least 1 so tiny
    simulated tiers still keep an inactive list.
    """
    if cap is not None:
        return cap
    # "memory in GB *available* in the tier": frames taken offline (a
    # fault-injected capacity loss, or hot-remove) are not available, so
    # a node shrunk under a fault window must also shrink its active
    # list rather than keeping a ratio sized for frames it no longer has.
    gib = (node.capacity_pages - node.offline_pages) * PAGE_SIZE / _GIB
    return max(1.0, math.sqrt(10.0 * gib))


@dataclass
class ScanResult:
    """What one list scan did, for cost accounting and stats."""

    scanned: int = 0
    activated: int = 0
    deactivated: int = 0
    referenced: int = 0
    to_promote_list: int = 0
    promoted: int = 0
    demoted: int = 0
    evicted: int = 0
    system_ns: int = 0

    def merge(self, other: "ScanResult") -> "ScanResult":
        for field_name in self.__dataclass_fields__:
            setattr(self, field_name, getattr(self, field_name) + getattr(other, field_name))
        return self


def mark_page_accessed(
    system: MemorySystem,
    page: Page,
    on_second_reference: SecondReferenceHook | None = None,
) -> None:
    """Supervised-access state update (Linux ``mark_page_accessed()``).

    Walks the Figure-4 edges that fire inline on a system-call access:
    inactive-unreferenced → inactive-referenced (2), inactive-referenced →
    active (6), active-unreferenced → active-referenced (7/8), and — when
    the MULTI-CLOCK hook is supplied — active-referenced → promote (10).
    Pages already on a promote list stay there (12).
    """
    lst = page.lru
    if lst is None or page.test(PageFlags.UNEVICTABLE):
        return
    node = system.nodes[page.node_id]
    if lst.kind is ListKind.PROMOTE:
        page.set(PageFlags.REFERENCED)
        return
    if lst.kind is ListKind.INACTIVE:
        if page.test(PageFlags.REFERENCED):
            _activate(node, page)
            if system.trace is not None:
                system.trace.trace_mm_lru_activate(node.node_id, page.pfn, "mark_accessed")
        else:
            page.set(PageFlags.REFERENCED)
        return
    if lst.kind is ListKind.ACTIVE:
        if page.test(PageFlags.REFERENCED) and on_second_reference is not None:
            on_second_reference(node, page)
        else:
            page.set(PageFlags.REFERENCED)


def deactivate_excess_active(
    system: MemorySystem,
    node: NumaNode,
    is_anon: bool,
    budget: int,
    on_second_reference: SecondReferenceHook | None = None,
    ratio_cap: float | None = None,
    force: bool = False,
    scan_weight: ScanWeightFn | None = None,
) -> ScanResult:
    """Rebalance one active list (the ``shrink_active_list`` analogue).

    Runs only while the active:inactive ratio exceeds the PFRA threshold
    (or unconditionally with ``force=True``, the under-pressure case).
    Scanning from the tail: unreferenced pages are deactivated (edge 9);
    referenced-once pages get their flag and a second chance; pages
    referenced *again* go to the promote list via the hook (edge 10) or,
    without a hook, rotate to the head (vanilla CLOCK).

    ``scan_weight`` (auto-wired from an armed memcg controller carrying
    limits) applies proportional reclaim: a page weighing more than 1
    loses every second chance and deactivates on first sight.

    The forced scan with no tracer, hook or weights — the direct-reclaim
    escalation and every baseline kswapd pass — runs on pagestore columns
    instead of per-page objects: a tail segment is classified with
    boolean masks and the list is rebuilt with batch splices.  The
    columnar walk restarts where a rotation would have wrapped, which
    revisits pages in exactly the order the scalar wraparound does, so
    the two paths are bit-identical (asserted by tests and the bench).
    """
    result = ScanResult()
    lruvec = node.lruvec
    active = lruvec.list_for(ListKind.ACTIVE, is_anon)
    if scan_weight is None and system.memcg is not None and system.memcg.has_limits:
        scan_weight = system.memcg.scan_weight
    if (
        force
        and system.trace is None
        and on_second_reference is None
        and scan_weight is None
        and len(active)
    ):
        _deactivate_vector(system, node, active, is_anon, budget, result)
    else:
        _deactivate_scalar(
            system, node, active, is_anon, budget,
            on_second_reference, ratio_cap, force, scan_weight, result,
        )
    result.system_ns = system.hardware.scan_ns(result.scanned)
    if system.metrics is not None:
        system.metrics.note_vmscan(
            node.node_id, system.clock.now_ns,
            scanned=result.scanned, stolen=0, deactivated=result.deactivated,
        )
    return result


def _deactivate_scalar(
    system: MemorySystem,
    node: NumaNode,
    active,
    is_anon: bool,
    budget: int,
    on_second_reference: SecondReferenceHook | None,
    ratio_cap: float | None,
    force: bool,
    scan_weight: ScanWeightFn | None,
    result: ScanResult,
) -> None:
    """Page-at-a-time reference path: tracing, hooks, ratio checks, weights."""
    lruvec = node.lruvec
    inactive = lruvec.list_for(ListKind.INACTIVE, is_anon)
    threshold = active_ratio_threshold(node, ratio_cap)
    tr = system.trace
    for page in active.iter_from_tail():
        if result.scanned >= budget:
            break
        if not force and lruvec.active_inactive_ratio(is_anon) <= threshold:
            break
        result.scanned += 1
        accessed = page.harvest_accessed()
        if scan_weight is not None and scan_weight(page.pfn) > 1:
            # Proportional reclaim: the over-limit group's page forfeits
            # its recency ladder and deactivates immediately, arriving on
            # the inactive list unreferenced so the shrinker can take it.
            page.clear(PageFlags.ACTIVE)
            page.clear(PageFlags.REFERENCED)
            active.remove(page)
            inactive.add_head(page)
            result.deactivated += 1
            if tr is not None:
                tr.trace_mm_lru_deactivate(node.node_id, page.pfn, "memcg")
            continue
        if accessed and page.test(PageFlags.REFERENCED):
            if on_second_reference is not None:
                on_second_reference(node, page)
                result.to_promote_list += 1
            else:
                active.rotate_to_head(page)
                result.referenced += 1
        elif accessed:
            page.set(PageFlags.REFERENCED)
            active.rotate_to_head(page)
            result.referenced += 1
        elif page.test(PageFlags.REFERENCED):
            # CLOCK second chance: found idle once, drop the flag and let
            # the hand come around again before deactivating (edge 9 is
            # "not accessed for a long time", i.e. idle on two scans).
            page.clear(PageFlags.REFERENCED)
            active.rotate_to_head(page)
        else:
            page.clear(PageFlags.ACTIVE)
            active.remove(page)
            inactive.add_head(page)
            result.deactivated += 1
            if tr is not None:
                tr.trace_mm_lru_deactivate(node.node_id, page.pfn, "vmscan")


def _deactivate_vector(
    system: MemorySystem,
    node: NumaNode,
    active,
    is_anon: bool,
    budget: int,
    result: ScanResult,
) -> None:
    """Columnar force-scan over a whole tail segment per pass.

    Each pass classifies ``min(budget left, list length)`` tail pages at
    once: the accessed bit is harvested with one gather, referenced state
    with another, and the four scalar outcomes collapse to two masks —
    survivors rotate (via one :meth:`PageStore.rebuild_after_scan`
    splice, preserving visit order) and the rest move to the inactive
    head in one :meth:`PageStore.prepend_head_block`.  A budget larger
    than the list re-enters the loop, matching the scalar iterator's
    wraparound over freshly rotated pages: every page deactivates within
    three visits, so the passes terminate.
    """
    store = system.pagestore
    inactive = node.lruvec.list_for(ListKind.INACTIVE, is_anon)
    col_flags = store.flags
    col_acc = store.pte_accessed
    col_map = store.mapcount
    ref_bit = int(PageFlags.REFERENCED)
    active_bit = int(PageFlags.ACTIVE)
    lru_bit = int(PageFlags.LRU)
    while result.scanned < budget:
        n = len(active)
        if n == 0:
            break
        k = min(budget - result.scanned, n)
        visited = store.walk_tail(active, k)
        # Harvest: the accessed bit counts (and clears) only on mapped
        # pages, exactly Page.harvest_accessed.
        acc = col_acc[visited] & (col_map[visited] > 0)
        hit = visited[acc]
        if len(hit):
            col_acc[hit] = False
        ref = (col_flags[visited] & ref_bit) != 0
        keep = acc | ref
        survivors = visited[keep]
        movers = visited[~keep]
        gain_ref = visited[acc & ~ref]
        if len(gain_ref):
            col_flags[gain_ref] |= ref_bit
        lose_ref = visited[~acc & ref]
        if len(lose_ref):
            col_flags[lose_ref] &= ~ref_bit
        result.scanned += k
        result.referenced += int(acc.sum())
        # The unvisited remainder keeps its internal links; sample its
        # tail before the splice below rewrites the visited links.
        rest_tail = NO_PFN if k >= n else int(store.lru_prev[int(visited[-1])])
        store.rebuild_after_scan(active, survivors, rest_tail, len(movers))
        if len(movers):
            col_flags[movers] &= ~active_bit
            store.prepend_head_block(inactive, movers, lru_bit)
            result.deactivated += len(movers)
        if k >= n and not keep[:-1].any():
            # The scalar iterator captures its next hop before each
            # yield: visiting the original head it sees the first
            # rotated survivor — or, when nothing rotated ahead of it,
            # the end of the list, and stops with budget to spare.
            break


def shrink_inactive_list(
    system: MemorySystem,
    node: NumaNode,
    is_anon: bool,
    target_free: int,
    budget: int,
    demote_dest: NumaNode | None,
    scanner: str = "direct",
    scan_weight: ScanWeightFn | None = None,
) -> ScanResult:
    """Reclaim from one inactive list (the ``shrink_inactive_list`` analogue).

    Unreferenced tail pages are demoted to ``demote_dest`` when given
    (edge 3), or evicted to the backing store at the lowest tier (edge 4).
    Referenced pages climb the recency ladder instead (edges 1 and 6).
    Stops after freeing ``target_free`` pages or scanning ``budget``.
    ``scanner`` tags the emitted tracepoints with who is reclaiming
    ("kswapd", "demand", or the default direct-reclaim path), so a trace
    can be cross-checked against the per-daemon counters.

    ``scan_weight`` (auto-wired from an armed memcg controller carrying
    limits) applies proportional reclaim: a page weighing more than 1 is
    denied the activate/rotate ladder and reclaimed as if idle.
    """
    result = ScanResult()
    lruvec = node.lruvec
    inactive = lruvec.list_for(ListKind.INACTIVE, is_anon)
    if scan_weight is None and system.memcg is not None and system.memcg.has_limits:
        scan_weight = system.memcg.scan_weight
    tr = system.trace
    # Per-page state lives in the store columns; hoist them and the flag
    # masks so each visit costs a couple of int ops instead of a chain
    # of Page property calls.  Nothing in this loop creates pages, so
    # the columns cannot reallocate mid-scan.
    store = system.pagestore
    col_flags = store.flags
    col_acc = store.pte_accessed
    col_map = store.mapcount
    pinned_mask = int(PageFlags.LOCKED | PageFlags.UNEVICTABLE)
    ref_bit = int(PageFlags.REFERENCED)
    for page in inactive.iter_from_tail():
        if result.scanned >= budget or (result.demoted + result.evicted) >= target_free:
            break
        result.scanned += 1
        pfn = page.pfn
        flags = int(col_flags[pfn])
        if flags & pinned_mask:
            # Rotate, don't just skip: a bare continue leaves the pinned
            # page at the tail, so every subsequent scan burns budget
            # re-visiting it and reclaim stalls behind it.
            inactive.rotate_to_head(page)
            continue
        # Inlined Page.harvest_accessed: test-and-clear the PTE accessed
        # bit, counting only mapped pages.
        accessed = bool(col_acc[pfn]) and col_map[pfn] > 0
        if accessed:
            col_acc[pfn] = False
            if scan_weight is None or scan_weight(pfn) <= 1:
                if flags & ref_bit:
                    _activate(node, page)
                    result.activated += 1
                    if tr is not None:
                        tr.trace_mm_lru_activate(node.node_id, pfn, scanner)
                    continue
                col_flags[pfn] = flags | ref_bit
                inactive.rotate_to_head(page)
                result.referenced += 1
                continue
            # Over-limit group: no recency ladder — fall through and
            # reclaim the page as if it were idle (proportional reclaim).
        if demote_dest is not None and demote_dest.can_allocate():
            outcome = system.migrator.migrate_with_retry(page, demote_dest)
            if outcome.ok:
                # Fresh read-modify-write: migration may have touched
                # the flag word since it was sampled above.
                col_flags[pfn] &= ~ref_bit
                demote_dest.lruvec.list_for(ListKind.INACTIVE, is_anon).add_head(page)
                result.demoted += 1
                if tr is not None:
                    tr.trace_mm_vmscan_demote(
                        node.node_id, page.pfn, demote_dest.node_id, scanner
                    )
                continue
        if node.tier.next_lower() is None or demote_dest is None:
            try:
                result.system_ns += system.unmap_and_evict(page)
            except MemoryError:
                break  # swap full: give up, OOM is the caller's problem
            result.evicted += 1
        else:
            # Demotion was the plan but the destination refused (full, or
            # the migration failed): rotate past the page so the scan
            # keeps making progress instead of stalling on the same tail.
            inactive.rotate_to_head(page)
    result.system_ns += system.hardware.scan_ns(result.scanned)
    if system.metrics is not None:
        system.metrics.note_vmscan(
            node.node_id, system.clock.now_ns,
            scanned=result.scanned,
            stolen=result.demoted + result.evicted,
            deactivated=0,
        )
    return result


def _activate(node: NumaNode, page: Page) -> None:
    """Move a page to its active list head (edge 6)."""
    if page.lru is not None:
        page.lru.remove(page)
    page.clear(PageFlags.REFERENCED)
    page.set(PageFlags.ACTIVE)
    node.lruvec.list_for(ListKind.ACTIVE, page.is_anon).add_head(page)
