"""Memcg-style per-tenant accounting groups — the simulator's ``memcontrol.c``.

The paper's subject is a Memcached *server*: one machine, many tenants.
This module adds the isolation substrate that colocation needs, modelled
on Linux memory cgroups:

* every page charged at fault time to the faulting process's group
  (``memcg_id`` column in the :class:`~repro.mm.pagestore.PageStore`),
  with per-node RSS books maintained O(1) through migration, eviction
  and region discard;
* a page limit per group: an over-limit group is first reclaimed
  *targeted* (only its own pages evicted, Linux's ``try_charge`` →
  ``try_to_free_mem_cgroup_pages`` path), and its pages lose their CLOCK
  second chance in the shared scans via :meth:`MemcgController.scan_weight`
  (proportional reclaim);
* an OOM killer that selects a victim *group* by footprint (RSS + swap,
  the ``oom_badness`` analogue) and kills it — unmapping its pages so
  co-tenants keep running — instead of failing the whole machine.

The controller follows the same nop discipline as tracing and metrics:
``system.memcg`` is ``None`` unless :meth:`repro.machine.Machine.enable_memcg`
was called, every hook site guards on that, and an armed-but-unlimited
controller only writes its own books — runs stay bit-identical to
unarmed runs (asserted by tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mm.address_space import Process
    from repro.mm.page import Page
    from repro.mm.system import MemorySystem

__all__ = ["MemCgroup", "MemcgController", "ProcessKilledError"]

#: Pages a single targeted-reclaim pass may scan before giving up, so an
#: unsatisfiable limit degrades to slow progress instead of an O(list)
#: walk on every fault.
RECLAIM_SCAN_CAP = 512


class ProcessKilledError(RuntimeError):
    """An access by a process whose group the OOM killer already killed.

    Raised instead of :class:`~repro.mm.system.OutOfMemoryError` when the
    *faulting* process is itself the chosen victim: the machine survives,
    this tenant does not.  Drivers catch it per tenant and keep feeding
    the survivors.
    """


class MemCgroup:
    """One accounting group: RSS per node, limit, member processes."""

    __slots__ = ("id", "name", "limit_pages", "rss", "rss_total",
                 "processes", "killed")

    def __init__(self, group_id: int, name: str, limit_pages: int | None) -> None:
        self.id = group_id
        self.name = name
        self.limit_pages = limit_pages
        #: resident pages per node id (the per-tier RSS split).
        self.rss: dict[int, int] = {}
        self.rss_total = 0
        self.processes: list["Process"] = []
        self.killed = False

    @property
    def pids(self) -> list[int]:
        return [process.pid for process in self.processes]

    def over_limit(self) -> bool:
        return self.limit_pages is not None and self.rss_total > self.limit_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "max" if self.limit_pages is None else self.limit_pages
        return (f"MemCgroup(id={self.id}, name={self.name!r}, "
                f"rss={self.rss_total}, limit={limit})")


class MemcgController:
    """Per-machine registry of groups plus the charge/reclaim/OOM logic."""

    def __init__(self, system: "MemorySystem") -> None:
        self.system = system
        self.groups: list[MemCgroup] = []
        self._by_pid: dict[int, MemCgroup] = {}
        self._limited_count = 0

    # -- group lifecycle -----------------------------------------------------

    def create_group(self, name: str, limit_pages: int | None = None) -> MemCgroup:
        if limit_pages is not None and limit_pages < 0:
            raise ValueError("limit_pages must be non-negative")
        group = MemCgroup(len(self.groups), name, limit_pages)
        self.groups.append(group)
        if limit_pages is not None:
            self._limited_count += 1
        return group

    def attach(self, process: "Process", group: MemCgroup) -> None:
        """Put ``process`` in ``group`` (must not be in another group)."""
        if process.pid in self._by_pid:
            raise ValueError(f"pid {process.pid} is already in a group")
        group.processes.append(process)
        self._by_pid[process.pid] = group

    def group_of(self, pid: int) -> MemCgroup | None:
        return self._by_pid.get(pid)

    def _group_for(self, process: "Process") -> MemCgroup:
        """The process's group, auto-created (unlimited) on first charge —
        so arming the controller never requires per-process setup."""
        group = self._by_pid.get(process.pid)
        if group is None:
            group = self.create_group(process.name or f"pid{process.pid}")
            self.attach(process, group)
        return group

    @property
    def has_limits(self) -> bool:
        """Whether any group carries a limit — the scans consult this to
        keep armed-but-unlimited runs on their vectorized fast paths."""
        return self._limited_count > 0

    # -- usage queries --------------------------------------------------------

    def swap_pages_of(self, group: MemCgroup) -> int:
        backing = self.system.backing
        return sum(backing.swapped_pages_of(pid) for pid in group.pids)

    def usage_pages(self, group: MemCgroup) -> int:
        """RSS + swap — the OOM badness footprint."""
        return group.rss_total + self.swap_pages_of(group)

    # -- the charge path ------------------------------------------------------

    def try_charge(self, process: "Process") -> None:
        """Pre-allocation limit check (Linux ``try_charge``).

        An over-limit group gets targeted reclaim — only its own pages
        are evicted — before the allocation proceeds.  The limit is soft
        at the allocator: if reclaim cannot free enough, the fault still
        goes through and the group stays over limit, where proportional
        scan pressure and OOM victim preference take over.
        """
        group = self._group_for(process)
        if group.killed:
            raise ProcessKilledError(
                f"process {process.pid} ({process.name or 'anon'}) belongs to "
                f"OOM-killed group {group.name!r}"
            )
        if group.limit_pages is None:
            return
        excess = group.rss_total + 1 - group.limit_pages
        if excess <= 0:
            return
        self.system.stats.inc("memcg.limit_reclaims")
        freed = self.reclaim_group(group, excess)
        if freed:
            self.system.stats.inc("memcg.pages_reclaimed", freed)

    def commit_charge(self, page: "Page", process: "Process") -> None:
        """Charge a freshly allocated page to the faulting process's group."""
        group = self._group_for(process)
        self.system.pagestore.memcg_id[page.pfn] = group.id
        node_id = page.node_id
        group.rss[node_id] = group.rss.get(node_id, 0) + 1
        group.rss_total += 1

    def uncharge(self, page: "Page") -> None:
        """Drop a page's charge when its frame is released."""
        store = self.system.pagestore
        group_id = int(store.memcg_id[page.pfn])
        if group_id < 0:
            return
        store.memcg_id[page.pfn] = -1
        group = self.groups[group_id]
        group.rss[page.node_id] -= 1
        group.rss_total -= 1

    def note_migrated(self, page: "Page", source_id: int, dest_id: int) -> None:
        """Move a page's charge between nodes on tier migration."""
        group_id = int(self.system.pagestore.memcg_id[page.pfn])
        if group_id < 0:
            return
        group = self.groups[group_id]
        group.rss[source_id] -= 1
        group.rss[dest_id] = group.rss.get(dest_id, 0) + 1

    # -- targeted + proportional reclaim --------------------------------------

    def _lists_tail_first(self) -> Iterable:
        """Every LRU list in reclaim order: lowest tier first, inactive
        before active (evicting from the inactive tail is cheapest)."""
        for node in reversed(self.system.allocator.fallback_order):
            for kind in (ListKind.INACTIVE, ListKind.ACTIVE):
                for is_anon in (True, False):
                    yield node.lruvec.list_for(kind, is_anon)

    def reclaim_group(self, group: MemCgroup, target: int) -> int:
        """Evict up to ``target`` of ``group``'s own resident pages.

        Walks list tails picking only pages charged to ``group``; pinned
        pages are skipped, a full swap ends the pass (the machine-level
        OOM path deals with that).  Returns the number of pages freed.
        """
        store = self.system.pagestore
        memcg_col = store.memcg_id
        flags_col = store.flags
        pinned = int(PageFlags.LOCKED | PageFlags.UNEVICTABLE)
        freed = 0
        scanned = 0
        for lst in self._lists_tail_first():
            for page in lst.iter_from_tail():
                if freed >= target or scanned >= RECLAIM_SCAN_CAP:
                    return freed
                scanned += 1
                pfn = page.pfn
                if memcg_col[pfn] != group.id or flags_col[pfn] & pinned:
                    continue
                try:
                    self.system.unmap_and_evict(page)
                except MemoryError:
                    return freed
                freed += 1
        return freed

    def scan_weight(self, pfn: int) -> int:
        """Per-page reclaim pressure for the shared scans.

        Pages of an over-limit group weigh 2: they lose the CLOCK second
        chance, so the shared shrinkers reclaim the offending tenant
        harder while everyone else keeps vanilla behaviour (weight 1).
        """
        group_id = int(self.system.pagestore.memcg_id[pfn])
        if group_id < 0:
            return 1
        return 2 if self.groups[group_id].over_limit() else 1

    # -- the OOM killer --------------------------------------------------------

    def select_victim(self, faulting: "Process | None" = None) -> MemCgroup | None:
        """Pick the group the OOM killer should kill, or None.

        Preference order, deterministic throughout:

        1. the faulting process's own group, when it is over its limit
           (memcg-scoped OOM: you blew your budget, you die);
        2. any over-limit group, largest footprint (RSS + swap) first;
        3. the largest-footprint group overall.

        Only live groups with resident pages are eligible — killing a
        fully swapped-out group frees no frame and cannot unblock the
        allocation that is failing.
        """
        if faulting is not None:
            own = self._by_pid.get(faulting.pid)
            if (own is not None and not own.killed and own.rss_total > 0
                    and own.over_limit()):
                return own
        candidates = [g for g in self.groups if not g.killed and g.rss_total > 0]
        if not candidates:
            return None
        over = [g for g in candidates if g.over_limit()]
        pool = over or candidates
        return max(pool, key=lambda g: (self.usage_pages(g), -g.id))

    def kill(self, victim: MemCgroup) -> int:
        """Tear the victim down: unmap every region of every member.

        Frames go back to the node free lists and swap slots are
        released (both via ``discard_region``); the group is marked
        killed so later accesses by its processes raise
        :class:`ProcessKilledError`.  Returns the number of frames freed.
        """
        system = self.system
        freed = 0
        for process in victim.processes:
            for region in list(process.regions):
                freed += system.discard_region(process, region)
        victim.killed = True
        system.stats.inc("memcg.oom_group_kills")
        return freed

    def victim_pid(self, victim: MemCgroup) -> int:
        """The pid reported on the OOM trace: the group's first member."""
        return victim.processes[0].pid if victim.processes else -1
