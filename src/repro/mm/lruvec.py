"""Per-node LRU lists, including the paper's new *promote* lists.

Linux keeps five LRU lists per node (anon/file x inactive/active, plus
unevictable).  MULTI-CLOCK "added two lists: anonymous promote and file
promote" (Section IV).  :class:`LruVec` materialises all seven as
intrusive doubly-linked lists so that activation, rotation and removal
are O(1), like the kernel's ``list_head`` juggling.

The links themselves live in the :class:`~repro.mm.pagestore.PageStore`
columns (``lru_prev``/``lru_next``/``lru_id``); the list object holds
only head/tail pfns and a count.  That keeps per-page membership a
column read and lets scans hand whole tail segments to numpy.

Conventions: the *head* of a list is where newly (re)added pages go; scans
and eviction work from the *tail*.  A page is on at most one list at a
time — the ``lru_id`` column enforces this.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.mm.flags import PageFlags
from repro.mm.page import Page
from repro.mm.pagestore import NO_PFN, PageStore

__all__ = ["ListKind", "LruList", "LruVec"]


class ListKind(enum.Enum):
    """Which logical list a page sits on (see Figure 4 of the paper)."""

    INACTIVE = "inactive"
    ACTIVE = "active"
    PROMOTE = "promote"
    UNEVICTABLE = "unevictable"


class LruList:
    """An intrusive doubly-linked list of pages.

    A list binds to the :class:`PageStore` of the first page it sees (or
    the one passed at construction) and registers itself there; pages
    from a different store are rejected, since the link columns could
    not name them.
    """

    def __init__(
        self,
        kind: ListKind,
        is_anon: bool | None,
        store: PageStore | None = None,
    ) -> None:
        self.kind = kind
        self.is_anon = is_anon
        self._store: PageStore | None = None
        self.list_id = -1
        self._head = NO_PFN
        self._tail = NO_PFN
        self._count = 0
        if store is not None:
            self._bind(store)

    def _bind(self, store: PageStore) -> None:
        self._store = store
        self.list_id = store.register_list(self)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def name(self) -> str:
        if self.is_anon is None:
            return self.kind.value
        family = "anon" if self.is_anon else "file"
        return f"{family}_{self.kind.value}"

    @property
    def head(self) -> Page | None:
        return None if self._head < 0 else self._store.pages[self._head]

    @property
    def tail(self) -> Page | None:
        return None if self._tail < 0 else self._store.pages[self._tail]

    def _admit(self, page: Page) -> int:
        """Common entry checks for add_head/add_tail; returns the pfn."""
        store = page._store
        if store.lru_id[page.pfn] >= 0:
            raise ValueError(f"{page!r} is already on list {page.lru.name}")
        if self._store is None:
            self._bind(store)
        elif store is not self._store:
            raise ValueError(
                f"{page!r} belongs to a different page store than list {self.name}"
            )
        return page.pfn

    def add_head(self, page: Page) -> None:
        """Insert at the MRU end."""
        pfn = self._admit(page)
        store = self._store
        store.lru_prev[pfn] = NO_PFN
        store.lru_next[pfn] = self._head
        if self._head >= 0:
            store.lru_prev[self._head] = pfn
        self._head = pfn
        if self._tail < 0:
            self._tail = pfn
        store.lru_id[pfn] = self.list_id
        store.flags[pfn] |= int(PageFlags.LRU)
        self._count += 1

    def add_tail(self, page: Page) -> None:
        """Insert at the LRU end (next in line for a scan)."""
        pfn = self._admit(page)
        store = self._store
        store.lru_next[pfn] = NO_PFN
        store.lru_prev[pfn] = self._tail
        if self._tail >= 0:
            store.lru_next[self._tail] = pfn
        self._tail = pfn
        if self._head < 0:
            self._head = pfn
        store.lru_id[pfn] = self.list_id
        store.flags[pfn] |= int(PageFlags.LRU)
        self._count += 1

    def remove(self, page: Page) -> None:
        """Unlink ``page`` from this list in O(1)."""
        store = page._store
        pfn = page.pfn
        if store is not self._store or store.lru_id[pfn] != self.list_id:
            raise ValueError(f"{page!r} is not on list {self.name}")
        prev = int(store.lru_prev[pfn])
        nxt = int(store.lru_next[pfn])
        if prev >= 0:
            store.lru_next[prev] = nxt
        else:
            self._head = nxt
        if nxt >= 0:
            store.lru_prev[nxt] = prev
        else:
            self._tail = prev
        store.lru_prev[pfn] = store.lru_next[pfn] = NO_PFN
        store.lru_id[pfn] = -1
        store.flags[pfn] &= ~int(PageFlags.LRU)
        self._count -= 1

    def pop_tail(self) -> Page | None:
        """Remove and return the LRU-end page, or None if empty."""
        if self._tail < 0:
            return None
        victim = self._store.pages[self._tail]
        self.remove(victim)
        return victim

    def rotate_to_head(self, page: Page) -> None:
        """Move ``page`` to the MRU end — the CLOCK second chance."""
        store = page._store
        pfn = page.pfn
        if store is not self._store or store.lru_id[pfn] != self.list_id:
            raise ValueError(f"{page!r} is not on list {self.name}")
        if self._head == pfn:
            return
        prev = int(store.lru_prev[pfn])
        nxt = int(store.lru_next[pfn])
        store.lru_next[prev] = nxt  # prev exists: pfn is not the head
        if nxt >= 0:
            store.lru_prev[nxt] = prev
        else:
            self._tail = prev
        store.lru_prev[pfn] = NO_PFN
        store.lru_next[pfn] = self._head
        store.lru_prev[self._head] = pfn
        self._head = pfn

    def iter_from_tail(self) -> Iterator[Page]:
        """Iterate LRU→MRU.  Safe against removing the *yielded* page."""
        cursor = self._tail
        store = self._store
        while cursor >= 0:
            nxt = int(store.lru_prev[cursor])
            yield store.pages[cursor]
            cursor = nxt

    def __iter__(self) -> Iterator[Page]:
        cursor = self._head
        store = self._store
        while cursor >= 0:
            nxt = int(store.lru_next[cursor])
            yield store.pages[cursor]
            cursor = nxt


class LruVec:
    """The full set of per-node LRU lists.

    Mirrors Linux's ``lruvec`` plus the paper's two promote lists:
    anon/file x inactive/active/promote, and one unevictable list.
    """

    def __init__(self, store: PageStore | None = None) -> None:
        self._lists: dict[tuple[ListKind, bool | None], LruList] = {}
        for kind in (ListKind.INACTIVE, ListKind.ACTIVE, ListKind.PROMOTE):
            for is_anon in (True, False):
                self._lists[(kind, is_anon)] = LruList(kind, is_anon, store=store)
        self._lists[(ListKind.UNEVICTABLE, None)] = LruList(
            ListKind.UNEVICTABLE, None, store=store
        )

    def list_for(self, kind: ListKind, is_anon: bool | None = None) -> LruList:
        """Look up a list; unevictable ignores the anon/file split."""
        key = (kind, None if kind is ListKind.UNEVICTABLE else is_anon)
        return self._lists[key]

    def list_of(self, page: Page, kind: ListKind) -> LruList:
        """The list of ``kind`` matching the page's anon/file family."""
        return self.list_for(kind, page.is_anon)

    def all_lists(self) -> list[LruList]:
        return list(self._lists.values())

    def evictable_pages(self) -> int:
        """Total pages across every list except unevictable."""
        return sum(
            len(lst)
            for (kind, __), lst in self._lists.items()
            if kind is not ListKind.UNEVICTABLE
        )

    def counts(self) -> dict[str, int]:
        """Per-list page counts keyed by list name (for /proc-style stats)."""
        return {lst.name: len(lst) for lst in self._lists.values()}

    def active_inactive_ratio(self, is_anon: bool) -> float:
        """active:inactive size ratio for one page family.

        Section III-C rebalances when this exceeds a tunable threshold
        (typically sqrt(10*n):1 for n GiB of tier memory).
        """
        active = len(self.list_for(ListKind.ACTIVE, is_anon))
        inactive = len(self.list_for(ListKind.INACTIVE, is_anon))
        if inactive == 0:
            return float("inf") if active else 0.0
        return active / inactive
