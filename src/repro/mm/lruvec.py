"""Per-node LRU lists, including the paper's new *promote* lists.

Linux keeps five LRU lists per node (anon/file x inactive/active, plus
unevictable).  MULTI-CLOCK "added two lists: anonymous promote and file
promote" (Section IV).  :class:`LruVec` materialises all seven as
intrusive doubly-linked lists so that activation, rotation and removal
are O(1), like the kernel's ``list_head`` juggling.

Conventions: the *head* of a list is where newly (re)added pages go; scans
and eviction work from the *tail*.  A page is on at most one list at a
time — the ``Page.lru`` back-pointer enforces this.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.mm.flags import PageFlags
from repro.mm.page import Page

__all__ = ["ListKind", "LruList", "LruVec"]


class ListKind(enum.Enum):
    """Which logical list a page sits on (see Figure 4 of the paper)."""

    INACTIVE = "inactive"
    ACTIVE = "active"
    PROMOTE = "promote"
    UNEVICTABLE = "unevictable"


class LruList:
    """An intrusive doubly-linked list of pages."""

    def __init__(self, kind: ListKind, is_anon: bool | None) -> None:
        self.kind = kind
        self.is_anon = is_anon
        self._head: Page | None = None
        self._tail: Page | None = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def name(self) -> str:
        if self.is_anon is None:
            return self.kind.value
        family = "anon" if self.is_anon else "file"
        return f"{family}_{self.kind.value}"

    @property
    def head(self) -> Page | None:
        return self._head

    @property
    def tail(self) -> Page | None:
        return self._tail

    def add_head(self, page: Page) -> None:
        """Insert at the MRU end."""
        self._check_free(page)
        page.lru_prev = None
        page.lru_next = self._head
        if self._head is not None:
            self._head.lru_prev = page
        self._head = page
        if self._tail is None:
            self._tail = page
        page.lru = self
        page.set(PageFlags.LRU)
        self._count += 1

    def add_tail(self, page: Page) -> None:
        """Insert at the LRU end (next in line for a scan)."""
        self._check_free(page)
        page.lru_next = None
        page.lru_prev = self._tail
        if self._tail is not None:
            self._tail.lru_next = page
        self._tail = page
        if self._head is None:
            self._head = page
        page.lru = self
        page.set(PageFlags.LRU)
        self._count += 1

    def remove(self, page: Page) -> None:
        """Unlink ``page`` from this list in O(1)."""
        if page.lru is not self:
            raise ValueError(f"{page!r} is not on list {self.name}")
        prev, nxt = page.lru_prev, page.lru_next
        if prev is not None:
            prev.lru_next = nxt
        else:
            self._head = nxt
        if nxt is not None:
            nxt.lru_prev = prev
        else:
            self._tail = prev
        page.lru_prev = page.lru_next = None
        page.lru = None
        page.clear(PageFlags.LRU)
        self._count -= 1

    def pop_tail(self) -> Page | None:
        """Remove and return the LRU-end page, or None if empty."""
        victim = self._tail
        if victim is not None:
            self.remove(victim)
        return victim

    def rotate_to_head(self, page: Page) -> None:
        """Move ``page`` to the MRU end — the CLOCK second chance."""
        self.remove(page)
        self.add_head(page)

    def iter_from_tail(self) -> Iterator[Page]:
        """Iterate LRU→MRU.  Safe against removing the *yielded* page."""
        cursor = self._tail
        while cursor is not None:
            nxt = cursor.lru_prev
            yield cursor
            cursor = nxt

    def __iter__(self) -> Iterator[Page]:
        cursor = self._head
        while cursor is not None:
            nxt = cursor.lru_next
            yield cursor
            cursor = nxt

    @staticmethod
    def _check_free(page: Page) -> None:
        if page.lru is not None:
            raise ValueError(f"{page!r} is already on list {page.lru.name}")


class LruVec:
    """The full set of per-node LRU lists.

    Mirrors Linux's ``lruvec`` plus the paper's two promote lists:
    anon/file x inactive/active/promote, and one unevictable list.
    """

    def __init__(self) -> None:
        self._lists: dict[tuple[ListKind, bool | None], LruList] = {}
        for kind in (ListKind.INACTIVE, ListKind.ACTIVE, ListKind.PROMOTE):
            for is_anon in (True, False):
                self._lists[(kind, is_anon)] = LruList(kind, is_anon)
        self._lists[(ListKind.UNEVICTABLE, None)] = LruList(ListKind.UNEVICTABLE, None)

    def list_for(self, kind: ListKind, is_anon: bool | None = None) -> LruList:
        """Look up a list; unevictable ignores the anon/file split."""
        key = (kind, None if kind is ListKind.UNEVICTABLE else is_anon)
        return self._lists[key]

    def list_of(self, page: Page, kind: ListKind) -> LruList:
        """The list of ``kind`` matching the page's anon/file family."""
        return self.list_for(kind, page.is_anon)

    def all_lists(self) -> list[LruList]:
        return list(self._lists.values())

    def evictable_pages(self) -> int:
        """Total pages across every list except unevictable."""
        return sum(
            len(lst)
            for (kind, __), lst in self._lists.items()
            if kind is not ListKind.UNEVICTABLE
        )

    def counts(self) -> dict[str, int]:
        """Per-list page counts keyed by list name (for /proc-style stats)."""
        return {lst.name: len(lst) for lst in self._lists.values()}

    def active_inactive_ratio(self, is_anon: bool) -> float:
        """active:inactive size ratio for one page family.

        Section III-C rebalances when this exceeds a tunable threshold
        (typically sqrt(10*n):1 for n GiB of tier memory).
        """
        active = len(self.list_for(ListKind.ACTIVE, is_anon))
        inactive = len(self.list_for(ListKind.INACTIVE, is_anon))
        if inactive == 0:
            return float("inf") if active else 0.0
        return active / inactive
