"""Block-storage backing: the tier below the lowest memory tier.

Section III-C's last resort before the OOM killer: pages evicted from the
lowest memory tier "are written back to block storage (i.e., file-backed
pages to file system and anonymous pages to the swap area)".  We track
residency only — no contents — because the simulator needs to know *that*
a later access must pay a major-fault cost, not *what* the bytes were.
"""

from __future__ import annotations

__all__ = ["BackingStore"]


class BackingStore:
    """Swap area (anonymous pages) plus the filesystem (file pages)."""

    def __init__(self, swap_capacity_pages: int) -> None:
        if swap_capacity_pages <= 0:
            raise ValueError("swap capacity must be positive")
        self.swap_capacity_pages = swap_capacity_pages
        self._swapped: set[tuple[int, int]] = set()
        self.swap_outs = 0
        self.swap_ins = 0
        self.file_writebacks = 0
        self.file_refaults = 0

    @property
    def swapped_pages(self) -> int:
        return len(self._swapped)

    @property
    def swap_full(self) -> bool:
        return len(self._swapped) >= self.swap_capacity_pages

    def swap_out(self, process_id: int, vpage: int) -> None:
        """Write one anonymous page out; raises MemoryError if swap is full.

        A full swap is the condition under which the paper's demotion path
        "trigger[s] the out-of-memory (OOM) killer as the last option".
        """
        if self.swap_full:
            raise MemoryError("swap space exhausted")
        key = (process_id, vpage)
        if key in self._swapped:
            raise ValueError(f"page {key} is already swapped out")
        self._swapped.add(key)
        self.swap_outs += 1

    def is_swapped(self, process_id: int, vpage: int) -> bool:
        return (process_id, vpage) in self._swapped

    def swap_in(self, process_id: int, vpage: int) -> None:
        """Consume the swap slot on a major fault."""
        key = (process_id, vpage)
        if key not in self._swapped:
            raise KeyError(f"page {key} is not in swap")
        self._swapped.remove(key)
        self.swap_ins += 1

    def writeback_file(self) -> None:
        """Account a file page dropped (clean) or written back (dirty)."""
        self.file_writebacks += 1

    def refault_file(self) -> None:
        """Account a file page re-read from the filesystem."""
        self.file_refaults += 1
