"""Block-storage backing: the tier below the lowest memory tier.

Section III-C's last resort before the OOM killer: pages evicted from the
lowest memory tier "are written back to block storage (i.e., file-backed
pages to file system and anonymous pages to the swap area)".  We track
residency only — no contents — because the simulator needs to know *that*
a later access must pay a major-fault cost, not *what* the bytes were.
"""

from __future__ import annotations

__all__ = ["BackingStore"]


class BackingStore:
    """Swap area (anonymous pages) plus the filesystem (file pages)."""

    def __init__(self, swap_capacity_pages: int) -> None:
        if swap_capacity_pages <= 0:
            raise ValueError("swap capacity must be positive")
        self.swap_capacity_pages = swap_capacity_pages
        self._swapped: set[tuple[int, int]] = set()
        # Incremental per-process residency count, so residency probes
        # read swap occupancy in O(1) instead of rescanning every vpage.
        self._per_process: dict[int, int] = {}
        self.swap_outs = 0
        self.swap_ins = 0
        self.file_writebacks = 0
        self.file_refaults = 0
        # Tracepoint sink, installed by Machine.enable_tracing.
        self.trace = None
        # Metrics registry, installed by Machine.enable_metrics.
        self.metrics = None

    @property
    def swapped_pages(self) -> int:
        return len(self._swapped)

    @property
    def swap_full(self) -> bool:
        return len(self._swapped) >= self.swap_capacity_pages

    def swap_out(self, process_id: int, vpage: int) -> None:
        """Write one anonymous page out; raises MemoryError if swap is full.

        A full swap is the condition under which the paper's demotion path
        "trigger[s] the out-of-memory (OOM) killer as the last option".
        """
        if self.swap_full:
            raise MemoryError("swap space exhausted")
        key = (process_id, vpage)
        if key in self._swapped:
            raise ValueError(f"page {key} is already swapped out")
        self._swapped.add(key)
        self._per_process[process_id] = self._per_process.get(process_id, 0) + 1
        self.swap_outs += 1
        if self.trace is not None:
            self.trace.trace_mm_swap_out(process_id, vpage)
        if self.metrics is not None:
            self.metrics.note_swap_out(process_id, vpage)

    def is_swapped(self, process_id: int, vpage: int) -> bool:
        return (process_id, vpage) in self._swapped

    def swapped_pages_of(self, process_id: int) -> int:
        """How many of one process's pages sit in swap right now."""
        return self._per_process.get(process_id, 0)

    def swap_in(self, process_id: int, vpage: int) -> None:
        """Consume the swap slot on a major fault."""
        key = (process_id, vpage)
        if key not in self._swapped:
            raise KeyError(f"page {key} is not in swap")
        self._swapped.remove(key)
        remaining = self._per_process[process_id] - 1
        if remaining:
            self._per_process[process_id] = remaining
        else:
            del self._per_process[process_id]
        self.swap_ins += 1
        if self.trace is not None:
            self.trace.trace_mm_swap_in(process_id, vpage)
        if self.metrics is not None:
            self.metrics.note_swap_in(process_id, vpage)

    def writeback_file(self) -> None:
        """Account a file page dropped (clean) or written back (dirty)."""
        self.file_writebacks += 1

    def refault_file(self) -> None:
        """Account a file page re-read from the filesystem."""
        self.file_refaults += 1
