"""Process page tables and reverse mappings.

The unsupervised-access path of Section III-A rests on the hardware
accessed bit: the CPU sets it in the PTE on every touch, and scans
test-and-clear it.  :class:`PageTableEntry` carries that bit (plus the
dirty bit the Discussion section proposes weighting by, and a *poisoned*
bit used by the hint-page-fault baselines, which unmap pages to force a
software fault on next access).

With the struct-of-arrays page store the accessed/dirty bits live as
page-level columns (the OR across a page's mappings — exactly the signal
``harvest_accessed`` consumes); the PTE exposes them as properties.  The
table additionally maintains a dense ``vpage → pfn`` translation column
(:attr:`PageTable.v2p`) so the batched touch path can resolve whole
access vectors with one numpy gather instead of a dict probe per access.
"""

from __future__ import annotations

import numpy as np

from repro.mm.page import Page

__all__ = ["PageTableEntry", "PageTable"]

#: Above this vpage the dense translation column would be unreasonably
#: large; the table drops to dict-only mode and the vector path skips it.
_MAX_DENSE_VPAGE = 1 << 26


class PageTableEntry:
    """One virtual-to-physical translation."""

    __slots__ = ("table", "process_id", "vpage", "page", "_poisoned")

    def __init__(
        self,
        process_id: int,
        vpage: int,
        page: Page,
        table: "PageTable | None" = None,
    ) -> None:
        self.table = table
        self.process_id = process_id
        self.vpage = vpage
        self.page = page
        self._poisoned = False

    @property
    def accessed(self) -> bool:
        page = self.page
        return bool(page._store.pte_accessed[page.pfn])

    @accessed.setter
    def accessed(self, value: bool) -> None:
        page = self.page
        page._store.pte_accessed[page.pfn] = value

    @property
    def dirty(self) -> bool:
        page = self.page
        return bool(page._store.pte_dirty[page.pfn])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        page = self.page
        page._store.pte_dirty[page.pfn] = value

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    @poisoned.setter
    def poisoned(self, value: bool) -> None:
        value = bool(value)
        if value == self._poisoned:
            return
        self._poisoned = value
        table = self.table
        if table is not None:
            table._poison_count += 1 if value else -1

    def touch(self, is_write: bool) -> None:
        """What the MMU does on an ordinary access."""
        page = self.page
        store = page._store
        store.pte_accessed[page.pfn] = True
        if is_write:
            store.pte_dirty[page.pfn] = True

    def __repr__(self) -> str:
        bits = "".join(
            bit
            for bit, on in (("A", self.accessed), ("D", self.dirty), ("P", self.poisoned))
            if on
        )
        return f"PTE(pid={self.process_id}, vpage={self.vpage}, pfn={self.page.pfn}, {bits or '-'})"


class PageTable:
    """Virtual page → PTE map for one process."""

    def __init__(self, process_id: int) -> None:
        self.process_id = process_id
        self._entries: dict[int, PageTableEntry] = {}
        #: dense vpage → pfn translation (-1 unmapped); grown on demand.
        self.v2p = np.full(64, -1, dtype=np.int64)
        #: False once a vpage beyond the dense bound was mapped; the
        #: vector touch path requires a dense table.
        self.dense = True
        #: live poisoned PTEs; the vector touch path requires zero.
        self._poison_count = 0
        #: bumped on every unmap; the vector touch path caches gathered
        #: translations and only re-gathers when this moves (a *new*
        #: mapping can never invalidate a cached hit, an unmap can).
        self._unmap_gen = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._entries

    def lookup(self, vpage: int) -> PageTableEntry | None:
        return self._entries.get(vpage)

    def ensure_dense_capacity(self, size: int) -> bool:
        """Grow ``v2p`` to cover ``size`` vpages; False if out of range."""
        if size > _MAX_DENSE_VPAGE:
            return False
        if size > len(self.v2p):
            grown = np.full(max(size, len(self.v2p) * 2), -1, dtype=np.int64)
            grown[: len(self.v2p)] = self.v2p
            self.v2p = grown
        return True

    def map(self, vpage: int, page: Page) -> PageTableEntry:
        """Install a translation and register it in the page's rmap."""
        if vpage in self._entries:
            raise ValueError(f"vpage {vpage} is already mapped in pid {self.process_id}")
        pte = PageTableEntry(self.process_id, vpage, page, table=self)
        self._entries[vpage] = pte
        page.rmap.append(pte)
        page._store.mapcount[page.pfn] += 1
        if self.dense:
            if self.ensure_dense_capacity(vpage + 1):
                self.v2p[vpage] = page.pfn
            else:
                self.dense = False
        return pte

    def unmap(self, vpage: int) -> PageTableEntry:
        """Remove a translation and detach it from the page's rmap."""
        pte = self._entries.pop(vpage, None)
        if pte is None:
            raise KeyError(f"vpage {vpage} is not mapped in pid {self.process_id}")
        page = pte.page
        page.rmap.remove(pte)
        store = page._store
        store.mapcount[page.pfn] -= 1
        if store.mapcount[page.pfn] == 0:
            # The last mapping took the harvested reference signal with
            # it: an unmapped page never reads as accessed or dirty.
            store.pte_accessed[page.pfn] = False
            store.pte_dirty[page.pfn] = False
        if pte.poisoned:
            pte.poisoned = False
        if vpage < len(self.v2p):
            self.v2p[vpage] = -1
        self._unmap_gen += 1
        return pte

    def entries(self) -> list[PageTableEntry]:
        return list(self._entries.values())
