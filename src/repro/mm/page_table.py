"""Process page tables and reverse mappings.

The unsupervised-access path of Section III-A rests on the hardware
accessed bit: the CPU sets it in the PTE on every touch, and scans
test-and-clear it.  :class:`PageTableEntry` carries that bit (plus the
dirty bit the Discussion section proposes weighting by, and a *poisoned*
bit used by the hint-page-fault baselines, which unmap pages to force a
software fault on next access).
"""

from __future__ import annotations

from repro.mm.page import Page

__all__ = ["PageTableEntry", "PageTable"]


class PageTableEntry:
    """One virtual-to-physical translation."""

    __slots__ = ("process_id", "vpage", "page", "accessed", "dirty", "poisoned")

    def __init__(self, process_id: int, vpage: int, page: Page) -> None:
        self.process_id = process_id
        self.vpage = vpage
        self.page = page
        self.accessed = False
        self.dirty = False
        self.poisoned = False

    def touch(self, is_write: bool) -> None:
        """What the MMU does on an ordinary access."""
        self.accessed = True
        if is_write:
            self.dirty = True

    def __repr__(self) -> str:
        bits = "".join(
            bit
            for bit, on in (("A", self.accessed), ("D", self.dirty), ("P", self.poisoned))
            if on
        )
        return f"PTE(pid={self.process_id}, vpage={self.vpage}, pfn={self.page.pfn}, {bits or '-'})"


class PageTable:
    """Virtual page → PTE map for one process."""

    def __init__(self, process_id: int) -> None:
        self.process_id = process_id
        self._entries: dict[int, PageTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._entries

    def lookup(self, vpage: int) -> PageTableEntry | None:
        return self._entries.get(vpage)

    def map(self, vpage: int, page: Page) -> PageTableEntry:
        """Install a translation and register it in the page's rmap."""
        if vpage in self._entries:
            raise ValueError(f"vpage {vpage} is already mapped in pid {self.process_id}")
        pte = PageTableEntry(self.process_id, vpage, page)
        self._entries[vpage] = pte
        page.rmap.append(pte)
        return pte

    def unmap(self, vpage: int) -> PageTableEntry:
        """Remove a translation and detach it from the page's rmap."""
        pte = self._entries.pop(vpage, None)
        if pte is None:
            raise KeyError(f"vpage {vpage} is not mapped in pid {self.process_id}")
        pte.page.rmap.remove(pte)
        return pte

    def entries(self) -> list[PageTableEntry]:
        return list(self._entries.values())
