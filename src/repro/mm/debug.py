"""Kernel-style invariant checking — the simulator's ``CONFIG_DEBUG_VM``.

The kernel catches list corruption and accounting drift with
``VM_BUG_ON_PAGE`` assertions compiled in under ``CONFIG_DEBUG_VM``; the
simulator gets the same safety net here.  :func:`check_invariants` walks
the whole machine — every node, every LRU list, every page table — and
returns a list of violations instead of asserting, so callers choose
between logging (the chaos harness), raising (strict tests) and counting
(the periodic daemon).

Checks, mirroring their kernel analogues:

* list structure   — forward/backward links agree, lengths match the
  maintained counts, head/tail terminate properly (``list_head`` checks);
* single residence — every page sits on exactly one list, on the node it
  is accounted to, with its LRU flag matching (``VM_BUG_ON_PAGE(PageLRU)``);
* frame accounting — each node's ``used_pages`` equals the distinct pages
  resident on it (LRU lists plus mapped off-list pages), and
  used + free + offline covers the capacity exactly;
* rmap symmetry    — every PTE is in its page's rmap and vice versa;
* swap accounting  — the backing store's slot count is consistent and
  within capacity;
* memcg accounting — when the controller is armed, every group's per-node
  RSS books match a recount of resident frames charged to it (via the
  page store's ``memcg_id`` column), no book is negative, totals are the
  sum of per-node entries, charged frames name a real group, and a
  killed group holds no residual charge;
* counter monotonicity — stat counters only ever grow between checks
  (the stateful part, held by :class:`InvariantChecker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mm.system import MemorySystem

__all__ = ["Violation", "InvariantError", "check_invariants", "InvariantChecker"]


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, and what it saw."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


class InvariantError(AssertionError):
    """Raised in strict mode — the simulator's ``VM_BUG_ON``."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  {v}" for v in violations)
        super().__init__(f"{len(violations)} VM invariant violation(s):\n{lines}")


def check_invariants(system: "MemorySystem") -> list[Violation]:
    """Validate the whole machine's MM state; returns all violations found."""
    violations: list[Violation] = []
    seen_on_lists: dict[int, str] = {}  # pfn -> list description
    resident_by_node: dict[int, set[int]] = {}  # node id -> resident pfns

    for node in system.nodes.values():
        node_resident: set[int] = set()
        resident_by_node[node.node_id] = node_resident
        for lst in node.lruvec.all_lists():
            where = f"node{node.node_id}:{lst.name}"
            count = 0
            prev = None
            cursor = lst.head
            broken = False
            while cursor is not None:
                count += 1
                if count > len(lst):
                    violations.append(Violation(
                        "list-structure",
                        f"{where} walk exceeds its count of {len(lst)} (cycle?)",
                    ))
                    broken = True
                    break
                if cursor.lru_prev is not prev:
                    violations.append(Violation(
                        "list-structure",
                        f"{where} back-link of pfn={cursor.pfn} does not match walk",
                    ))
                if cursor.lru is not lst:
                    violations.append(Violation(
                        "list-structure",
                        f"pfn={cursor.pfn} on {where} but its lru pointer says "
                        f"{cursor.lru.name if cursor.lru else None}",
                    ))
                if not cursor.test(PageFlags.LRU):
                    violations.append(Violation(
                        "list-structure", f"pfn={cursor.pfn} on {where} without the LRU flag"
                    ))
                if cursor.pfn in seen_on_lists:
                    violations.append(Violation(
                        "single-residence",
                        f"pfn={cursor.pfn} on both {seen_on_lists[cursor.pfn]} and {where}",
                    ))
                else:
                    seen_on_lists[cursor.pfn] = where
                if cursor.node_id != node.node_id:
                    violations.append(Violation(
                        "single-residence",
                        f"pfn={cursor.pfn} on {where} but accounted to node {cursor.node_id}",
                    ))
                if lst.kind is ListKind.UNEVICTABLE and not cursor.test(PageFlags.UNEVICTABLE):
                    violations.append(Violation(
                        "single-residence",
                        f"pfn={cursor.pfn} on {where} without the UNEVICTABLE flag",
                    ))
                node_resident.add(cursor.pfn)
                prev = cursor
                cursor = cursor.lru_next
            if not broken:
                if count != len(lst):
                    violations.append(Violation(
                        "list-structure",
                        f"{where} holds {count} pages but counts {len(lst)}",
                    ))
                if lst.tail is not prev:
                    violations.append(Violation(
                        "list-structure", f"{where} tail pointer does not end the walk"
                    ))

        # Frame accounting: resident pages on this node's lists, plus any
        # mapped pages transiently off-LRU, must equal used_pages exactly.
        for process in system.processes.values():
            for pte in process.page_table.entries():
                if pte.page.node_id == node.node_id:
                    node_resident.add(pte.page.pfn)
        if len(node_resident) != node.used_pages:
            violations.append(Violation(
                "frame-accounting",
                f"node{node.node_id} accounts {node.used_pages} used frames but "
                f"{len(node_resident)} pages are resident",
            ))
        if node.used_pages < 0 or node.free_pages < 0 or node.offline_pages < 0:
            violations.append(Violation(
                "frame-accounting",
                f"node{node.node_id} has negative accounting: used={node.used_pages} "
                f"free={node.free_pages} offline={node.offline_pages}",
            ))
        if node.used_pages + node.free_pages + node.offline_pages != node.capacity_pages:
            violations.append(Violation(
                "frame-accounting",
                f"node{node.node_id} used+free+offline "
                f"{node.used_pages}+{node.free_pages}+{node.offline_pages} "
                f"!= capacity {node.capacity_pages}",
            ))

    # Rmap symmetry, both directions.
    for process in system.processes.values():
        for pte in process.page_table.entries():
            if pte not in pte.page.rmap:
                violations.append(Violation(
                    "rmap",
                    f"pid={pte.process_id} vpage={pte.vpage} maps pfn={pte.page.pfn} "
                    f"but is missing from its rmap",
                ))
        for pte in process.page_table.entries():
            for mapper in pte.page.rmap:
                owner = system.processes.get(mapper.process_id)
                if owner is None or owner.page_table.lookup(mapper.vpage) is not mapper:
                    violations.append(Violation(
                        "rmap",
                        f"pfn={pte.page.pfn} rmap holds a stale PTE "
                        f"(pid={mapper.process_id} vpage={mapper.vpage})",
                    ))

    backing = system.backing
    if backing.swapped_pages > backing.swap_capacity_pages:
        violations.append(Violation(
            "swap-accounting",
            f"{backing.swapped_pages} pages swapped exceeds capacity "
            f"{backing.swap_capacity_pages}",
        ))
    if backing.swap_outs - backing.swap_ins != backing.swapped_pages:
        violations.append(Violation(
            "swap-accounting",
            f"swap_outs-swap_ins {backing.swap_outs}-{backing.swap_ins} "
            f"!= resident slots {backing.swapped_pages}",
        ))

    # Memcg accounting: the controller's O(1) books must equal a recount
    # of resident frames from the store's memcg_id column.
    memcg = system.memcg
    if memcg is not None:
        memcg_col = system.pagestore.memcg_id
        recount: dict[tuple[int, int], int] = {}  # (group id, node id) -> pages
        for node_id, resident in resident_by_node.items():
            for pfn in resident:
                group_id = int(memcg_col[pfn])
                if group_id < 0:
                    continue  # uncharged frame (allocated before arming)
                if group_id >= len(memcg.groups):
                    violations.append(Violation(
                        "memcg-accounting",
                        f"pfn={pfn} on node{node_id} is charged to group "
                        f"{group_id}, but only {len(memcg.groups)} exist",
                    ))
                    continue
                key = (group_id, node_id)
                recount[key] = recount.get(key, 0) + 1
        for group in memcg.groups:
            for node_id, count in group.rss.items():
                if count < 0:
                    violations.append(Violation(
                        "memcg-accounting",
                        f"group {group.name!r} books negative rss {count} "
                        f"on node{node_id}",
                    ))
            if group.rss_total != sum(group.rss.values()):
                violations.append(Violation(
                    "memcg-accounting",
                    f"group {group.name!r} rss_total {group.rss_total} != "
                    f"sum of per-node books {sum(group.rss.values())}",
                ))
            if group.killed and group.rss_total != 0:
                violations.append(Violation(
                    "memcg-accounting",
                    f"killed group {group.name!r} still holds "
                    f"{group.rss_total} resident pages",
                ))
            node_ids = set(group.rss) | {
                nid for (gid, nid) in recount if gid == group.id
            }
            for node_id in sorted(node_ids):
                booked = group.rss.get(node_id, 0)
                actual = recount.get((group.id, node_id), 0)
                if booked != actual:
                    violations.append(Violation(
                        "memcg-accounting",
                        f"group {group.name!r} books {booked} pages on "
                        f"node{node_id} but {actual} frames are charged to it",
                    ))
    return violations


class InvariantChecker:
    """Periodic / on-demand invariant checking with counter tracking.

    Stateless structural checks come from :func:`check_invariants`; this
    object adds the *monotone counters* check (needs the previous
    snapshot) and the bookkeeping to run from the daemon scheduler:
    ``debug_vm.checks`` counts sweeps, ``debug_vm.violations`` accumulates
    findings, and ``last_violations`` keeps the most recent detail for
    reporting.  ``strict=True`` raises :class:`InvariantError` instead —
    the panic-on-corruption configuration used by the chaos tests.
    """

    #: counters the checker itself bumps, exempt from the monotone check
    #: (they are, but excluding them keeps the check self-contained).
    _SELF = ("debug_vm.checks", "debug_vm.violations")

    def __init__(self, system: "MemorySystem", *, strict: bool = False) -> None:
        self.system = system
        self.strict = strict
        self.last_violations: list[Violation] = []
        self._c_checks = system.stats.counter("debug_vm.checks")
        self._c_violations = system.stats.counter("debug_vm.violations")
        self._last_counters: dict[str, int] = {}

    @property
    def name(self) -> str:
        return "debug_vm"

    def check(self) -> list[Violation]:
        """One full sweep; records, remembers and (in strict mode) raises."""
        violations = check_invariants(self.system)
        current = self.system.stats.snapshot()
        for key, value in self._last_counters.items():
            if key in self._SELF:
                continue
            if current.get(key, 0) < value:
                violations.append(Violation(
                    "counter-monotone",
                    f"counter {key} went backwards: {value} -> {current.get(key, 0)}",
                ))
        self._last_counters = current
        self._c_checks.n += 1
        self._c_violations.n += len(violations)
        self.last_violations = violations
        if violations and self.strict:
            raise InvariantError(violations)
        return violations

    def run(self, now_ns: int) -> int:
        """Daemon body: sweep and charge nothing (a pure observer)."""
        self.check()
        return 0
