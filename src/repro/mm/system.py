"""The assembled memory-management substrate handed to tiering policies.

:class:`MemorySystem` plays the role of the kernel MM layer: it owns the
NUMA nodes, the allocator, the migration engine, the backing store and
the processes, and it implements the access path every simulated memory
reference takes (fault handling, accessed-bit updates, latency charging).
Tiering *policy* — which lists pages move between and when they migrate —
is delegated to a :class:`~repro.policies.base.TieringPolicy` attached by
the machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mm.address_space import MemoryRegion, Process
from repro.mm.alloc import PageAllocator
from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel, MemoryTier
from repro.mm.memcg import ProcessKilledError
from repro.mm.migrate import MigrationEngine
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.page_table import PageTableEntry
from repro.mm.pagestore import PageStore
from repro.mm.swap import BackingStore
from repro.sim.config import SimulationConfig
from repro.sim.stats import StatsBook
from repro.sim.vclock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.policies.base import TieringPolicy

__all__ = [
    "MemorySystem",
    "OutOfMemoryError",
    "ProcessKilledError",
    "OOM_RECLAIM_RETRIES",
]

OOM_RECLAIM_RETRIES = 4
"""Direct-reclaim passes the touch path absorbs before the OOM killer
fires — the analogue of ``__alloc_pages_slowpath`` looping while reclaim
keeps making progress."""


class OutOfMemoryError(RuntimeError):
    """Raised when reclaim cannot free a frame — the OOM killer fired."""


class MemorySystem:
    """Kernel-side state of one simulated hybrid-memory machine."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config.validated()
        self.clock = VirtualClock()
        self.stats = StatsBook()
        self.hardware = HardwareModel(config.latency)
        # The struct-of-arrays page store: every page this machine ever
        # allocates lives here, with a dense per-machine pfn.
        self.pagestore = PageStore()
        self.nodes: dict[int, NumaNode] = {}
        total = config.total_pages
        node_id = 0
        for i, pages in enumerate(config.dram_pages):
            self.nodes[node_id] = NumaNode.create(
                node_id, MemoryTier.DRAM, pages, total,
                socket=i % config.sockets, store=self.pagestore,
            )
            node_id += 1
        for i, pages in enumerate(config.pm_pages):
            self.nodes[node_id] = NumaNode.create(
                node_id, MemoryTier.PM, pages, total,
                socket=i % config.sockets, store=self.pagestore,
            )
            node_id += 1
        self.allocator = PageAllocator(list(self.nodes.values()))
        self.migrator = MigrationEngine(self.nodes, self.hardware, self.clock, self.stats)
        self.backing = BackingStore(config.swap_pages)
        self.processes: dict[int, Process] = {}
        self._policy: TieringPolicy | None = None
        # Fig 8/9 instrumentation: promotions per window and whether each
        # promoted page gets re-accessed from DRAM afterwards.
        self.stats.make_series("promotions_window", config.stats_window_s)
        self.stats.make_series("demotions_window", config.stats_window_s)
        self.stats.make_series("promoted_total_window", config.stats_window_s)
        self.stats.make_series("promoted_reaccessed_window", config.stats_window_s)
        # Promotions awaiting their first re-access live in the store's
        # ``awaiting_ns`` column (-1 = not waiting); the count lets hot
        # loops skip the column probe entirely when nothing is pending.
        self._awaiting_count = 0
        # Fig 9 counts a promotion as "re-accessed" only when the access
        # lands within one scan interval of the promotion: the paper's
        # metric is "pages that have been promoted in the last scan, get
        # re-referenced again from the DRAM" — promptly, not eventually.
        self._reaccess_horizon_ns = int(config.daemons.kpromoted_interval_s * 1e9)
        self.migrator.on_promote = self._note_promotion
        # Interned counter handles for the access path: one attribute
        # increment per event instead of a string-keyed dict update.
        # Interning them here also keeps snapshot() key sets identical
        # between the per-access and batched drivers.
        stats = self.stats
        self._c_accesses_total = stats.counter("accesses.total")
        self._c_accesses_dram = stats.counter("accesses.dram")
        self._c_accesses_pm = stats.counter("accesses.pm")
        self._c_accesses_remote = stats.counter("accesses.remote")
        self._c_faults_minor = stats.counter("faults.minor")
        self._c_faults_major = stats.counter("faults.major")
        self._c_faults_hint = stats.counter("faults.hint")
        self._c_alloc_pages = stats.counter("alloc.pages")
        self._c_promoted_reaccessed = stats.counter("promoted.reaccessed")
        self._c_oom_stalls = stats.counter("vm.oom_stalls")
        # Fault injector handle; None means no faults are armed and every
        # resilience hook stays on its zero-cost path.
        self.faults = None
        # Tracepoint sink; None means tracing is compiled out and every
        # emission site is a single failed identity check.
        self.trace = None
        # Metrics registry; None means metrics are compiled out — the
        # same nop discipline as tracing, enforced at every site below.
        self.metrics = None
        # Memcg controller; None means per-tenant accounting is compiled
        # out and OOM aborts the whole machine (the historical behaviour).
        self.memcg = None

    # -- wiring -------------------------------------------------------------

    @property
    def policy(self) -> "TieringPolicy":
        if self._policy is None:
            raise RuntimeError("no tiering policy attached yet")
        return self._policy

    def attach_policy(self, policy: "TieringPolicy") -> None:
        if self._policy is not None:
            raise RuntimeError("a policy is already attached")
        self._policy = policy

    def create_process(self, name: str = "", home_socket: int = 0) -> Process:
        if home_socket >= self.config.sockets:
            raise ValueError(
                f"home_socket {home_socket} but machine has {self.config.sockets} sockets"
            )
        process = Process(name, home_socket)
        self.processes[process.pid] = process
        return process

    # -- node queries ---------------------------------------------------------

    def nodes_in_tier(self, tier: MemoryTier) -> list[NumaNode]:
        return [node for node in self.nodes.values() if node.tier is tier]

    def dram_nodes(self) -> list[NumaNode]:
        return self.nodes_in_tier(MemoryTier.DRAM)

    def pm_nodes(self) -> list[NumaNode]:
        return self.nodes_in_tier(MemoryTier.PM)

    def tier_of(self, page: Page) -> MemoryTier:
        return self.nodes[page.node_id].tier

    def used_pages(self) -> int:
        return sum(node.used_pages for node in self.nodes.values())

    # -- the access path ------------------------------------------------------

    def touch(
        self, process: Process, vpage: int, *, is_write: bool = False, lines: int = 1
    ) -> int:
        """Simulate one memory reference; returns nanoseconds charged.

        Handles, in order: page faults (first touch or refault from the
        backing store), hint page faults on poisoned PTEs, the hardware
        accessed/dirty bit update, the tier-dependent access latency
        (scaled by ``lines``, the cache lines the operation touches in
        this page), and — for supervised regions — the inline
        ``mark_page_accessed()`` call of Section III-A.
        """
        region = process.region_for(vpage)
        pte = process.page_table.lookup(vpage)
        charged = 0
        if pte is None:
            pte, fault_ns = self._page_fault(process, region, vpage)
            charged += fault_ns
        if pte.poisoned:
            pte.poisoned = False
            self.clock.advance_app(self.hardware.hint_fault_ns())
            charged += self.hardware.hint_fault_ns()
            self._c_faults_hint.n += 1
            self.policy.on_hint_fault(pte)
        pte.touch(is_write)
        page = pte.page
        if is_write:
            page.set(PageFlags.DIRTY)
        access_ns = self.policy.charge_access(page, is_write, lines)
        if self.nodes[page.node_id].socket != process.home_socket:
            access_ns = int(access_ns * self.config.latency.remote_socket_multiplier)
            self._c_accesses_remote.n += 1
        self.clock.advance_app(access_ns)
        charged += access_ns
        self._c_accesses_total.n += 1
        if self.tier_of(page) is MemoryTier.DRAM:
            self._c_accesses_dram.n += 1
        else:
            self._c_accesses_pm.n += 1
        if region.supervised:
            self.policy.mark_page_accessed(page)
        self._note_reaccess(page)
        self.policy.on_access(pte, is_write)
        return charged

    def _note_promotion(self, page: Page) -> None:
        """Record a promotion and start watching for its first re-access."""
        self.stats.record("promoted_total_window", self.clock.now_ns)
        column = self.pagestore.awaiting_ns
        if column[page.pfn] < 0:
            self._awaiting_count += 1
        column[page.pfn] = self.clock.now_ns

    def _note_reaccess(self, page: Page) -> None:
        """First access after a promotion counts toward Fig 9's numerator,
        but only if it arrives within the re-access horizon."""
        if self._awaiting_count == 0:
            return
        column = self.pagestore.awaiting_ns
        promoted_at = int(column[page.pfn])
        if promoted_at < 0:
            return
        column[page.pfn] = -1
        self._awaiting_count -= 1
        if self.metrics is not None:
            self.metrics.reaccess_delay.record(self.clock.now_ns - promoted_at)
        if self.clock.now_ns - promoted_at <= self._reaccess_horizon_ns:
            self._c_promoted_reaccessed.n += 1
            self.stats.record("promoted_reaccessed_window", promoted_at)

    def _page_fault(
        self, process: Process, region: MemoryRegion, vpage: int
    ) -> tuple[PageTableEntry, int]:
        """Populate a missing translation: first touch or major refault."""
        latency = self.hardware.latency
        charged = 0
        swapped = region.is_anon and self.backing.is_swapped(process.pid, vpage)
        if swapped:
            self.backing.swap_in(process.pid, vpage)
            self.clock.advance_app(latency.swap_in_ns)
            charged += latency.swap_in_ns
            self._c_faults_major.n += 1
        else:
            self.clock.advance_app(latency.minor_fault_ns)
            charged += latency.minor_fault_ns
            self._c_faults_minor.n += 1
        if self.memcg is not None:
            self.memcg.try_charge(process)
        page = self._allocate_page(region, process.home_socket, process)
        pte = process.page_table.map(vpage, page)
        if self.memcg is not None:
            self.memcg.commit_charge(page, process)
        if region.mlocked:
            page.set(PageFlags.UNEVICTABLE)
        self.policy.on_page_allocated(page)
        return pte, charged

    def _allocate_page(
        self,
        region: MemoryRegion,
        home_socket: int = 0,
        process: Process | None = None,
    ) -> Page:
        """Allocate with fallback, degrading gracefully under exhaustion.

        Allocation failure never escapes as a raw ``MemoryError``: each
        failed walk stalls the faulting access in synchronous direct
        reclaim (counted in ``vm.oom_stalls``) and retries, for up to
        :data:`OOM_RECLAIM_RETRIES` passes while reclaim keeps making
        progress.  Only when reclaim frees nothing does the OOM killer
        fire, with the per-node occupancy in the message.  With memcg
        accounting armed the killer picks a victim group instead of
        aborting the machine, so ``_oom`` may *return* after freeing the
        victim's frames and the walk retries.
        """
        result = None
        for __ in range(1 + OOM_RECLAIM_RETRIES):
            try:
                result = self.allocator.allocate(
                    is_anon=region.is_anon, born_ns=self.clock.now_ns,
                    home_socket=home_socket,
                )
                break
            except MemoryError:
                self.stats.inc("alloc.direct_reclaim")
                self._c_oom_stalls.n += 1
                stall_start_ns = self.clock.now_ns
                freed = self.policy.direct_reclaim()
                if self.metrics is not None:
                    self.metrics.reclaim_stall.record(
                        self.clock.now_ns - stall_start_ns
                    )
                if freed <= 0:
                    self._oom("reclaim freed nothing", process)
        if result is None:
            # Reclaim stalled through every retry.  Without memcg this
            # raises; with a victim killed it returns and the freed
            # frames satisfy one final walk.
            self._oom(
                f"reclaim kept stalling ({OOM_RECLAIM_RETRIES} retries)", process
            )
            try:
                result = self.allocator.allocate(
                    is_anon=region.is_anon, born_ns=self.clock.now_ns,
                    home_socket=home_socket,
                )
            except MemoryError:
                raise OutOfMemoryError(
                    "allocation failed even after an OOM kill — "
                    f"{self.allocator.occupancy()}"
                ) from None
        if result.fell_back:
            self.stats.inc("alloc.fallback_pm")
        if result.pressured_nodes:
            self.policy.on_memory_pressure(result.pressured_nodes)
        self._c_alloc_pages.n += 1
        return result.page

    def _oom(self, why: str, process: Process | None = None) -> None:
        """Fire the OOM killer.

        Historical (no-memcg) behaviour: count the kill and raise
        :class:`OutOfMemoryError` with the per-node occupancy — the whole
        run dies.  With memcg accounting armed, select a victim group
        (the over-limit or largest-footprint tenant), unmap its pages so
        the frames return to the free lists, and *return* so the caller
        can retry — unless the faulting process itself was the victim,
        in which case :class:`ProcessKilledError` kills just that tenant.
        """
        self.stats.inc("oom.kills")
        if self.memcg is not None:
            victim = self.memcg.select_victim(process)
            if victim is not None:
                pid = self.memcg.victim_pid(victim)
                freed = self.memcg.kill(victim)
                self.stats.inc("oom.pages_freed", freed)
                if self.trace is not None:
                    self.trace.trace_oom_kill(why, pid=pid)
                if (process is not None
                        and self.memcg.group_of(process.pid) is victim):
                    raise ProcessKilledError(
                        f"OOM killed group {victim.name!r} (pid {pid}, "
                        f"{freed} pages freed) and {why}"
                    ) from None
                return
        if self.trace is not None:
            self.trace.trace_oom_kill(why)
        raise OutOfMemoryError(
            f"allocation failed and {why} — {self.allocator.occupancy()}"
        ) from None

    def discard_region(self, process: Process, region: MemoryRegion) -> int:
        """Free every resident page of a region (munmap / MADV_FREE).

        Anonymous pages are dropped without touching swap — their
        contents die with the mapping, as when an application frees a
        buffer.  Returns the number of pages freed.
        """
        freed = 0
        for vpage in range(region.start_vpage, region.end_vpage):
            pte = process.page_table.lookup(vpage)
            if pte is None:
                if region.is_anon and self.backing.is_swapped(process.pid, vpage):
                    self.backing.swap_in(process.pid, vpage)  # slot released
                continue
            page = pte.page
            process.page_table.unmap(vpage)
            if page.mapped:
                continue  # shared file page still mapped elsewhere
            if page.lru is not None:
                page.lru.remove(page)
            page.clear(PageFlags.UNEVICTABLE)
            if self.memcg is not None:
                self.memcg.uncharge(page)
            self.nodes[page.node_id].release_frame(page)
            if self.trace is not None:
                self.trace.trace_mm_page_free(page.node_id, page.pfn, "discard")
            freed += 1
        self.stats.inc("mm.region_discards")
        self.stats.inc("mm.pages_discarded", freed)
        return freed

    # -- eviction to the backing store ---------------------------------------

    def unmap_and_evict(self, page: Page) -> int:
        """Push a lowest-tier page out to block storage; returns ns charged.

        Anonymous mappings go to swap; file pages are written back (if
        dirty) or dropped.  All PTEs are removed so the next access
        refaults.  Raises MemoryError if the swap area is full (the OOM
        precondition).
        """
        if page.test(PageFlags.UNEVICTABLE):
            raise ValueError("unevictable pages cannot be evicted")
        latency = self.hardware.latency
        charged = 0
        if page.is_anon:
            # Reserve swap space up front so a full swap fails the whole
            # eviction atomically — never leaving a half-unmapped page
            # whose contents would be silently dropped.
            needed = len(page.rmap)
            if self.backing.swapped_pages + needed > self.backing.swap_capacity_pages:
                raise MemoryError("swap space exhausted")
        for pte in list(page.rmap):
            process = self.processes[pte.process_id]
            process.page_table.unmap(pte.vpage)
            if page.is_anon:
                self.backing.swap_out(pte.process_id, pte.vpage)
        if page.is_anon or page.test(PageFlags.DIRTY):
            self.clock.advance_system(latency.swap_out_ns)
            charged += latency.swap_out_ns
        if not page.is_anon:
            self.backing.writeback_file()
        if page.lru is not None:
            page.lru.remove(page)
        if self.memcg is not None:
            self.memcg.uncharge(page)
        self.nodes[page.node_id].release_frame(page)
        self.stats.inc("reclaim.evictions")
        if self.trace is not None:
            self.trace.trace_mm_vmscan_evict(page.node_id, page.pfn, page.is_anon)
        return charged
