"""``struct page`` — the unit every policy in this repo reasons about.

A :class:`Page` is the logical memory page.  Migration moves a page
between NUMA nodes (tiers); the page object itself persists, exactly as
the *content* of a Linux page survives ``migrate_pages()`` while its
physical frame changes.  The intrusive ``lru_prev``/``lru_next`` pointers
re-create the kernel trick the paper leans on for zero space overhead:
"we reused the list pointer on the struct page to index the pages in the
promote lists".

Since the struct-of-arrays refactor the page's hot state — node id, the
flag word, timestamps, LRU links, harvested reference bits — lives in
pfn-indexed columns of a :class:`~repro.mm.pagestore.PageStore`; the
``Page`` object is a thin identity-stable *view* over its row.  Cold
paths keep using the same attribute API; hot loops index the columns
directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mm.flags import PageFlags
from repro.mm.pagestore import PageStore, default_store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mm.lruvec import LruList
    from repro.mm.page_table import PageTableEntry

__all__ = ["Page"]


class Page:
    """One 4 KiB page of memory — a view over its :class:`PageStore` row.

    Attributes:
        pfn: dense per-store page id (the page frame number).
        node_id: NUMA node currently backing the page.
        flags: PFRA flag word (referenced / active / promote / ...).
        is_anon: anonymous vs file-backed, selecting the LRU list family.
        rmap: reverse mapping — every PTE that maps this page.  Scans walk
            it to harvest hardware accessed bits (unsupervised accesses).
        lru: the intrusive list this page currently sits on, or None.
        policy_data: scratch slot for per-policy metadata (e.g.
            AutoTiering-OPM's n-bit access history).  Policies own it.
    """

    __slots__ = ("_store", "pfn", "rmap", "policy_data")

    def __init__(
        self,
        node_id: int,
        *,
        is_anon: bool = True,
        born_ns: int = 0,
        store: PageStore | None = None,
    ) -> None:
        if store is None:
            store = default_store()
        self._store = store
        self.pfn = store.adopt(self, node_id, is_anon, born_ns)
        self.rmap: list[PageTableEntry] = []
        self.policy_data: Any = None

    # -- column-backed attributes -----------------------------------------

    @property
    def node_id(self) -> int:
        return int(self._store.node[self.pfn])

    @node_id.setter
    def node_id(self, value: int) -> None:
        self._store.node[self.pfn] = value

    @property
    def is_anon(self) -> bool:
        return bool(self._store.is_anon[self.pfn])

    @property
    def flags(self) -> PageFlags:
        return PageFlags(int(self._store.flags[self.pfn]))

    @flags.setter
    def flags(self, value: int) -> None:
        self._store.flags[self.pfn] = int(value)

    @property
    def born_ns(self) -> int:
        return int(self._store.born_ns[self.pfn])

    @born_ns.setter
    def born_ns(self, value: int) -> None:
        self._store.born_ns[self.pfn] = value

    @property
    def last_promoted_ns(self) -> int:
        return int(self._store.last_promoted[self.pfn])

    @last_promoted_ns.setter
    def last_promoted_ns(self, value: int) -> None:
        self._store.last_promoted[self.pfn] = value

    @property
    def lru(self) -> "LruList | None":
        return self._store.lru_of(self.pfn)

    @property
    def lru_prev(self) -> "Page | None":
        neighbour = self._store.lru_prev[self.pfn]
        return None if neighbour < 0 else self._store.pages[neighbour]

    @lru_prev.setter
    def lru_prev(self, page: "Page | None") -> None:
        self._store.lru_prev[self.pfn] = -1 if page is None else page.pfn

    @property
    def lru_next(self) -> "Page | None":
        neighbour = self._store.lru_next[self.pfn]
        return None if neighbour < 0 else self._store.pages[neighbour]

    @lru_next.setter
    def lru_next(self, page: "Page | None") -> None:
        self._store.lru_next[self.pfn] = -1 if page is None else page.pfn

    # -- flag helpers (named after their page-flags.h counterparts) -------

    def test(self, flag: PageFlags) -> bool:
        return bool(self._store.flags[self.pfn] & flag)

    def set(self, flag: PageFlags) -> None:
        self._store.flags[self.pfn] |= int(flag)

    def clear(self, flag: PageFlags) -> None:
        self._store.flags[self.pfn] &= ~int(flag)

    def test_and_clear(self, flag: PageFlags) -> bool:
        """Atomically read and clear — how scans consume REFERENCED."""
        column = self._store.flags
        was_set = bool(column[self.pfn] & flag)
        column[self.pfn] &= ~int(flag)
        return was_set

    # -- reverse map -------------------------------------------------------

    def harvest_accessed(self) -> bool:
        """Test-and-clear the accessed bit across every mapping PTE.

        This is the unsupervised-access path of Section III-A: "MULTI-CLOCK
        checks within every process' page table that maps it for a set
        referenced bit".  Returns True if any mapping was accessed.
        """
        if not self.rmap:
            return False
        column = self._store.pte_accessed
        if column[self.pfn]:
            column[self.pfn] = False
            return True
        return False

    def any_accessed(self) -> bool:
        """Peek at the accessed bits without clearing them."""
        return bool(self.rmap) and bool(self._store.pte_accessed[self.pfn])

    def harvest_dirty(self) -> bool:
        """Test-and-clear the PTE dirty bits across every mapping.

        The dirtiness analogue of :meth:`harvest_accessed`: "was this
        page *written* since the last harvest" — the fresh signal the
        Section VII weighted-placement extension consumes.  The page's
        own DIRTY flag (writeback state) is left untouched.
        """
        if not self.rmap:
            return False
        column = self._store.pte_dirty
        if column[self.pfn]:
            column[self.pfn] = False
            return True
        return False

    @property
    def mapped(self) -> bool:
        return bool(self.rmap)

    def __repr__(self) -> str:
        kind = "anon" if self.is_anon else "file"
        return f"Page(pfn={self.pfn}, node={self.node_id}, {kind}, flags={self.flags!r})"
