"""``struct page`` — the unit every policy in this repo reasons about.

A :class:`Page` is the logical memory page.  Migration moves a page
between NUMA nodes (tiers); the page object itself persists, exactly as
the *content* of a Linux page survives ``migrate_pages()`` while its
physical frame changes.  The intrusive ``lru_prev``/``lru_next`` pointers
re-create the kernel trick the paper leans on for zero space overhead:
"we reused the list pointer on the struct page to index the pages in the
promote lists".
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.mm.flags import PageFlags

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mm.lruvec import LruList
    from repro.mm.page_table import PageTableEntry

__all__ = ["Page"]

_page_ids = itertools.count()


class Page:
    """One 4 KiB page of memory.

    Attributes:
        pfn: unique page id (analogue of the page frame number).
        node_id: NUMA node currently backing the page.
        flags: PFRA flag word (referenced / active / promote / ...).
        is_anon: anonymous vs file-backed, selecting the LRU list family.
        rmap: reverse mapping — every PTE that maps this page.  Scans walk
            it to harvest hardware accessed bits (unsupervised accesses).
        lru: the intrusive list this page currently sits on, or None.
        policy_data: scratch slot for per-policy metadata (e.g.
            AutoTiering-OPM's n-bit access history).  Policies own it.
    """

    __slots__ = (
        "pfn",
        "node_id",
        "flags",
        "is_anon",
        "rmap",
        "lru",
        "lru_prev",
        "lru_next",
        "policy_data",
        "born_ns",
        "last_promoted_ns",
    )

    def __init__(self, node_id: int, *, is_anon: bool = True, born_ns: int = 0) -> None:
        self.pfn = next(_page_ids)
        self.node_id = node_id
        self.flags = PageFlags.NONE
        self.is_anon = is_anon
        self.rmap: list[PageTableEntry] = []
        self.lru: LruList | None = None
        self.lru_prev: Page | None = None
        self.lru_next: Page | None = None
        self.policy_data: Any = None
        self.born_ns = born_ns
        self.last_promoted_ns = -1

    # -- flag helpers (named after their page-flags.h counterparts) -------

    def test(self, flag: PageFlags) -> bool:
        return bool(self.flags & flag)

    def set(self, flag: PageFlags) -> None:
        self.flags |= flag

    def clear(self, flag: PageFlags) -> None:
        self.flags &= ~flag

    def test_and_clear(self, flag: PageFlags) -> bool:
        """Atomically read and clear — how scans consume REFERENCED."""
        was_set = bool(self.flags & flag)
        self.flags &= ~flag
        return was_set

    # -- reverse map -------------------------------------------------------

    def harvest_accessed(self) -> bool:
        """Test-and-clear the accessed bit across every mapping PTE.

        This is the unsupervised-access path of Section III-A: "MULTI-CLOCK
        checks within every process' page table that maps it for a set
        referenced bit".  Returns True if any mapping was accessed.
        """
        accessed = False
        for pte in self.rmap:
            if pte.accessed:
                pte.accessed = False
                accessed = True
        return accessed

    def any_accessed(self) -> bool:
        """Peek at the accessed bits without clearing them."""
        return any(pte.accessed for pte in self.rmap)

    def harvest_dirty(self) -> bool:
        """Test-and-clear the PTE dirty bits across every mapping.

        The dirtiness analogue of :meth:`harvest_accessed`: "was this
        page *written* since the last harvest" — the fresh signal the
        Section VII weighted-placement extension consumes.  The page's
        own DIRTY flag (writeback state) is left untouched.
        """
        written = False
        for pte in self.rmap:
            if pte.dirty:
                pte.dirty = False
                written = True
        return written

    @property
    def mapped(self) -> bool:
        return bool(self.rmap)

    def __repr__(self) -> str:
        kind = "anon" if self.is_anon else "file"
        return f"Page(pfn={self.pfn}, node={self.node_id}, {kind}, flags={self.flags!r})"
