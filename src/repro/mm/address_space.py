"""Virtual address spaces: processes and their mmap regions.

Workloads address memory by ``(process, virtual page)``.  A
:class:`MemoryRegion` declares a contiguous run of virtual pages and
whether accesses to it are *supervised* (system calls — the OS sees each
access and can call ``mark_page_accessed()`` inline) or *unsupervised*
(plain loads/stores through an ``mmap`` mapping, visible only through the
PTE accessed bit) — the two access classes of Section III-A.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass

from repro.mm.page_table import PageTable

__all__ = ["MemoryRegion", "Process"]

_pids = itertools.count(1)


@dataclass(frozen=True)
class MemoryRegion:
    """A VMA: ``n_pages`` virtual pages starting at ``start_vpage``."""

    start_vpage: int
    n_pages: int
    is_anon: bool = True
    supervised: bool = False
    mlocked: bool = False

    def __post_init__(self) -> None:
        if self.n_pages <= 0:
            raise ValueError("region must span at least one page")
        if self.start_vpage < 0:
            raise ValueError("region start must be non-negative")

    @property
    def end_vpage(self) -> int:
        """One past the last vpage, half-open like kernel VMAs."""
        return self.start_vpage + self.n_pages

    def contains(self, vpage: int) -> bool:
        return self.start_vpage <= vpage < self.end_vpage


class Process:
    """A simulated process: a page table plus its VMA list.

    ``home_socket`` is where the process's threads run; accesses to
    memory on other sockets pay the remote-NUMA latency multiplier.
    """

    def __init__(self, name: str = "", home_socket: int = 0) -> None:
        if home_socket < 0:
            raise ValueError("home_socket must be non-negative")
        self.pid = next(_pids)
        self.name = name or f"proc-{self.pid}"
        self.home_socket = home_socket
        self.page_table = PageTable(self.pid)
        self._regions: list[MemoryRegion] = []
        self._region_starts: list[int] = []

    @property
    def regions(self) -> list[MemoryRegion]:
        return list(self._regions)

    def mmap(self, region: MemoryRegion) -> MemoryRegion:
        """Register a VMA; overlapping regions are rejected."""
        idx = bisect.bisect_left(self._region_starts, region.start_vpage)
        before = self._regions[idx - 1] if idx > 0 else None
        after = self._regions[idx] if idx < len(self._regions) else None
        if before is not None and before.end_vpage > region.start_vpage:
            raise ValueError(f"region {region} overlaps {before}")
        if after is not None and region.end_vpage > after.start_vpage:
            raise ValueError(f"region {region} overlaps {after}")
        self._regions.insert(idx, region)
        self._region_starts.insert(idx, region.start_vpage)
        return region

    def mmap_anon(
        self, start_vpage: int, n_pages: int, *, supervised: bool = False
    ) -> MemoryRegion:
        """Convenience: map an anonymous region."""
        return self.mmap(MemoryRegion(start_vpage, n_pages, is_anon=True, supervised=supervised))

    def mmap_file(
        self, start_vpage: int, n_pages: int, *, supervised: bool = False
    ) -> MemoryRegion:
        """Convenience: map a file-backed region."""
        return self.mmap(MemoryRegion(start_vpage, n_pages, is_anon=False, supervised=supervised))

    def region_for(self, vpage: int) -> MemoryRegion:
        """The VMA covering ``vpage``; raises if unmapped (a SIGSEGV)."""
        idx = bisect.bisect_right(self._region_starts, vpage) - 1
        if idx >= 0 and self._regions[idx].contains(vpage):
            return self._regions[idx]
        raise LookupError(f"pid {self.pid}: vpage {vpage} hits no mapped region")

    def mapped_vpages(self) -> int:
        """Pages currently resident (mapped in the page table)."""
        return len(self.page_table)

    def footprint_pages(self) -> int:
        """Total virtual pages declared across all regions."""
        return sum(region.n_pages for region in self._regions)

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, regions={len(self._regions)})"
