"""Per-tier watermark levels.

Section III-C: "a tier is marked under memory pressure proactively when it
reaches specific watermark levels.  These levels are calculated by the
system according to the amount of memory in the tier vs. the total amount
of memory in the system."  We follow the kernel's min/low/high ladder:

* free < ``min``  — direct-reclaim territory: allocations must reclaim.
* free < ``low``  — kswapd (and demotion) wake up.
* free > ``high`` — pressure is over, kswapd goes back to sleep.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Watermarks", "PressureLevel", "compute_watermarks"]

import enum


class PressureLevel(enum.IntEnum):
    """How much memory pressure a node is under, ordered by severity."""

    NONE = 0
    LOW = 1
    MIN = 2


# Member lookup on an Enum class goes through ``EnumType.__getattr__``;
# the allocator classifies every node on every fault, so bind the members
# once at module level.
_NONE = PressureLevel.NONE
_LOW = PressureLevel.LOW
_MIN = PressureLevel.MIN


@dataclass(frozen=True)
class Watermarks:
    """The min/low/high free-page thresholds for one node."""

    min_pages: int
    low_pages: int
    high_pages: int

    def __post_init__(self) -> None:
        if not (0 < self.min_pages <= self.low_pages <= self.high_pages):
            raise ValueError(
                f"watermarks must satisfy 0 < min <= low <= high, got "
                f"{self.min_pages}/{self.low_pages}/{self.high_pages}"
            )

    def pressure(self, free_pages: int) -> PressureLevel:
        """Classify the current free-page count."""
        if free_pages < self.min_pages:
            return _MIN
        if free_pages < self.low_pages:
            return _LOW
        return _NONE

    def below_high(self, free_pages: int) -> bool:
        """True while kswapd should keep reclaiming."""
        return free_pages < self.high_pages

    def reclaim_target(self, free_pages: int) -> int:
        """Pages to free to climb back above the high watermark."""
        return max(0, self.high_pages - free_pages)


def compute_watermarks(node_pages: int, total_pages: int) -> Watermarks:
    """Derive watermarks from node size relative to the whole machine.

    The ladder scales with the node's share of total memory so that small
    DRAM tiers in front of large PM tiers keep proportionally more
    headroom — that headroom is what promotions land in.
    """
    if node_pages <= 0 or total_pages <= 0:
        raise ValueError("node and total page counts must be positive")
    share = node_pages / total_pages
    # Base fraction ~1.5%, boosted up to ~2x for minority (small) nodes.
    # The floor is kept tiny so small simulated nodes are not forced to
    # hold a disproportionate free reserve (on real machines the reserve
    # is a rounding error relative to node size).
    fraction = 0.015 * (2.0 - min(1.0, share * 2))
    min_pages = max(2, int(node_pages * fraction))
    low_pages = min_pages + max(1, min_pages // 2)
    high_pages = min_pages * 2
    return Watermarks(min_pages, low_pages, max(high_pages, low_pages))
