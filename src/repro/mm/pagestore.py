"""Struct-of-arrays page state — the packed ``struct page`` columns.

The paper's pitch is that MULTI-CLOCK reuses ``struct page`` state for
zero space overhead; the reproduction's analogue is this store.  All the
per-page words the hot paths read — tier/node id, the flag word, the
harvested PTE reference/dirty bits, age timestamps, the intrusive LRU
prev/next links — live here as dense pfn-indexed numpy columns, one
:class:`PageStore` per simulated machine.  The :class:`~repro.mm.page.Page`
object survives as a thin *view* over its row (identity-stable: exactly
one ``Page`` per pfn, held in :attr:`PageStore.pages`), which keeps the
cold paths and ``policy_data`` ergonomic while touch/scan/harvest loops
run as vectorized column sweeps.

Pfns are allocated densely per store — per machine, not per process —
which is what makes the columns indexable and makes pfn sequences
reproducible no matter how many machines were built earlier in the
process (the old module-level counter made them order-dependent).

Columns are reallocated on growth (new pages from faults or swap
refaults), so hot loops that hoist a column into a local must re-hoist
after any call that can allocate — the same discipline the batched touch
path already applies to the per-node latency tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mm.lruvec import LruList
    from repro.mm.page import Page

__all__ = ["PageStore", "default_store", "NO_PFN"]

NO_PFN = -1
"""Column sentinel for "no page": absent LRU link, empty list head/tail."""

_INITIAL_CAPACITY = 1024


class PageStore:
    """Per-machine struct-of-arrays backing store for page state.

    Column layout (all indexed by pfn):

    ==================  ========  ===========================================
    ``node``            int32     backing NUMA node id (-1 before adoption)
    ``flags``           int64     the ``PageFlags`` word
    ``is_anon``         bool      anon vs file-backed (fixed at creation)
    ``born_ns``         int64     allocation timestamp
    ``last_promoted``   int64     last promotion commit (-1 never)
    ``lru_id``          int16     owning :class:`LruList` id, -1 off-list
    ``lru_prev``        int64     neighbour pfn toward the list head, -1 none
    ``lru_next``        int64     neighbour pfn toward the list tail, -1 none
    ``pte_accessed``    bool      harvested OR of the mapping PTEs' accessed
    ``pte_dirty``       bool      harvested OR of the mapping PTEs' dirty
    ``mapcount``        int32     live reverse mappings (len of ``Page.rmap``)
    ``awaiting_ns``     int64     promotion time awaiting first re-access, -1
    ``memcg_id``        int32     charging :class:`MemCgroup` id, -1 uncharged
    ==================  ========  ===========================================

    ``pte_accessed``/``pte_dirty`` keep the *page-level* reference signal
    the scans consume (``harvest_accessed`` is an OR-and-clear across the
    rmap); when the last mapping goes away both bits are cleared, so an
    unmapped page never reads as accessed, matching the historical
    per-PTE behaviour.
    """

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(16, capacity)
        self._capacity = capacity
        self.node = np.full(capacity, -1, dtype=np.int32)
        self.flags = np.zeros(capacity, dtype=np.int64)
        self.is_anon = np.zeros(capacity, dtype=bool)
        self.born_ns = np.zeros(capacity, dtype=np.int64)
        self.last_promoted = np.full(capacity, -1, dtype=np.int64)
        self.lru_id = np.full(capacity, -1, dtype=np.int16)
        self.lru_prev = np.full(capacity, NO_PFN, dtype=np.int64)
        self.lru_next = np.full(capacity, NO_PFN, dtype=np.int64)
        self.pte_accessed = np.zeros(capacity, dtype=bool)
        self.pte_dirty = np.zeros(capacity, dtype=bool)
        self.mapcount = np.zeros(capacity, dtype=np.int32)
        self.awaiting_ns = np.full(capacity, -1, dtype=np.int64)
        self.memcg_id = np.full(capacity, -1, dtype=np.int32)
        #: identity registry: pages[pfn] is THE view object for that pfn.
        self.pages: list[Page] = []
        #: registered lists; a page's ``lru_id`` indexes this.
        self.lists: list[LruList] = []

    def __len__(self) -> int:
        return len(self.pages)

    # -- page lifecycle ------------------------------------------------------

    def adopt(self, page: "Page", node_id: int, is_anon: bool, born_ns: int) -> int:
        """Assign the next dense pfn to ``page`` and initialise its row."""
        pfn = len(self.pages)
        if pfn >= self._capacity:
            self._grow()
        self.pages.append(page)
        self.node[pfn] = node_id
        self.is_anon[pfn] = is_anon
        self.born_ns[pfn] = born_ns
        return pfn

    def page_at(self, pfn: int) -> "Page":
        """The canonical view object for ``pfn``."""
        return self.pages[pfn]

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in (
            "node", "flags", "is_anon", "born_ns", "last_promoted",
            "lru_id", "lru_prev", "lru_next", "pte_accessed", "pte_dirty",
            "mapcount", "awaiting_ns", "memcg_id",
        ):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self._capacity] = old
            grown[self._capacity:] = _FILL[name]
            setattr(self, name, grown)
        self._capacity = new_capacity

    # -- list registry -------------------------------------------------------

    def register_list(self, lst: "LruList") -> int:
        """Give a list a dense id so ``lru_id`` can name it."""
        list_id = len(self.lists)
        if list_id >= np.iinfo(np.int16).max:
            raise RuntimeError("too many LRU lists registered on one store")
        self.lists.append(lst)
        return list_id

    def lru_of(self, pfn: int) -> "LruList | None":
        list_id = self.lru_id[pfn]
        return None if list_id < 0 else self.lists[list_id]

    # -- vectorized list surgery --------------------------------------------

    def walk_tail(self, lst: "LruList", count: int) -> np.ndarray:
        """The first ``count`` pfns of ``lst`` in tail→head scan order."""
        out = np.empty(count, dtype=np.int64)
        prev = self.lru_prev
        cursor = lst._tail
        for i in range(count):
            out[i] = cursor
            cursor = int(prev[cursor])
        return out

    def relink_chain(self, order: np.ndarray) -> None:
        """Rewrite the prev/next links so ``order`` (tail→head) is a chain."""
        if len(order) == 0:
            return
        self.lru_prev[order[:-1]] = order[1:]
        self.lru_prev[int(order[-1])] = NO_PFN
        self.lru_next[order[1:]] = order[:-1]
        self.lru_next[int(order[0])] = NO_PFN

    def rebuild_after_scan(
        self,
        lst: "LruList",
        survivors: np.ndarray,
        rest_tail: int,
        removed: int,
    ) -> None:
        """Install the post-scan order of a budgeted tail scan.

        The scan visited a tail segment, removed ``removed`` pages from
        the list and rotated the rest to the head in visit order
        (``survivors``, tail→head).  ``rest_tail`` is the first unvisited
        pfn — its segment keeps its internal links — or :data:`NO_PFN`
        when the whole list was visited.
        """
        if rest_tail < 0:
            if len(survivors) == 0:
                lst._head = lst._tail = NO_PFN
            else:
                self.relink_chain(survivors)
                lst._tail = int(survivors[0])
                lst._head = int(survivors[-1])
        else:
            self.lru_next[rest_tail] = NO_PFN
            lst._tail = rest_tail
            if len(survivors):
                old_head = lst._head
                self.lru_prev[survivors[:-1]] = survivors[1:]
                self.lru_prev[int(survivors[-1])] = NO_PFN
                self.lru_next[survivors[1:]] = survivors[:-1]
                self.lru_next[int(survivors[0])] = old_head
                self.lru_prev[old_head] = int(survivors[0])
                lst._head = int(survivors[-1])
        lst._count -= removed

    def prepend_head_block(self, lst: "LruList", block: np.ndarray, lru_flag: int) -> None:
        """Batch ``add_head`` of ``block`` pfns, first element added first.

        Equivalent to calling ``lst.add_head(page)`` for each block entry
        in order: the last entry ends up at the head.  The caller is
        responsible for having detached the pages from their old list.
        """
        if len(block) == 0:
            return
        old_head = lst._head
        self.lru_prev[block[:-1]] = block[1:]
        self.lru_prev[int(block[-1])] = NO_PFN
        self.lru_next[block[1:]] = block[:-1]
        self.lru_next[int(block[0])] = old_head
        if old_head >= 0:
            self.lru_prev[old_head] = int(block[0])
        else:
            lst._tail = int(block[0])
        lst._head = int(block[-1])
        self.lru_id[block] = lst.list_id
        self.flags[block] |= lru_flag
        lst._count += len(block)


_FILL = {
    "node": -1,
    "flags": 0,
    "is_anon": False,
    "born_ns": 0,
    "last_promoted": -1,
    "lru_id": -1,
    "lru_prev": NO_PFN,
    "lru_next": NO_PFN,
    "pte_accessed": False,
    "pte_dirty": False,
    "mapcount": 0,
    "awaiting_ns": -1,
    "memcg_id": -1,
}


_default_store: PageStore | None = None


def default_store() -> PageStore:
    """The fallback store for pages built without a machine.

    Unit tests construct bare ``Page(0)`` objects; those live here.  A
    machine's pages always live in its own :class:`PageStore`, so pfn
    sequences per machine stay dense and order-independent.
    """
    global _default_store
    if _default_store is None:
        _default_store = PageStore()
    return _default_store
