"""Page migration between tiers — the simulator's ``migrate_pages()``.

Linux's mechanism allocates a destination frame, copies the contents and
fixes every mapping that refers to the page.  Here the page object *is*
the content, so migration re-homes it to the destination node, but the
engine still charges the full copy+fixup latency and refuses the cases
the kernel refuses (locked pages, unevictable pages, no destination
frame), because those refusals drive the paper's promote-list fallback
("if that is not possible — for instance, the page is locked — then it is
moved to the active list").
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.sim.stats import StatsBook
from repro.sim.vclock import VirtualClock

__all__ = ["MigrationEngine", "MigrationOutcome"]


class MigrationOutcome(enum.Enum):
    """Why a migration attempt succeeded or failed."""

    MIGRATED = "migrated"
    PAGE_LOCKED = "page_locked"
    PAGE_UNEVICTABLE = "page_unevictable"
    DEST_FULL = "dest_full"
    SAME_NODE = "same_node"

    @property
    def ok(self) -> bool:
        return self is MigrationOutcome.MIGRATED


class MigrationEngine:
    """Moves pages between NUMA nodes, charging copy costs to the clock."""

    def __init__(
        self,
        nodes: dict[int, NumaNode],
        hardware: HardwareModel,
        clock: VirtualClock,
        stats: StatsBook,
    ) -> None:
        self._nodes = nodes
        self._hardware = hardware
        self._clock = clock
        self._stats = stats
        self._c_failed_locked = stats.counter("migrate.failed_locked")
        self._c_failed_unevictable = stats.counter("migrate.failed_unevictable")
        self._c_failed_dest_full = stats.counter("migrate.failed_dest_full")
        self._c_promotions = stats.counter("migrate.promotions")
        self._c_demotions = stats.counter("migrate.demotions")
        self._c_lateral = stats.counter("migrate.lateral")
        self.on_promote: "Callable[[Page], None] | None" = None

    def node_of(self, page: Page) -> NumaNode:
        return self._nodes[page.node_id]

    def migrate(self, page: Page, dest: NumaNode) -> MigrationOutcome:
        """Attempt to move ``page`` onto ``dest``.

        On success the page is detached from any LRU list and accounted to
        the destination node; the caller must re-link it onto the list the
        policy wants.  On failure the page is left exactly where it was.
        """
        source = self._nodes[page.node_id]
        if dest.node_id == source.node_id:
            return MigrationOutcome.SAME_NODE
        if page.test(PageFlags.LOCKED):
            self._c_failed_locked.n += 1
            return MigrationOutcome.PAGE_LOCKED
        if page.test(PageFlags.UNEVICTABLE):
            self._c_failed_unevictable.n += 1
            return MigrationOutcome.PAGE_UNEVICTABLE
        if not dest.can_allocate():
            self._c_failed_dest_full.n += 1
            return MigrationOutcome.DEST_FULL

        if page.lru is not None:
            page.lru.remove(page)
        source.release_frame(page)
        dest.adopt_page(page)
        self._clock.advance_system(self._hardware.migrate_ns())
        self._account_direction(source, dest, page)
        return MigrationOutcome.MIGRATED

    def _account_direction(self, source: NumaNode, dest: NumaNode, page: Page) -> None:
        if dest.tier < source.tier:
            self._c_promotions.n += 1
            page.last_promoted_ns = self._clock.now_ns
            if "promotions_window" in self._stats.series:
                self._stats.record("promotions_window", self._clock.now_ns)
            if self.on_promote is not None:
                self.on_promote(page)
        elif dest.tier > source.tier:
            self._c_demotions.n += 1
            if "demotions_window" in self._stats.series:
                self._stats.record("demotions_window", self._clock.now_ns)
        else:
            self._c_lateral.n += 1
