"""Page migration between tiers — the simulator's ``migrate_pages()``.

Linux's mechanism allocates a destination frame, copies the contents and
fixes every mapping that refers to the page.  Here the page object *is*
the content, so migration re-homes it to the destination node, but the
engine still charges the full copy+fixup latency and refuses the cases
the kernel refuses (locked pages, unevictable pages, no destination
frame), because those refusals drive the paper's promote-list fallback
("if that is not possible — for instance, the page is locked — then it is
moved to the active list").
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.sim.stats import StatsBook
from repro.sim.vclock import VirtualClock

__all__ = ["MigrationEngine", "MigrationOutcome", "MAX_MIGRATE_ATTEMPTS"]

MAX_MIGRATE_ATTEMPTS = 10
"""Kernel ``migrate_pages()`` retries a failing page up to 10 times."""


class MigrationOutcome(enum.Enum):
    """Why a migration attempt succeeded or failed."""

    MIGRATED = "migrated"
    PAGE_LOCKED = "page_locked"
    PAGE_UNEVICTABLE = "page_unevictable"
    DEST_FULL = "dest_full"
    SAME_NODE = "same_node"
    COPY_FAILED = "copy_failed"

    @property
    def ok(self) -> bool:
        return self is MigrationOutcome.MIGRATED

    @property
    def transient(self) -> bool:
        """Failures worth retrying — the kernel's -EAGAIN class.

        A failed copy may succeed on the next attempt; a full destination
        may drain as kswapd works.  Locked / unevictable / same-node are
        permanent for this pass.
        """
        return self in (MigrationOutcome.COPY_FAILED, MigrationOutcome.DEST_FULL)


class MigrationEngine:
    """Moves pages between NUMA nodes, charging copy costs to the clock."""

    def __init__(
        self,
        nodes: dict[int, NumaNode],
        hardware: HardwareModel,
        clock: VirtualClock,
        stats: StatsBook,
    ) -> None:
        self._nodes = nodes
        self._hardware = hardware
        self._clock = clock
        self._stats = stats
        self._c_attempts = stats.counter("migrate.attempts")
        self._c_failed_locked = stats.counter("migrate.failed_locked")
        self._c_failed_unevictable = stats.counter("migrate.failed_unevictable")
        self._c_failed_dest_full = stats.counter("migrate.failed_dest_full")
        self._c_failed_copy = stats.counter("migrate.failed_copy")
        self._c_retries = stats.counter("migrate.retries")
        self._c_retry_succeeded = stats.counter("migrate.retry_succeeded")
        self._c_retries_exhausted = stats.counter("migrate.retries_exhausted")
        self._c_promotions = stats.counter("migrate.promotions")
        self._c_demotions = stats.counter("migrate.demotions")
        self._c_lateral = stats.counter("migrate.lateral")
        self.on_promote: "Callable[[Page], None] | None" = None
        # Fault-injection hook: when set, it is consulted on every copy
        # attempt and a True return fails the copy transiently.  Its
        # presence also arms the retry loop — with no injector installed
        # migrate_with_retry degenerates to a single attempt, keeping the
        # happy path bit-identical to the pre-resilience engine.
        self.copy_fault_hook: "Callable[[Page, NumaNode], bool] | None" = None
        self._backoff_base_ns = hardware.latency.migrate_backoff_ns
        # Tracepoint sink, installed by Machine.enable_tracing.
        self.trace = None
        # Metrics registry, installed by Machine.enable_metrics.
        self.metrics = None
        # Memcg controller, installed by Machine.enable_memcg: a migrated
        # page keeps its charge but moves it between per-node RSS books.
        self.memcg = None

    def node_of(self, page: Page) -> NumaNode:
        return self._nodes[page.node_id]

    def migrate(self, page: Page, dest: NumaNode) -> MigrationOutcome:
        """Attempt to move ``page`` onto ``dest``.

        On success the page is detached from any LRU list and accounted to
        the destination node; the caller must re-link it onto the list the
        policy wants.  On failure the page is left exactly where it was.
        """
        source = self._nodes[page.node_id]
        outcome = self._attempt(page, source, dest)
        if self.trace is not None:
            if dest.tier < source.tier:
                direction = "promote"
            elif dest.tier > source.tier:
                direction = "demote"
            else:
                direction = "lateral"
            self.trace.trace_mm_migrate_pages(
                source.node_id, page.pfn, dest.node_id, direction, outcome.value
            )
        return outcome

    def _attempt(
        self, page: Page, source: NumaNode, dest: NumaNode
    ) -> MigrationOutcome:
        self._c_attempts.n += 1
        if dest.node_id == source.node_id:
            return MigrationOutcome.SAME_NODE
        if page.test(PageFlags.LOCKED):
            self._c_failed_locked.n += 1
            return MigrationOutcome.PAGE_LOCKED
        if page.test(PageFlags.UNEVICTABLE):
            self._c_failed_unevictable.n += 1
            return MigrationOutcome.PAGE_UNEVICTABLE
        if not dest.can_allocate():
            self._c_failed_dest_full.n += 1
            return MigrationOutcome.DEST_FULL
        if self.copy_fault_hook is not None and self.copy_fault_hook(page, dest):
            # The copy ran and was torn down: charge the full copy cost
            # (as the kernel does for a failed migrate attempt) but leave
            # the page exactly where it was.
            self._c_failed_copy.n += 1
            self._clock.advance_system(self._hardware.migrate_ns())
            return MigrationOutcome.COPY_FAILED

        if page.lru is not None:
            page.lru.remove(page)
        source.release_frame(page)
        dest.adopt_page(page)
        if self.memcg is not None:
            self.memcg.note_migrated(page, source.node_id, dest.node_id)
        self._clock.advance_system(self._hardware.migrate_ns())
        self._account_direction(source, dest, page)
        return MigrationOutcome.MIGRATED

    def migrate_with_retry(
        self,
        page: Page,
        dest: NumaNode,
        *,
        max_attempts: int = MAX_MIGRATE_ATTEMPTS,
    ) -> MigrationOutcome:
        """Kernel-style bounded retry around :meth:`migrate`.

        ``migrate_pages()`` retries a page that failed transiently up to
        10 times; we add exponential *virtual-time* backoff between
        attempts (standing in for the cond_resched + writeback waits of
        the real retry loop) and a longer congestion backoff when the
        destination is full, giving kswapd's drain a chance to land.

        The loop only engages when a fault injector is armed
        (``copy_fault_hook`` set): without one, transient failures cannot
        heal between attempts, so the first outcome is returned as-is and
        the happy path stays bit-identical to the retry-free engine.
        """
        outcome = self.migrate(page, dest)
        if self.copy_fault_hook is None:
            return outcome
        backoff_ns = self._backoff_base_ns
        attempts = 1
        # A full destination cannot drain during our own backoff unless
        # something else runs, so congestion retries are capped tighter
        # than the transient-copy budget.
        dest_full_budget = 3
        while not outcome.ok and outcome.transient and attempts < max_attempts:
            if outcome is MigrationOutcome.DEST_FULL:
                if dest_full_budget <= 0:
                    break
                dest_full_budget -= 1
                delay_ns = 4 * backoff_ns  # congestion wait
            else:
                delay_ns = backoff_ns
            self._clock.advance_system(delay_ns)
            if self.metrics is not None:
                self.metrics.migrate_backoff.record(delay_ns)
            backoff_ns = min(backoff_ns * 2, 512 * self._backoff_base_ns)
            self._c_retries.n += 1
            outcome = self.migrate(page, dest)
            attempts += 1
        if outcome.ok and attempts > 1:
            self._c_retry_succeeded.n += 1
        elif not outcome.ok and outcome.transient:
            self._c_retries_exhausted.n += 1
        return outcome

    def _account_direction(self, source: NumaNode, dest: NumaNode, page: Page) -> None:
        if dest.tier < source.tier:
            self._c_promotions.n += 1
            page.last_promoted_ns = self._clock.now_ns
            if "promotions_window" in self._stats.series:
                self._stats.record("promotions_window", self._clock.now_ns)
            if self.metrics is not None:
                # PagePromote -> commit latency; a no-op for pages that
                # were promoted without passing through a promote list.
                self.metrics.note_promote_commit(page.pfn, self._clock.now_ns)
            if self.on_promote is not None:
                self.on_promote(page)
        elif dest.tier > source.tier:
            self._c_demotions.n += 1
            if "demotions_window" in self._stats.series:
                self._stats.record("demotions_window", self._clock.now_ns)
            if self.metrics is not None:
                self.metrics.demotion_age.record(self._clock.now_ns - page.born_ns)
        else:
            self._c_lateral.n += 1
