"""Hardware model: memory tiers and their access costs.

Tiers are ordered exactly as in the paper's Section II — from *higher*
(high performance, low capacity: DRAM) to *lower* (low performance, high
capacity: persistent memory).  The model charges per-access latencies
from :class:`~repro.sim.config.LatencyConfig`; Optane's read/write
asymmetry (reads slower than writes at the DIMM interface, because writes
land in the controller buffer) is preserved because the paper's
Discussion section calls it out as relevant to placement decisions.
"""

from __future__ import annotations

import enum

from repro.sim.config import LatencyConfig

__all__ = ["MemoryTier", "HardwareModel"]


class MemoryTier(enum.IntEnum):
    """Memory tiers ordered from highest- to lowest-performing.

    Lower numeric value = higher tier, so comparisons read naturally:
    ``page.tier > MemoryTier.DRAM`` means "below DRAM".
    """

    DRAM = 0
    PM = 1

    @property
    def is_top(self) -> bool:
        return self is MemoryTier.DRAM

    @property
    def is_bottom(self) -> bool:
        return self is MemoryTier.PM

    def next_lower(self) -> "MemoryTier | None":
        """The tier pages demote to, or None at the bottom."""
        return MemoryTier.PM if self is MemoryTier.DRAM else None

    def next_higher(self) -> "MemoryTier | None":
        """The tier pages promote to, or None at the top."""
        return MemoryTier.DRAM if self is MemoryTier.PM else None


class HardwareModel:
    """Latency oracle for the simulated machine."""

    def __init__(self, latency: LatencyConfig) -> None:
        self._latency = latency.validated()
        self._read_ns = {
            MemoryTier.DRAM: latency.dram_read_ns,
            MemoryTier.PM: latency.pm_read_ns,
        }
        self._write_ns = {
            MemoryTier.DRAM: latency.dram_write_ns,
            MemoryTier.PM: latency.pm_write_ns,
        }
        # Nominal values, kept so degradation windows can be applied and
        # lifted losslessly (scales never compound).
        self._base_read_ns = dict(self._read_ns)
        self._base_write_ns = dict(self._write_ns)

    @property
    def latency(self) -> LatencyConfig:
        return self._latency

    def access_ns(self, tier: MemoryTier, is_write: bool) -> int:
        """Latency of one application access to a page in ``tier``."""
        table = self._write_ns if is_write else self._read_ns
        return table[tier]

    def access_tables(self) -> tuple[dict[MemoryTier, int], dict[MemoryTier, int]]:
        """The (read, write) per-tier latency tables.

        Hot loops index these directly instead of calling
        :meth:`access_ns` per access; the tables are fixed at
        construction, so handing them out is safe.
        """
        return self._read_ns, self._write_ns

    def set_tier_scale(self, tier: MemoryTier, multiplier: float) -> None:
        """Scale one tier's access latency (fault-injection degradation).

        Mutates the live latency tables in place — the same dict objects
        :meth:`access_tables` hands out — so callers holding the tables
        observe the change; 1.0 restores nominal latency.  Models a PM
        DIMM falling into a thermally-throttled / media-error-retry mode.
        """
        if multiplier <= 0:
            raise ValueError(f"latency multiplier must be positive, got {multiplier}")
        self._read_ns[tier] = max(1, int(self._base_read_ns[tier] * multiplier))
        self._write_ns[tier] = max(1, int(self._base_write_ns[tier] * multiplier))

    def migrate_ns(self, pages: int = 1) -> int:
        """System cost of migrating ``pages`` pages between tiers."""
        return self._latency.page_copy_ns * pages

    def scan_ns(self, pages: int) -> int:
        """System cost of a CLOCK scan step over ``pages`` pages."""
        return self._latency.scan_page_ns * pages

    def hint_fault_ns(self) -> int:
        """Cost of one software hint page fault (AutoTiering/AutoNUMA)."""
        return self._latency.hint_fault_ns
