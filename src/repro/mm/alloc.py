"""First-touch page allocation with tier fallback.

In every tiering system the paper evaluates, pages are "born in" the DRAM
tier and allocation falls back to PM once DRAM runs low (Section II-A).
:class:`PageAllocator` implements that gfp-style fallback walk and tells
the caller when a node dropped below its low watermark so the appropriate
daemon (kswapd / demotion) can be woken.
"""

from __future__ import annotations

from repro.mm.hardware import MemoryTier
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.watermarks import PressureLevel

__all__ = ["AllocationResult", "PageAllocator"]

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation: the page plus pressure signals."""

    page: Page
    node: NumaNode
    fell_back: bool
    pressured_nodes: tuple[int, ...]


class PageAllocator:
    """Walks the node fallback order: DRAM tier first, then PM.

    A node is *preferred* while its free count stays above the min
    watermark; once every preferred node is exhausted the walk continues
    into lower tiers, and as a last resort takes any node with a free
    frame (eating into the reserve below ``min``, like atomic allocations
    do in Linux).
    """

    def __init__(self, nodes: list[NumaNode]) -> None:
        if not nodes:
            raise ValueError("allocator needs at least one node")
        self._nodes = sorted(nodes, key=lambda n: (n.tier, n.node_id))
        # The walk order depends only on the caller's home socket and
        # static node attributes; cache it per socket (the fault path
        # allocates once per cold page and must not re-sort every time).
        self._walk_cache: dict[int, list[NumaNode]] = {}
        # Tracepoint sink, installed by Machine.enable_tracing.
        self.trace = None

    @property
    def fallback_order(self) -> list[NumaNode]:
        return list(self._nodes)

    def occupancy(self) -> str:
        """One-line per-node occupancy, for OOM reports.

        Shows which node refused the allocation and why — full, or
        frames offline after a fault-injected capacity loss.
        """
        parts = []
        for node in self._nodes:
            part = f"node{node.node_id}/{node.tier.name} {node.used_pages}/{node.capacity_pages} used"
            if node.offline_pages:
                part += f" ({node.offline_pages} offline)"
            parts.append(part)
        return "; ".join(parts)

    def allocate(
        self, *, is_anon: bool, born_ns: int = 0, home_socket: int = 0
    ) -> AllocationResult:
        """Allocate one page, or raise MemoryError if all nodes are full.

        Within each tier, nodes on the caller's home socket are preferred
        (first-touch locality, as Linux's default mempolicy does).
        """
        walk = self._walk_cache.get(home_socket)
        if walk is None:
            walk = sorted(
                self._nodes, key=lambda n: (n.tier, n.socket != home_socket, n.node_id)
            )
            self._walk_cache[home_socket] = walk
        no_pressure = PressureLevel.NONE
        dram = MemoryTier.DRAM
        pressured: list[int] = []
        chosen: NumaNode | None = None
        fell_back = False
        for node in walk:
            if node.pressure() is not no_pressure:
                pressured.append(node.node_id)
            if chosen is None and node.can_allocate():
                headroom_ok = node.free_pages > node.watermarks.min_pages
                if headroom_ok:
                    chosen = node
                    fell_back = node.tier is not dram
        if chosen is None:
            # Reserve walk: any frame at all, highest tier first.
            for node in walk:
                if node.can_allocate():
                    chosen = node
                    fell_back = node.tier is not dram
                    break
        if chosen is None:
            raise MemoryError("all memory nodes are full")
        page = chosen.allocate_page(is_anon=is_anon, born_ns=born_ns)
        if chosen.pressure() is not no_pressure and chosen.node_id not in pressured:
            pressured.append(chosen.node_id)
        if self.trace is not None:
            self.trace.trace_mm_page_alloc(chosen.node_id, page.pfn, is_anon, fell_back)
        return AllocationResult(page, chosen, fell_back, tuple(pressured))
