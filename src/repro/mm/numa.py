"""NUMA nodes — the simulator's ``pglist_data``.

The paper's prototype tags DAX-KMEM hot-plugged persistent memory nodes
with a new flag in ``pglist_data`` so MULTI-CLOCK can tell the DRAM tier
("all the DRAM nodes") from the PM tier ("all the PM nodes").  Here the
tag is the node's :class:`~repro.mm.hardware.MemoryTier`.
"""

from __future__ import annotations

from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import LruVec
from repro.mm.page import Page
from repro.mm.pagestore import PageStore
from repro.mm.watermarks import PressureLevel, Watermarks, compute_watermarks

__all__ = ["NumaNode"]


class NumaNode:
    """One bank of physical memory plus its reclaim state."""

    def __init__(
        self,
        node_id: int,
        tier: MemoryTier,
        capacity_pages: int,
        watermarks: Watermarks,
        socket: int = 0,
        store: PageStore | None = None,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"node {node_id} needs positive capacity")
        self.node_id = node_id
        self.tier = tier
        self.socket = socket
        self.capacity_pages = capacity_pages
        self.watermarks = watermarks
        self.store = store
        self.lruvec = LruVec(store=store)
        self._used_pages = 0
        self._offline_pages = 0

    @classmethod
    def create(
        cls,
        node_id: int,
        tier: MemoryTier,
        capacity_pages: int,
        total_pages: int,
        socket: int = 0,
        store: PageStore | None = None,
    ) -> "NumaNode":
        """Build a node with watermarks derived from machine-wide capacity."""
        marks = compute_watermarks(capacity_pages, total_pages)
        return cls(node_id, tier, capacity_pages, marks, socket, store)

    @property
    def is_pm(self) -> bool:
        """The DAX-KMEM "this node is persistent memory" tag."""
        return self.tier is MemoryTier.PM

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def offline_pages(self) -> int:
        """Frames taken offline (fault injection / simulated hot-remove)."""
        return self._offline_pages

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self._used_pages - self._offline_pages

    def take_offline(self, frames: int) -> int:
        """Remove up to ``frames`` free frames from service.

        Models memory hot-remove (or a failing DIMM rank): only free
        frames can leave — occupied ones would need migrating off first,
        which the pressure this creates will drive.  Returns the number
        actually taken; the caller passes it back to :meth:`bring_online`.
        """
        if frames < 0:
            raise ValueError("cannot offline a negative number of frames")
        taken = min(frames, self.free_pages)
        self._offline_pages += taken
        return taken

    def bring_online(self, frames: int) -> None:
        """Return previously offlined frames to service."""
        if frames < 0 or frames > self._offline_pages:
            raise ValueError(
                f"node {self.node_id} has {self._offline_pages} frames offline, "
                f"cannot bring {frames} online"
            )
        self._offline_pages -= frames

    def pressure(self) -> PressureLevel:
        return self.watermarks.pressure(self.free_pages)

    def can_allocate(self, pages: int = 1) -> bool:
        return self.free_pages >= pages

    def allocate_page(self, *, is_anon: bool, born_ns: int = 0) -> Page:
        """Take one frame from this node and wrap it in a fresh page.

        The caller is responsible for putting the page on an LRU list;
        raises MemoryError if the node is full (callers should check
        :meth:`can_allocate` and fall back to another node first).
        """
        if not self.can_allocate():
            raise MemoryError(f"node {self.node_id} has no free frames")
        self._used_pages += 1
        return Page(self.node_id, is_anon=is_anon, born_ns=born_ns, store=self.store)

    def adopt_page(self, page: Page) -> None:
        """Account an existing page migrating *into* this node.

        The page must already be off any LRU list; the migration engine
        re-links it on the destination node's lists afterwards.
        """
        if not self.can_allocate():
            raise MemoryError(f"node {self.node_id} has no free frames")
        if page.lru is not None:
            raise ValueError("page must leave its LRU list before moving nodes")
        self._used_pages += 1
        page.node_id = self.node_id

    def release_frame(self, page: Page) -> None:
        """Give a page's frame back (free or migrate-away path)."""
        if page.node_id != self.node_id:
            raise ValueError(
                f"page lives on node {page.node_id}, not node {self.node_id}"
            )
        if page.lru is not None:
            raise ValueError("page must leave its LRU list before freeing")
        if self._used_pages == 0:
            raise RuntimeError(f"node {self.node_id} frame accounting underflow")
        self._used_pages -= 1

    def __repr__(self) -> str:
        return (
            f"NumaNode(id={self.node_id}, tier={self.tier.name}, "
            f"used={self._used_pages}/{self.capacity_pages})"
        )
