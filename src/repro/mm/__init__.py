"""Memory-management substrate: the simulator's kernel MM layer.

Everything a tiering policy needs to stand on: pages and flags, per-node
LRU vectors (including the paper's promote lists), NUMA nodes tagged by
tier, watermarks, the allocator, the migration engine, process page
tables with hardware accessed bits, the backing store, and the generic
PFRA scan machinery.
"""

from repro.mm.address_space import MemoryRegion, Process
from repro.mm.alloc import AllocationResult, PageAllocator
from repro.mm.flags import PageFlags
from repro.mm.hardware import HardwareModel, MemoryTier
from repro.mm.lruvec import ListKind, LruList, LruVec
from repro.mm.migrate import MigrationEngine, MigrationOutcome
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.page_table import PageTable, PageTableEntry
from repro.mm.swap import BackingStore
from repro.mm.system import MemorySystem, OutOfMemoryError
from repro.mm.watermarks import PressureLevel, Watermarks, compute_watermarks

__all__ = [
    "MemoryRegion",
    "Process",
    "AllocationResult",
    "PageAllocator",
    "PageFlags",
    "HardwareModel",
    "MemoryTier",
    "ListKind",
    "LruList",
    "LruVec",
    "MigrationEngine",
    "MigrationOutcome",
    "NumaNode",
    "Page",
    "PageTable",
    "PageTableEntry",
    "BackingStore",
    "MemorySystem",
    "OutOfMemoryError",
    "PressureLevel",
    "Watermarks",
    "compute_watermarks",
]
