"""The MULTI-CLOCK tiering policy — the paper's core contribution.

MULTI-CLOCK runs a modified CLOCK per memory tier.  Page importance is
established by *two* recent references (recency + frequency): the first
reference makes a page referenced, the second activates it, the third
marks it ``PagePromote`` and moves it to the per-node promote list, and
the periodic ``kpromoted`` daemon migrates referenced promote-list pages
up to DRAM.  Demotion is the watermark-driven PFRA path extended to
migrate cold pages down a tier instead of straight to swap.
"""

from __future__ import annotations

from repro.core.demotion import DemotionDaemon
from repro.core.kpromoted import KPromoted
from repro.core.state import move_to_promote
from repro.mm.numa import NumaNode
from repro.mm.page import Page
from repro.mm.system import MemorySystem
from repro.mm.vmscan import mark_page_accessed
from repro.policies import movement
from repro.policies.base import PolicyFeatures, TieringPolicy, register_policy
from repro.sim.events import Daemon

__all__ = ["MultiClockPolicy"]


@register_policy("multiclock")
class MultiClockPolicy(TieringPolicy):
    """Recency+frequency page selection with per-tier CLOCKs."""

    features = PolicyFeatures(
        tiering="MULTI-CLOCK",
        page_access_tracking="Reference Bit",
        selection_promotion="Recency + Frequency",
        selection_demotion="Recency",
        numa_aware="Yes",
        space_overhead="No",
        generality="All",
        evaluation="PM",
        usability_limitation="None",
        key_insight="Low overhead Recency/Frequency",
    )

    def __init__(self, system: MemorySystem) -> None:
        super().__init__(system)
        self._kpromoted = [KPromoted(self, node) for node in system.nodes.values()]
        self._kswapd = [DemotionDaemon(self, node) for node in system.nodes.values()]
        self._c_promote_list_adds = system.stats.counter("multiclock.promote_list_adds")

    # -- hooks ---------------------------------------------------------------

    def second_reference_hook(self, node: NumaNode, page: Page) -> None:
        """Edge 10: re-referenced active page joins the promote list."""
        move_to_promote(node, page)
        self._c_promote_list_adds.n += 1
        if self.system.trace is not None:
            self.system.trace.trace_mm_promote_list_add(node.node_id, page.pfn, "hook")
        if self.system.metrics is not None:
            self.system.metrics.note_promote_list_add(
                page.pfn, self.system.clock.now_ns
            )

    def mark_page_accessed(self, page: Page) -> None:
        mark_page_accessed(self.system, page, on_second_reference=self.second_reference_hook)

    def daemons(self) -> list[Daemon]:
        cfg = self.system.config.daemons
        promoted = [
            Daemon(kp.name, cfg.kpromoted_interval_s, kp.run) for kp in self._kpromoted
        ]
        swapd = [
            Daemon(ks.name, cfg.kswapd_interval_s, ks.run) for ks in self._kswapd
        ]
        return promoted + swapd

    # -- tier movement -------------------------------------------------------

    def demotion_destination(self, node: NumaNode) -> NumaNode | None:
        """Where ``node`` demotes to: the roomiest node one tier down."""
        return movement.demotion_destination(self.system, node)

    def promote_page(self, page: Page) -> bool:
        """Edge 13: migrate a selected page up to the DRAM tier.

        If DRAM has no free frame, demand-demote from its inactive tail
        first — "promotions from the lower tier result in immediate page
        demotions from the higher tier" (Section III-C).
        """
        return movement.promote_page(self.system, page, make_room=True)

    # -- reclaim ---------------------------------------------------------------

    def on_memory_pressure(self, node_ids: tuple[int, ...]) -> None:
        """Wake the pressured nodes' kswapd immediately (bounded work)."""
        for daemon in self._kswapd:
            if daemon.node.node_id in node_ids:
                work_ns = daemon.balance()
                if work_ns:
                    self.system.clock.advance_system(work_ns)

    def direct_reclaim(self) -> int:
        """Run the demotion pipeline synchronously, then fall back."""
        freed_before = self.system.stats.get("reclaim.evictions")
        for daemon in self._kswapd:
            work_ns = daemon.balance()
            if work_ns:
                self.system.clock.advance_system(work_ns)
        freed = self.system.stats.get("reclaim.evictions") - freed_before
        if any(node.can_allocate() for node in self.system.nodes.values()):
            return max(freed, 1)
        return super().direct_reclaim()
