"""Section VII extension: workload-adaptive kpromoted scheduling.

"it could be valuable to dynamically adjust the scanning interval for
kpromoted by analyzing the characteristics of the running workload."

The controller is a banded multiplicative loop on each node's kpromoted
interval, driven by the *workload's PM traffic share* between wakeups —
the "characteristics of the running workload" the paper suggests
analyzing — disambiguated by the promotion pipeline's yield:

* a high PM share of recent accesses means the application is paying PM
  latency for a meaningful part of its traffic: there is placement work
  to do, so the daemon speeds up (interval x ``SPEEDUP``);
* an idle machine, or a quiet PM tier with an empty promotion pipeline,
  means placement has converged: the daemon backs off (``BACKOFF``)
  after a few such wakeups and stops burning CPU;
* anything in between holds the current interval.

A warmup grace period skips the first wakeups (cold lists say nothing),
and bounds keep the interval within [1/8x, 8x] of the configured base so
a misbehaving estimate can neither starve nor freeze the daemon.
"""

from __future__ import annotations

from repro.core.multiclock import MultiClockPolicy
from repro.mm.system import MemorySystem
from repro.policies.base import PolicyFeatures, register_policy
from repro.sim.events import Daemon
from repro.sim.vclock import NANOS_PER_SECOND

__all__ = ["AdaptiveMultiClockPolicy"]

SPEEDUP = 0.5
BACKOFF = 2.0
IDLE_WAKEUPS_BEFORE_BACKOFF = 3
WARMUP_WAKEUPS = 5
RANGE = 8.0
PM_PRESSURE_SHARE = 0.25
"""PM share of recent traffic above which faster scanning is warranted."""
PM_QUIET_SHARE = 0.05
"""PM share below which an empty pipeline means convergence."""
QUALITY_FLOOR = 0.25
"""Re-access rate of recent promotions below which the interval is too
short: the scan cadence *is* the frequency filter's time constant, so
over-frequent scanning promotes one-touch pages exactly like Nimble.
Dropping below the floor forces a back-off."""
QUALITY_GATE = 0.5
"""Re-access rate required before a speed-up is allowed."""
MIN_PROMOTIONS_FOR_QUALITY = 5
"""Fewer recent promotions than this make the quality estimate noise."""


@register_policy("multiclock-adaptive")
class AdaptiveMultiClockPolicy(MultiClockPolicy):
    """MULTI-CLOCK with self-tuning kpromoted intervals."""

    features = PolicyFeatures(
        tiering="MULTI-CLOCK (adaptive interval, §VII extension)",
        page_access_tracking="Reference Bit",
        selection_promotion="Recency + Frequency",
        selection_demotion="Recency",
        numa_aware="Yes",
        space_overhead="No",
        generality="All",
        evaluation="PM",
        usability_limitation="None",
        key_insight="MIMD control of the scan interval from promotion yield",
    )

    def __init__(self, system: MemorySystem) -> None:
        super().__init__(system)
        base_s = system.config.daemons.kpromoted_interval_s
        self._base_interval_ns = int(base_s * NANOS_PER_SECOND)
        self._min_interval_ns = max(1, int(self._base_interval_ns / RANGE))
        self._max_interval_ns = int(self._base_interval_ns * RANGE)
        self._idle_streak: dict[int, int] = {}
        self._wakeups_seen: dict[int, int] = {}
        self._kpromoted_daemons: dict[str, Daemon] = {}

    def daemons(self) -> list[Daemon]:
        cfg = self.system.config.daemons
        daemons = [
            Daemon(ks.name, cfg.kswapd_interval_s, ks.run) for ks in self._kswapd
        ]
        for kp in self._kpromoted:
            daemon = Daemon(kp.name, cfg.kpromoted_interval_s, lambda now: 0)
            daemon.body = self._make_adaptive_body(kp, daemon)
            self._kpromoted_daemons[kp.name] = daemon
            daemons.append(daemon)
        return daemons

    _PIPELINE_COUNTERS = ("migrate.promotions", "kpromoted.to_promote_list")

    def _make_adaptive_body(self, kp, daemon: Daemon):
        node_id = kp.node.node_id
        self._idle_streak[node_id] = 0
        self._wakeups_seen[node_id] = 0
        last = {"pm": 0, "total": 0, "pipeline": 0, "promoted": 0, "reaccessed": 0}

        def run(now_ns: int) -> int:
            stats = self.system.stats
            pm_delta = stats.get("accesses.pm") - last["pm"]
            total_delta = stats.get("accesses.total") - last["total"]
            promos_delta = stats.get("migrate.promotions") - last["promoted"]
            reacc_delta = stats.get("promoted.reaccessed") - last["reaccessed"]
            work_ns = kp.run(now_ns)
            pipeline = sum(stats.get(name) for name in self._PIPELINE_COUNTERS)
            yield_ = pipeline - last["pipeline"]
            last["pm"] = stats.get("accesses.pm")
            last["total"] = stats.get("accesses.total")
            last["pipeline"] = pipeline
            last["promoted"] = stats.get("migrate.promotions")
            last["reaccessed"] = stats.get("promoted.reaccessed")
            self._retune(
                daemon, node_id, yield_, pm_delta, total_delta, promos_delta, reacc_delta
            )
            return work_ns

        return run

    def _retune(
        self,
        daemon: Daemon,
        node_id: int,
        yield_: int,
        pm_delta: int,
        total_delta: int,
        promos_delta: int,
        reacc_delta: int,
    ) -> None:
        self._wakeups_seen[node_id] += 1
        if self._wakeups_seen[node_id] <= WARMUP_WAKEUPS:
            return  # cold lists say nothing about the steady state
        pm_share = pm_delta / total_delta if total_delta else 0.0
        quality = (
            reacc_delta / promos_delta
            if promos_delta >= MIN_PROMOTIONS_FOR_QUALITY
            else None
        )
        if quality is not None and quality < QUALITY_FLOOR:
            # Promotions are not being re-accessed: the interval is below
            # the workload's recurrence time and the frequency filter has
            # degenerated into one-touch selection.  Slow down.
            self._idle_streak[node_id] = 0
            daemon.interval_ns = min(
                self._max_interval_ns, int(daemon.interval_ns * BACKOFF)
            )
            self.system.stats.inc("adaptive.quality_backoffs")
        elif (
            total_delta
            and pm_share > PM_PRESSURE_SHARE
            and yield_ > 0
            and (quality is None or quality >= QUALITY_GATE)
        ):
            # The workload is paying PM latency, the scan is finding
            # promotable pages, and recent promotions proved worthwhile:
            # scanning faster will convert that PM traffic sooner.
            self._idle_streak[node_id] = 0
            daemon.interval_ns = max(
                self._min_interval_ns, int(daemon.interval_ns * SPEEDUP)
            )
            self.system.stats.inc("adaptive.speedups")
        elif total_delta == 0 or (yield_ == 0 and pm_share < PM_QUIET_SHARE):
            # Idle machine, or converged placement: stop burning CPU.
            self._idle_streak[node_id] += 1
            if self._idle_streak[node_id] >= IDLE_WAKEUPS_BEFORE_BACKOFF:
                self._idle_streak[node_id] = 0
                daemon.interval_ns = min(
                    self._max_interval_ns, int(daemon.interval_ns * BACKOFF)
                )
                self.system.stats.inc("adaptive.backoffs")
        else:
            self._idle_streak[node_id] = 0  # in the comfortable band: hold

    def current_intervals_s(self) -> dict[str, float]:
        """Live intervals per kpromoted daemon (for inspection/tests)."""
        return {
            name: daemon.interval_ns / NANOS_PER_SECOND
            for name, daemon in self._kpromoted_daemons.items()
        }
