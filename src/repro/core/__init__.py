"""MULTI-CLOCK — the paper's primary contribution.

The Figure-4 page state machine, the per-node ``kpromoted`` promotion
daemon, the watermark-driven demotion pipeline, and the policy class that
wires them into the memory-management substrate.
"""

from repro.core.adaptive import AdaptiveMultiClockPolicy
from repro.core.demotion import DemotionDaemon
from repro.core.kpromoted import KPromoted
from repro.core.multiclock import MultiClockPolicy
from repro.core.rw_weighted import RWWeightedMultiClockPolicy
from repro.core.state import PageState, classify, move_to_promote, recycle_promote_to_active

__all__ = [
    "AdaptiveMultiClockPolicy",
    "DemotionDaemon",
    "KPromoted",
    "MultiClockPolicy",
    "RWWeightedMultiClockPolicy",
    "PageState",
    "classify",
    "move_to_promote",
    "recycle_promote_to_active",
]
