"""The Figure-4 page state machine.

The paper's Figure 4 defines six page states — inactive/active ×
(un)referenced, the new *promote* state, and unevictable — and thirteen
transitions between them.  This module gives each state a name, derives
a page's state from its flags and list membership, and implements the
two transitions that are unique to MULTI-CLOCK:

* edge 10 — an active-referenced page referenced again moves to the
  promote list and gains the ``PagePromote`` flag;
* edge 11 — a promote-list page that was *not* accessed again is recycled
  to the active-unreferenced state.

The remaining edges are the stock PFRA transitions implemented in
:mod:`repro.mm.vmscan` (1, 2, 6, 7, 8, 9), allocation/free (4, 5),
demotion (3) and the kpromoted promotion itself (13); edge 12 is the
self-loop of an accessed promote-list page.
"""

from __future__ import annotations

import enum

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.page import Page

__all__ = ["PageState", "classify", "move_to_promote", "recycle_promote_to_active"]


class PageState(enum.Enum):
    """Vertex names from Figure 4 (plus OFF_LRU for in-flight pages)."""

    INACTIVE_UNREFERENCED = "inactive_unreferenced"
    INACTIVE_REFERENCED = "inactive_referenced"
    ACTIVE_UNREFERENCED = "active_unreferenced"
    ACTIVE_REFERENCED = "active_referenced"
    PROMOTE = "promote"
    UNEVICTABLE = "unevictable"
    OFF_LRU = "off_lru"


def classify(page: Page) -> PageState:
    """Derive the Figure-4 state of ``page`` from flags + list membership."""
    lst = page.lru
    if lst is None:
        return PageState.OFF_LRU
    if lst.kind is ListKind.UNEVICTABLE:
        return PageState.UNEVICTABLE
    if lst.kind is ListKind.PROMOTE:
        return PageState.PROMOTE
    referenced = page.test(PageFlags.REFERENCED)
    if lst.kind is ListKind.ACTIVE:
        return PageState.ACTIVE_REFERENCED if referenced else PageState.ACTIVE_UNREFERENCED
    return PageState.INACTIVE_REFERENCED if referenced else PageState.INACTIVE_UNREFERENCED


def move_to_promote(node: NumaNode, page: Page) -> None:
    """Edge 10: active-referenced page referenced again → promote list.

    This is the paper's extension of ``mark_page_accessed()``: "check for
    pages that are already referenced and marked as active and are being
    referenced again to mark such pages with the PagePromote flag and to
    move them from their corresponding active list to the promote list".
    The REFERENCED flag stays set: it records that the page earned its
    slot with a fresh reference, which kpromoted consumes at edge 13.
    """
    if page.lru is not None:
        page.lru.remove(page)
    page.set(PageFlags.PROMOTE)
    page.set(PageFlags.REFERENCED)
    page.clear(PageFlags.ACTIVE)
    node.lruvec.list_of(page, ListKind.PROMOTE).add_head(page)


def recycle_promote_to_active(
    node: NumaNode, page: Page, *, keep_referenced: bool = False
) -> None:
    """Edge 11: unaccessed promote-list page → active-unreferenced.

    The demotion path's variant ("if that is not possible ... it is moved
    to the active list", Section III-C) passes ``keep_referenced=True``:
    those pages earned promote-list membership with fresh references, so
    they re-enter the active list with their recency intact rather than
    as immediate deactivation candidates.
    """
    if page.lru is not None:
        page.lru.remove(page)
    page.clear(PageFlags.PROMOTE)
    if not keep_referenced:
        page.clear(PageFlags.REFERENCED)
    page.set(PageFlags.ACTIVE)
    node.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
