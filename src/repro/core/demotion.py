"""Watermark-driven demotion — MULTI-CLOCK's kswapd extension.

Section III-C, step by step: when a tier is under pressure, (1) promote-
list pages are migrated up first (or moved to the active list when they
cannot be), (2) the active:inactive ratio is rebalanced against the
√(10·n):1 threshold, and (3) unreferenced inactive-tail pages are
migrated to the lower tier — or, at the lowest tier, written back to
block storage before the OOM killer becomes the last resort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.state import recycle_promote_to_active
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.vmscan import ScanResult, deactivate_excess_active, shrink_inactive_list
from repro.mm.watermarks import PressureLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.policies.base import TieringPolicy

__all__ = ["DemotionDaemon"]


class DemotionDaemon:
    """Per-node kswapd running the Section III-C pressure pipeline.

    Policy-agnostic by duck typing: the policy must provide
    ``demotion_destination(node)`` and ``promote_page(page)``; a policy
    with a ``second_reference_hook`` (MULTI-CLOCK) feeds its promote list
    during the active-list rebalance, others run vanilla CLOCK.
    """

    def __init__(self, policy: "TieringPolicy", node: NumaNode) -> None:
        self.policy = policy
        self.node = node
        stats = policy.system.stats
        self._c_runs = stats.counter("kswapd.runs")
        self._c_pages_scanned = stats.counter("kswapd.pages_scanned")
        self._c_demoted = stats.counter("kswapd.demoted")
        self._c_evicted = stats.counter("kswapd.evicted")

    @property
    def name(self) -> str:
        return f"kswapd/{self.node.node_id}"

    def run(self, now_ns: int) -> int:
        """One wakeup; no-op unless the node is below its low watermark."""
        if self.node.pressure() is PressureLevel.NONE:
            return 0
        return self.balance()

    def balance(self) -> int:
        """Reclaim until free pages climb back above the high watermark."""
        system = self.policy.system
        node = self.node
        budget = system.config.daemons.scan_budget_pages
        if system.trace is not None:
            system.trace.trace_kswapd_wake(node.node_id, node.free_pages)
        total = ScanResult()
        total.merge(self._relieve_promote_list(budget))
        demote_dest = self.policy.demotion_destination(node)
        for is_anon in (True, False):
            if not node.watermarks.below_high(node.free_pages):
                break
            total.merge(
                deactivate_excess_active(
                    system,
                    node,
                    is_anon,
                    budget,
                    on_second_reference=getattr(self.policy, "second_reference_hook", None),
                    ratio_cap=system.config.active_inactive_ratio_cap,
                    force=True,
                )
            )
            target = node.watermarks.reclaim_target(node.free_pages)
            if target <= 0:
                break
            total.merge(
                shrink_inactive_list(
                    system, node, is_anon, target, budget, demote_dest,
                    scanner="kswapd",
                )
            )
        self._c_runs.n += 1
        self._c_pages_scanned.n += total.scanned
        self._c_demoted.n += total.demoted
        self._c_evicted.n += total.evicted
        return total.system_ns

    def _relieve_promote_list(self, budget: int) -> ScanResult:
        """Step 1: promote-list pages leave first when under pressure.

        "Any page in the promote list is first attempted to be migrated to
        a higher-performing tier, and if that is not possible ... it is
        moved to the active list."
        """
        result = ScanResult()
        system = self.policy.system
        tr = system.trace
        can_go_up = self.node.tier.next_higher() is not None
        for is_anon in (True, False):
            promote = self.node.lruvec.list_for(ListKind.PROMOTE, is_anon)
            for page in promote.iter_from_tail():
                if result.scanned >= budget:
                    break
                result.scanned += 1
                moved_up = can_go_up and not page.test(PageFlags.LOCKED)
                if moved_up:
                    moved_up = self.policy.promote_page(page)
                if moved_up:
                    if tr is not None:
                        tr.trace_kswapd_promote(
                            self.node.node_id, page.pfn, page.node_id
                        )
                else:
                    recycle_promote_to_active(self.node, page, keep_referenced=True)
                    result.deactivated += 1
                    if tr is not None:
                        tr.trace_kswapd_recycle_promote(self.node.node_id, page.pfn)
                    if system.metrics is not None:
                        system.metrics.note_promote_drop(page.pfn)
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result
