"""Section VII extension: dirtiness-weighted page placement.

"One possible improvement ... is to also include the dirtiness
information for memory pages in a weighted formula to compute the
importance of a page. ... This additional information becomes
particularly relevant when the underlying memory hardware exhibits
non-uniform latency for the different types of accesses.  For instance,
some PM devices, e.g., Intel Optane PM, are known to have asymmetric
read and write latencies."

Under Optane's effective costs (sustained write bandwidth ~3x below read
bandwidth), write-dominated pages suffer the *most* in PM, so when DRAM
space is contended they are the pages a weighted formula should spend
migrations on.  This variant promotes any selected page while DRAM has
free frames, but once a promotion would require demand-demoting a DRAM
page it only pays that double-migration cost for dirty (recently
written) pages.  The dirty bit is consumed at each decision so a page's
classification tracks its recent behaviour, not its whole history.
"""

from __future__ import annotations

from repro.core.multiclock import MultiClockPolicy
from repro.mm.page import Page
from repro.policies import movement
from repro.policies.base import PolicyFeatures, register_policy

__all__ = ["RWWeightedMultiClockPolicy"]


@register_policy("multiclock-rw")
class RWWeightedMultiClockPolicy(MultiClockPolicy):
    """MULTI-CLOCK that skips promoting write-dominated pages."""

    features = PolicyFeatures(
        tiering="MULTI-CLOCK (RW-weighted, §VII extension)",
        page_access_tracking="Reference Bit + Dirty Bit",
        selection_promotion="Recency + Frequency + Read-dominance",
        selection_demotion="Recency",
        numa_aware="Yes",
        space_overhead="No",
        generality="All",
        evaluation="PM",
        usability_limitation="None",
        key_insight="Spend DRAM on read-heavy pages under asymmetric PM latency",
    )

    def observe_scan(self, page: Page) -> None:
        """Refresh the page's written-this-window observation.

        Every kpromoted scan step harvests the PTE dirty bits, so by the
        time a page reaches a promotion decision (three-plus scans into
        the ladder) its recorded dirtiness reflects the latest inter-scan
        window — not stale history like the load phase's initial write.
        """
        page.policy_data = page.harvest_dirty()

    def promote_page(self, page: Page) -> bool:
        """Edge 13, weighted by dirtiness when DRAM is contended.

        While DRAM has free headroom every selected page promotes,
        exactly as in the baseline.  Once promotion would displace a DRAM
        page (free frames at or below the high watermark — the steady
        state of a full machine), only write-heavy pages — the ones
        paying PM's worst effective latency — justify the double
        migration; clean pages are recycled to the active list and keep
        competing locally.
        """
        dest = movement.promotion_destination(self.system, page)
        contended = dest is None or dest.free_pages <= dest.watermarks.high_pages
        written_recently = bool(page.policy_data) or page.harvest_dirty()
        if contended and not written_recently:
            self.system.stats.inc("multiclock_rw.clean_skips_under_pressure")
            return False
        return super().promote_page(page)
