"""The ``kpromoted`` daemon — one kernel thread per NUMA node.

Section III-B: kpromoted "is woken up periodically to scan the lists,
update them, and migrate any pages from the promote list to a higher tier
due to recent unsupervised accesses.  Every time kpromoted runs, it first
selects the candidate pages for promotion and promotes all the pages it
selected."  The per-node thread design "follows those of PFRA for the
kswapd eviction daemon ... to avoid lock contention".

A run over its node does, budget-limited per list (the paper sets the
scan budget to 1024 pages):

1. inactive-list scan — harvest accessed bits, walking pages up the
   recency ladder (edges 1 and 6 of Figure 4);
2. active-list scan — re-referenced pages move to the promote list
   (edges 7/8 and 10);
3. promote-list drain — pages referenced since joining are migrated to
   the DRAM tier (edge 13, making room by demand demotion if DRAM is
   under pressure); stale ones recycle to the active list (edge 11).
   On a DRAM node there is no higher tier, so the whole promote list
   recycles to active.

The two harvesting scans run as vectorized column sweeps over the
struct-of-arrays page store: one pointer walk collects the budgeted tail
segment, numpy masks decide every transition at once, and the list is
rebuilt with a handful of fancy-index link writes.  A pass that runs out
of list before budget keeps the CLOCK semantics of the scalar loop —
already-rotated pages are re-visited as pure rotations, which the sweep
reproduces as a rotation of the survivor block.  The scalar loops remain
as the reference path, used whenever a tracer is attached (per-page
tracepoints must fire in visit order) or the policy overrides
``observe_scan`` (per-page observation order matters); the drain keeps
its scalar form — every page it visits leaves the list through the
migration machinery, which is where all the cost lives anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.state import move_to_promote, recycle_promote_to_active
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.numa import NumaNode
from repro.mm.pagestore import NO_PFN
from repro.mm.vmscan import ScanResult, shrink_inactive_list
from repro.policies.base import TieringPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.multiclock import MultiClockPolicy

__all__ = ["KPromoted"]


class KPromoted:
    """Promotion daemon bound to one node of a MULTI-CLOCK system."""

    def __init__(self, policy: "MultiClockPolicy", node: NumaNode) -> None:
        self.policy = policy
        self.node = node
        stats = policy.system.stats
        self._c_runs = stats.counter("kpromoted.runs")
        self._c_pages_scanned = stats.counter("kpromoted.pages_scanned")
        self._c_referenced = stats.counter("kpromoted.referenced")
        self._c_activated = stats.counter("kpromoted.activated")
        self._c_to_promote_list = stats.counter("kpromoted.to_promote_list")
        self._c_promoted = stats.counter("kpromoted.promoted")
        self._c_deactivated = stats.counter("kpromoted.deactivated")

    @property
    def name(self) -> str:
        return f"kpromoted/{self.node.node_id}"

    def run(self, now_ns: int) -> int:
        """One wakeup; returns nanoseconds of system work performed."""
        system = self.policy.system
        budget = system.config.daemons.scan_budget_pages
        total = ScanResult()
        for is_anon in (True, False):
            total.merge(self._scan_inactive(is_anon, budget))
            total.merge(self._scan_active(is_anon, budget))
            total.merge(self._drain_promote(is_anon, budget))
        self._c_runs.n += 1
        self._c_pages_scanned.n += total.scanned
        # Ladder-activity counters: consumed by the adaptive-interval
        # controller (Section VII extension) as its workload signal.
        self._c_referenced.n += total.referenced
        self._c_activated.n += total.activated
        self._c_to_promote_list.n += total.to_promote_list
        self._c_promoted.n += total.promoted
        # Edge 11: promote-list pages recycled to active (stale, or the
        # promotion could not make room) — without this the ladder's
        # recycling arm is invisible next to the other counters.
        self._c_deactivated.n += total.deactivated
        return total.system_ns

    def _vector_scans_ok(self) -> bool:
        """Whether the column-sweep scans preserve observable behaviour."""
        return (
            self.policy.system.trace is None
            and type(self.policy).observe_scan is TieringPolicy.observe_scan
        )

    @staticmethod
    def _wrap_survivors(
        survivors: np.ndarray, n: int, budget: int, result: ScanResult
    ) -> np.ndarray:
        """Account a scan that lapped the list (budget beyond one pass).

        Once every page has been visited, harvested bits are spent, so
        each further visit is a pure rotation of the current tail.  The
        net effect of ``budget - n`` such rotations on the survivor block
        is a rotation by ``(budget - n) mod m``; an emptied list stops
        the scan at ``n``.
        """
        m = len(survivors)
        if m == 0:
            result.scanned = n
            return survivors
        result.scanned = budget
        r = (budget - n) % m
        if r:
            survivors = np.concatenate([survivors[r:], survivors[:r]])
        return survivors

    def _scan_inactive(self, is_anon: bool, budget: int) -> ScanResult:
        """Advance referenced inactive pages up the ladder (edges 1, 6)."""
        if not self._vector_scans_ok():
            return self._scan_inactive_scalar(is_anon, budget)
        result = ScanResult()
        system = self.policy.system
        inactive = self.node.lruvec.list_for(ListKind.INACTIVE, is_anon)
        n = len(inactive)
        if n == 0 or budget <= 0:
            result.system_ns = system.hardware.scan_ns(0)
            return result
        active = self.node.lruvec.list_for(ListKind.ACTIVE, is_anon)
        store = inactive._store
        k1 = min(budget, n)
        visited = store.walk_tail(inactive, k1)
        col_acc = store.pte_accessed
        col_flags = store.flags
        ref_bit = int(PageFlags.REFERENCED)
        # harvest_accessed across the whole segment: accessed AND mapped.
        acc = col_acc[visited] & (store.mapcount[visited] > 0)
        if acc.any():
            col_acc[visited[acc]] = False
        ref = (col_flags[visited] & ref_bit) != 0
        act_mask = acc & ref
        new_ref = acc & ~ref
        survivors = visited[~act_mask]
        movers = visited[act_mask]
        n_ref = int(np.count_nonzero(new_ref))
        if n_ref:
            col_flags[visited[new_ref]] |= ref_bit
        if budget > n:
            survivors = self._wrap_survivors(survivors, n, budget, result)
            rest_tail = NO_PFN
        else:
            result.scanned = k1
            rest_tail = int(store.lru_prev[visited[-1]]) if k1 < n else NO_PFN
        store.rebuild_after_scan(inactive, survivors, rest_tail, len(movers))
        if len(movers):
            col_flags[movers] = (col_flags[movers] & ~ref_bit) | int(PageFlags.ACTIVE)
            store.prepend_head_block(active, movers, int(PageFlags.LRU))
            result.activated = len(movers)
        result.referenced = n_ref
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result

    def _scan_active(self, is_anon: bool, budget: int) -> ScanResult:
        """Move twice-referenced active pages to the promote list (edge 10)."""
        if not self._vector_scans_ok():
            return self._scan_active_scalar(is_anon, budget)
        result = ScanResult()
        system = self.policy.system
        active = self.node.lruvec.list_for(ListKind.ACTIVE, is_anon)
        n = len(active)
        if n == 0 or budget <= 0:
            result.system_ns = system.hardware.scan_ns(0)
            return result
        promote = self.node.lruvec.list_for(ListKind.PROMOTE, is_anon)
        store = active._store
        k1 = min(budget, n)
        visited = store.walk_tail(active, k1)
        col_acc = store.pte_accessed
        col_flags = store.flags
        ref_bit = int(PageFlags.REFERENCED)
        acc = col_acc[visited] & (store.mapcount[visited] > 0)
        if acc.any():
            col_acc[visited[acc]] = False
        ref = (col_flags[visited] & ref_bit) != 0
        mov_mask = acc & ref
        new_ref = acc & ~ref
        survivors = visited[~mov_mask]
        movers = visited[mov_mask]
        n_ref = int(np.count_nonzero(new_ref))
        if n_ref:
            col_flags[visited[new_ref]] |= ref_bit
        if budget > n:
            survivors = self._wrap_survivors(survivors, n, budget, result)
            rest_tail = NO_PFN
        else:
            result.scanned = k1
            rest_tail = int(store.lru_prev[visited[-1]]) if k1 < n else NO_PFN
        store.rebuild_after_scan(active, survivors, rest_tail, len(movers))
        if len(movers):
            col_flags[movers] = (
                col_flags[movers] & ~int(PageFlags.ACTIVE)
            ) | (int(PageFlags.PROMOTE) | ref_bit)
            store.prepend_head_block(promote, movers, int(PageFlags.LRU))
            result.to_promote_list = len(movers)
            if system.metrics is not None:
                note_add = system.metrics.note_promote_list_add
                now_ns = system.clock.now_ns
                for pfn in movers.tolist():
                    note_add(pfn, now_ns)
        result.referenced = n_ref
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result

    def _scan_inactive_scalar(self, is_anon: bool, budget: int) -> ScanResult:
        """Reference implementation of the inactive sweep (traced runs)."""
        result = ScanResult()
        system = self.policy.system
        inactive = self.node.lruvec.list_for(ListKind.INACTIVE, is_anon)
        active = self.node.lruvec.list_for(ListKind.ACTIVE, is_anon)
        for page in inactive.iter_from_tail():
            if result.scanned >= budget:
                break
            result.scanned += 1
            self.policy.observe_scan(page)
            if not page.harvest_accessed():
                # Advance the CLOCK hand: rotate unaccessed pages so the
                # next wakeup continues the sweep instead of re-scanning
                # the same cold tail forever.
                inactive.rotate_to_head(page)
                continue
            if page.test(PageFlags.REFERENCED):
                inactive.remove(page)
                page.clear(PageFlags.REFERENCED)
                page.set(PageFlags.ACTIVE)
                active.add_head(page)
                result.activated += 1
                if system.trace is not None:
                    system.trace.trace_mm_lru_activate(
                        self.node.node_id, page.pfn, "kpromoted"
                    )
            else:
                page.set(PageFlags.REFERENCED)
                inactive.rotate_to_head(page)
                result.referenced += 1
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result

    def _scan_active_scalar(self, is_anon: bool, budget: int) -> ScanResult:
        """Reference implementation of the active sweep (traced runs)."""
        result = ScanResult()
        system = self.policy.system
        active = self.node.lruvec.list_for(ListKind.ACTIVE, is_anon)
        for page in active.iter_from_tail():
            if result.scanned >= budget:
                break
            result.scanned += 1
            self.policy.observe_scan(page)
            if not page.harvest_accessed():
                active.rotate_to_head(page)  # advance the CLOCK hand
                continue
            if page.test(PageFlags.REFERENCED):
                move_to_promote(self.node, page)
                result.to_promote_list += 1
                if system.trace is not None:
                    system.trace.trace_mm_promote_list_add(
                        self.node.node_id, page.pfn, "kpromoted"
                    )
                if system.metrics is not None:
                    system.metrics.note_promote_list_add(
                        page.pfn, system.clock.now_ns
                    )
            else:
                page.set(PageFlags.REFERENCED)
                active.rotate_to_head(page)
                result.referenced += 1
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result

    def _drain_promote(self, is_anon: bool, budget: int) -> ScanResult:
        """Promote referenced promote-list pages to DRAM (edges 11-13)."""
        result = ScanResult()
        system = self.policy.system
        tr = system.trace
        promote = self.node.lruvec.list_for(ListKind.PROMOTE, is_anon)
        can_go_up = self.node.tier.next_higher() is not None
        for page in promote.iter_from_tail():
            if result.scanned >= budget:
                break
            result.scanned += 1
            # Consume BOTH reference signals every pass.  With the old
            # `harvest_accessed() or test_and_clear(...)` short-circuit, a
            # harvested accessed bit left the REFERENCED flag set, so the
            # page carried a stale second reference into its next ladder
            # pass instead of having to earn one.
            harvested = page.harvest_accessed()
            referenced = page.test_and_clear(PageFlags.REFERENCED)
            accessed = harvested or referenced
            if not can_go_up or not accessed:
                recycle_promote_to_active(self.node, page)
                result.deactivated += 1
                if tr is not None:
                    tr.trace_kpromoted_recycle(
                        self.node.node_id, page.pfn,
                        "top_tier" if not can_go_up else "stale",
                    )
                if system.metrics is not None:
                    system.metrics.note_promote_drop(page.pfn)
                continue
            if self.policy.promote_page(page):
                result.promoted += 1
                if tr is not None:
                    tr.trace_kpromoted_promote(
                        self.node.node_id, page.pfn, page.node_id
                    )
            else:
                # Could not make room upstairs; keep the page hot locally.
                recycle_promote_to_active(self.node, page)
                result.deactivated += 1
                if tr is not None:
                    tr.trace_kpromoted_recycle(self.node.node_id, page.pfn, "no_room")
                if system.metrics is not None:
                    system.metrics.note_promote_drop(page.pfn)
        result.system_ns = system.hardware.scan_ns(result.scanned)
        return result
