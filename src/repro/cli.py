"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``policies`` — list registered tiering policies with their Table-I row.
* ``run`` — simulate a synthetic workload under a policy and print the
  result summary and memory report.
* ``experiment`` — regenerate one of the paper's tables/figures by name
  (``fig1`` ... ``fig10``, ``table1``, ``table2``, ``overhead``,
  ``ablation-*``, ``ext-*``, ``colo``).
* ``colo`` — colocate N heterogeneous KV tenants on one machine with
  memcg accounting armed; prints the per-tenant p50/p99 table, with the
  usual exposition outputs (``--vmstat``, ``--prometheus``, ``--json``),
  a saved metrics snapshot (``--snapshot``) and an HTML dashboard
  (``--html``).
* ``record`` / ``replay`` — capture a workload's access trace to a file,
  or replay a trace under any policy.
* ``bench`` — host-wall-clock microbenchmarks of the simulator's hot
  paths, written to ``BENCH_perf.json`` (``--smoke`` for CI sizes).
* ``check`` — run a workload with the ``CONFIG_DEBUG_VM`` invariant
  checker sweeping periodically; nonzero exit on any violation.
* ``chaos`` — run a policy × workload matrix under a fault schedule and
  write ``CHAOS_report.json``; nonzero exit unless every cell is clean.
* ``trace`` — run a workload with the kernel-style tracepoint layer
  armed: tail the event stream, print per-event summaries, export
  NDJSON / perfetto JSON, and audit counters against the trace.
* ``sweep`` — shard a policy × workload × seed grid across crash-
  isolated worker processes (``--workers``), with per-cell retry,
  ``--timeout-s`` kills, and a resumable manifest (``--resume``);
  writes a deterministic ``SWEEP_report.json`` whose bytes do not
  depend on the worker count.  With ``--hosts``, cells shard across
  remote ``sweep-agent`` processes with heartbeats, lease re-dispatch,
  and graceful degradation to the local pool.  ``--journal`` arms the
  control-plane span journal (drives ``top``/``timeline`` and the
  report's timing/profile sections).
* ``sweep-agent`` — the host-side half of ``sweep --hosts``: serves
  cells to a driver over stdin/stdout (started via ssh, not by hand).
* ``top`` — live progress view of a running ``sweep --journal``: polls
  the atomically-rewritten ``<out>.status.json`` (``--once`` for one
  frame, ``--prometheus`` for scrapers).
* ``timeline`` — export a sweep's span journal as Chrome trace-event
  JSON with one lane per driver/host/worker; loads directly in
  https://ui.perfetto.dev.
* ``stat`` — run a workload with the metrics registry armed and print a
  one-shot snapshot: ``/proc/vmstat``-style ``name value`` lines by
  default, ``--prometheus`` text exposition, pure ``--json``, or a
  ``--windows`` per-window gauge table; ``--node`` narrows to one node.
* ``report`` — run a workload with metrics armed and write a single
  self-contained HTML dashboard (``--html``, inline SVG, no external
  assets), folding in ``SWEEP_report.json`` / ``CHAOS_report.json``
  when present.

Operator errors (unknown policy, impossible sizing, running out of
simulated memory) exit with a one-line message, not a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.machine import Machine
from repro.mm.system import OutOfMemoryError
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig

__all__ = ["main", "EXPERIMENTS"]


def _lazy(module: str, runner: str, renderer: str) -> Callable[[], str]:
    def run() -> str:
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        return getattr(mod, renderer)(getattr(mod, runner)())

    return run


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "fig1": _lazy("fig1_heatmaps", "run_fig1", "render_fig1"),
    "fig2": _lazy("fig2_frequency", "run_fig2", "render_fig2"),
    "fig4": _lazy("fig4_transitions", "run_fig4", "render_fig4"),
    "fig5": _lazy("fig5_ycsb", "run_fig5", "render_fig5"),
    "fig6": _lazy("fig6_gapbs", "run_fig6", "render_fig6"),
    "fig7": _lazy("fig7_memory_mode", "run_fig7", "render_fig7"),
    "fig8": _lazy("fig8_promotions", "run_fig8", "render_fig8"),
    "fig9": _lazy("fig9_reaccess", "run_fig9", "render_fig9"),
    "fig10": _lazy("fig10_interval", "run_fig10", "render_fig10"),
    "table1": lambda: __import__(
        "repro.experiments.table1_features", fromlist=["render_table1"]
    ).render_table1(),
    "table2": lambda: __import__(
        "repro.experiments.table2_inventory", fromlist=["render_table2"]
    ).render_table2(),
    "overhead": _lazy("overhead", "run_overhead", "render_overhead"),
    "ablation-ratio": _lazy("ablation_ratio", "run_ablation_ratio", "render_ablation_ratio"),
    "ablation-dirty": _lazy("ablation_dirty", "run_ablation_dirty", "render_ablation_dirty"),
    "ablation-adaptive": _lazy(
        "ablation_adaptive", "run_ablation_adaptive", "render_ablation_adaptive"
    ),
    "ext-workload-e": _lazy("ext_workload_e", "run_ext_workload_e", "render_ext_workload_e"),
    "ext-dual-socket": _lazy("ext_dual_socket", "run_ext_dual_socket", "render_ext_dual_socket"),
    "colo": _lazy("colo", "run_colo", "render_colo"),
}

WORKLOADS = ("zipf", "uniform", "seqscan", "shifting-hotset")


def _workload_spec(args: argparse.Namespace, kind: str, seed: int | None = None) -> dict:
    """The declarative form of one ``--workload`` choice — the same
    description the sweep runners build cells from."""
    return {
        "kind": kind,
        "pages": args.pages,
        "ops": args.ops,
        "seed": args.seed if seed is None else seed,
        "write_ratio": args.write_ratio,
    }


def _workload_builders(args: argparse.Namespace) -> dict[str, Callable]:
    from repro.sweep.runners import build_workload

    return {
        kind: (lambda kind=kind: build_workload(_workload_spec(args, kind)))
        for kind in WORKLOADS
    }


def _build_workload(args: argparse.Namespace):
    return _workload_builders(args)[args.workload]()


def _build_config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        dram_pages=(args.dram_pages,),
        pm_pages=(args.pm_pages,),
        swap_pages=args.swap_pages,
        daemons=DaemonConfig(
            kpromoted_interval_s=args.interval,
            kswapd_interval_s=args.interval / 2,
            hint_scan_interval_s=args.interval,
        ),
        seed=args.seed,
    )


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default="multiclock", help="tiering policy name")
    parser.add_argument("--dram-pages", type=int, default=1024)
    parser.add_argument("--pm-pages", type=int, default=8192)
    parser.add_argument("--swap-pages", type=int, default=1 << 28,
                        help="backing-store capacity in pages")
    parser.add_argument("--interval", type=float, default=0.005,
                        help="daemon interval in virtual seconds")
    parser.add_argument("--seed", type=int, default=42)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=WORKLOADS, default="shifting-hotset")
    parser.add_argument("--pages", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=100_000)
    parser.add_argument("--write-ratio", type=float, default=0.0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MULTI-CLOCK hybrid-memory tiering reproduction (HPCA 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list registered tiering policies")

    run_p = sub.add_parser("run", help="simulate a synthetic workload")
    _add_machine_args(run_p)
    _add_workload_args(run_p)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))

    rec_p = sub.add_parser("record", help="record a workload's access trace")
    rec_p.add_argument("path", help="output trace file")
    _add_machine_args(rec_p)
    _add_workload_args(rec_p)

    rep_p = sub.add_parser("replay", help="replay a recorded trace")
    rep_p.add_argument("path", help="trace file to replay")
    _add_machine_args(rep_p)

    bench_p = sub.add_parser("bench", help="run the hot-path microbenchmarks")
    bench_p.add_argument("--smoke", action="store_true",
                         help="CI-sized workloads (seconds, not minutes)")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="timing repeats per benchmark (best-of)")
    bench_p.add_argument("--out", default=None,
                         help="output JSON path (default BENCH_perf.json)")

    check_p = sub.add_parser(
        "check", help="run a workload under the VM invariant checker"
    )
    _add_machine_args(check_p)
    _add_workload_args(check_p)
    check_p.add_argument("--strict", action="store_true",
                         help="raise on the first dirty sweep instead of counting")

    chaos_p = sub.add_parser(
        "chaos", help="run a policy × workload matrix under injected faults"
    )
    _add_machine_args(chaos_p)
    _add_workload_args(chaos_p)
    chaos_p.add_argument("--policies", default="multiclock,static",
                         help="comma-separated policies for the matrix")
    chaos_p.add_argument("--workloads", default=None,
                         help="comma-separated workloads (default: --workload)")
    chaos_p.add_argument("--fail-rate", type=float, default=0.2,
                         help="transient migration copy-failure probability")
    chaos_p.add_argument("--out", default=None,
                         help="report path (default CHAOS_report.json)")
    chaos_p.add_argument("--trace-capacity", type=int, default=None,
                         help="arm tracing with this per-node ring capacity "
                              "and audit every cell")
    chaos_p.add_argument("--workers", type=int, default=1,
                         help="shard the matrix across this many crash-"
                              "isolated worker processes")

    sweep_p = sub.add_parser(
        "sweep", help="shard a policy × workload × seed grid across workers"
    )
    _add_machine_args(sweep_p)
    _add_workload_args(sweep_p)
    sweep_p.add_argument("--policies",
                         default="static,multiclock,nimble,autotiering-cpm,autotiering-opm",
                         help="comma-separated policies (default: the Fig 5 set)")
    sweep_p.add_argument("--workloads", default=None,
                         help="comma-separated workloads (default: --workload)")
    sweep_p.add_argument("--seeds", default=None,
                         help="comma-separated seeds (default: --seed)")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="worker processes; cells are crash-isolated")
    sweep_p.add_argument("--timeout-s", type=float, default=None,
                         help="kill a cell after this many host seconds "
                              "(counts as a failed attempt)")
    sweep_p.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per cell before it is recorded as failed")
    sweep_p.add_argument("--resume", action="store_true",
                         help="skip cells already completed in the manifest")
    sweep_p.add_argument("--manifest", default=None,
                         help="checkpoint path (default: <out>.manifest.json)")
    sweep_p.add_argument("--cache", dest="cache", action="store_true",
                         default=True,
                         help="serve unchanged cells from the content-"
                              "addressed result cache (default: on)")
    sweep_p.add_argument("--no-cache", dest="cache", action="store_false",
                         help="disable the result cache; every cell runs live")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="result cache directory (default: <out>.cache)")
    sweep_p.add_argument("--out", default=None,
                         help="report path (default SWEEP_report.json)")
    sweep_p.add_argument("--hosts", default=None,
                         help="comma-separated sweep-agent hosts "
                              "(loopback or [user@]host[:workers]); shards "
                              "cells across machines with heartbeats, "
                              "re-dispatch, and local-pool fallback")
    sweep_p.add_argument("--heartbeat-s", type=float, default=None,
                         help="agent heartbeat interval in host seconds "
                              "(default 5; a host silent for 3 intervals is "
                              "lost and its cells re-dispatched)")
    sweep_p.add_argument("--straggler-factor", type=float, default=None,
                         help="re-dispatch a leased cell running longer than "
                              "this multiple of the median cell time "
                              "(default 4; 0 disables)")
    sweep_p.add_argument("--connect-timeout-s", type=float, default=10.0,
                         help="seconds to wait for an agent's hello")
    sweep_p.add_argument("--reconnect-attempts", type=int, default=1,
                         help="reconnects per lost host before it is dead")
    sweep_p.add_argument("--journal", nargs="?", const="", default=None,
                         metavar="PATH",
                         help="arm the span journal: write control-plane "
                              "begin/end spans as NDJSON (default path "
                              "<out>.journal.ndjson), keep a live "
                              "<out>.status.json for `repro top`, and add "
                              "timing/profile sections to the report")

    agent_p = sub.add_parser(
        "sweep-agent",
        help="serve sweep cells to a remote driver over stdin/stdout "
             "(started by `repro sweep --hosts`, rarely by hand)",
    )
    agent_p.add_argument("--workers", type=int, default=1,
                         help="size of this agent's local worker pool")

    top_p = sub.add_parser(
        "top",
        help="live progress view of a running `sweep --journal` "
             "(reads <out>.status.json)",
    )
    top_p.add_argument("path", nargs="?", default=DEFAULT_SWEEP_REPORT,
                       help="sweep report path or its .status.json "
                            "(default SWEEP_report.json)")
    top_p.add_argument("--once", action="store_true",
                       help="render one frame and exit (for scripts/CI)")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval in seconds (default 1)")
    top_p.add_argument("--prometheus", action="store_true",
                       help="print the Prometheus text exposition of one "
                            "snapshot and exit (implies --once)")

    timeline_p = sub.add_parser(
        "timeline",
        help="export a sweep's span journal as Chrome trace-event JSON "
             "(loads in https://ui.perfetto.dev)",
    )
    timeline_p.add_argument("journal", nargs="?", default=DEFAULT_SWEEP_REPORT,
                            help="journal NDJSON path, or a sweep report "
                                 "path to derive <out>.journal.ndjson from "
                                 "(default SWEEP_report.json)")
    timeline_p.add_argument("--out", default=None,
                            help="output path (default <journal>.trace.json)")

    colo_p = sub.add_parser(
        "colo", help="colocate N KV tenants with memcg accounting armed"
    )
    colo_p.add_argument("--policy", default="multiclock", help="tiering policy name")
    colo_p.add_argument("--tenants", type=int, default=3,
                        help="number of colocated KV tenants")
    colo_p.add_argument("--records", type=int, default=None,
                        help="records per tenant (default: scaled 2000)")
    colo_p.add_argument("--ops", type=int, default=None,
                        help="operations per tenant after its load phase "
                             "(default: scaled 8000)")
    colo_p.add_argument("--limits", default=None,
                        help="comma-separated per-tenant memcg page limits, "
                             "positional; 'none' (or empty) = unlimited, "
                             "e.g. --limits none,400,none")
    colo_p.add_argument("--dram-pages", type=int, default=None,
                        help="DRAM node size (default: combined footprint / 3)")
    colo_p.add_argument("--pm-pages", type=int, default=None,
                        help="PM node size (default: combined footprint * 2)")
    colo_p.add_argument("--swap-pages", type=int, default=1 << 20,
                        help="backing-store capacity in pages")
    colo_p.add_argument("--seed", type=int, default=7)
    colo_p.add_argument("--json", action="store_true",
                        help="print the metrics snapshot as JSON (nothing else)")
    colo_p.add_argument("--prometheus", action="store_true",
                        help="print the Prometheus text exposition (nothing else)")
    colo_p.add_argument("--vmstat", action="store_true",
                        help="also print the vmstat-style metrics dump")
    colo_p.add_argument("--snapshot", default=None, metavar="PATH",
                        help="also write the metrics snapshot JSON "
                             "(feed it to `repro report --snapshot`)")
    colo_p.add_argument("--html", default=None, metavar="PATH",
                        help="also write an HTML dashboard of the run")

    stat_p = sub.add_parser(
        "stat", help="run a workload with metrics armed, print a snapshot"
    )
    _add_machine_args(stat_p)
    _add_workload_args(stat_p)
    stat_p.add_argument("--node", type=int, default=None,
                        help="restrict gauges to one node id (-1 = machine)")
    stat_p.add_argument("--json", action="store_true",
                        help="print the full snapshot as JSON (nothing else)")
    stat_p.add_argument("--prometheus", action="store_true",
                        help="print the Prometheus text exposition")
    stat_p.add_argument("--windows", action="store_true",
                        help="print per-window gauge tables, vmstat -n style")

    report_p = sub.add_parser(
        "report", help="run a workload with metrics armed, write an HTML dashboard"
    )
    _add_machine_args(report_p)
    _add_workload_args(report_p)
    report_p.add_argument("--html", action="store_true",
                          help="emit the HTML dashboard (the default and only "
                               "format; flag kept for forward compatibility)")
    report_p.add_argument("--out", default="REPORT.html",
                          help="output path (default REPORT.html)")
    report_p.add_argument("--sweep", default=None, metavar="PATH",
                          help="SWEEP_report.json to embed "
                               "(default: auto-detect in cwd)")
    report_p.add_argument("--chaos", default=None, metavar="PATH",
                          help="CHAOS_report.json to embed "
                               "(default: auto-detect in cwd)")
    report_p.add_argument("--title", default=None,
                          help="dashboard title (default: workload on policy)")
    report_p.add_argument("--snapshot", default=None, metavar="PATH",
                          help="render a saved metrics snapshot JSON (from "
                               "`repro colo --snapshot` or `repro stat --json`) "
                               "instead of running a workload")

    trace_p = sub.add_parser(
        "trace", help="run a workload with tracepoints armed"
    )
    _add_machine_args(trace_p)
    _add_workload_args(trace_p)
    trace_p.add_argument("--capacity", type=int, default=None,
                         help="ring-buffer capacity per node "
                              "(default 65536; oldest events overwritten)")
    trace_p.add_argument("--events", default=None,
                         help="comma-separated event-name prefixes to keep "
                              "(e.g. mm_migrate,kpromoted)")
    trace_p.add_argument("--tail", type=int, default=0, metavar="N",
                         help="print the last N matching events, trace_pipe style")
    trace_p.add_argument("--no-summary", action="store_true",
                         help="skip the per-event hit table and rate histogram")
    trace_p.add_argument("--ndjson", default=None, metavar="PATH",
                         help="write matching events as NDJSON")
    trace_p.add_argument("--perfetto", default=None, metavar="PATH",
                         help="write matching events as Chrome trace-event JSON")
    trace_p.add_argument("--audit", action="store_true",
                         help="replay the trace against the counters; "
                              "nonzero exit on any mismatch")
    return parser


def _cmd_policies() -> int:
    from repro.policies.base import _REGISTRY

    for name in sorted(_REGISTRY):
        features = _REGISTRY[name].features
        insight = features.key_insight if features else ""
        print(f"{name:>20}  {insight}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = Machine(_build_config(args), args.policy)
    result = run_workload(_build_workload(args), machine.config, machine=machine)
    print(result.summary())
    for node, counts in machine.memory_report().items():
        print(f"  {node}: used {counts['used']}/{counts['capacity']}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(EXPERIMENTS[args.name]())
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.workloads.trace import TraceRecorder

    recorder = TraceRecorder(_build_workload(args), args.path)
    result = run_workload(recorder, _build_config(args), policy=args.policy)
    print(result.summary())
    print(f"trace written to {args.path}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.workloads.trace import TraceReplayWorkload

    replay = TraceReplayWorkload(args.path)
    result = run_workload(replay, _build_config(args), policy=args.policy)
    print(result.summary())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    results = bench.run_suite(smoke=args.smoke, repeats=args.repeats)
    out = args.out or bench.DEFAULT_OUT
    bench.write_results(results, out)
    print(bench.render(results))
    print(f"results written to {out}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    machine = Machine(_build_config(args), args.policy)
    checker = machine.install_invariant_checker(args.interval, strict=args.strict)
    result = run_workload(_build_workload(args), machine.config, machine=machine)
    final = checker.check()
    checks = machine.stats.get("debug_vm.checks")
    violations = machine.stats.get("debug_vm.violations")
    print(result.summary())
    print(f"debug_vm: {checks} sweeps, {violations} violation(s)")
    for violation in final:
        print(f"  {violation}")
    return 1 if violations else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import (
        CapacityLoss,
        CopyFailures,
        FaultPlan,
        render_report,
        run_chaos,
        write_report,
    )
    from repro.faults.chaos import DEFAULT_REPORT

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    workload_names = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else [args.workload]
    )
    builders = _workload_builders(args)
    unknown = [w for w in workload_names if w not in builders]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {', '.join(unknown)}; choose from {', '.join(WORKLOADS)}"
        )
    plan = FaultPlan(
        seed=args.seed,
        events=(
            CopyFailures(start_s=0.002, end_s=30.0, rate=args.fail_rate),
            CapacityLoss(
                start_s=0.01, end_s=0.05, node_id=1,
                frames=max(1, args.pm_pages // 8),
            ),
        ),
    )
    report = run_chaos(
        policies,
        {name: builders[name] for name in workload_names},
        plan,
        _build_config(args),
        check_interval_s=args.interval,
        trace_capacity=args.trace_capacity,
        workers=args.workers,
    )
    out = args.out or DEFAULT_REPORT
    write_report(report, out)
    print(render_report(report))
    print(f"report written to {out}")
    return 0 if report.all_clean else 1


DEFAULT_SWEEP_REPORT = "SWEEP_report.json"


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.run import RunResult
    from repro.sweep import (
        DEFAULT_HEARTBEAT_S,
        DEFAULT_STRAGGLER_FACTOR,
        SweepCell,
        SweepInterrupted,
        SweepSpec,
        build_report,
        parse_hosts,
        run_remote_sweep,
        run_sweep,
        write_report,
    )

    # Validate the distributed-mode flags up front: a bad host list or a
    # nonsense interval is an operator mistake, reported before any cell
    # (or agent) is started.
    hosts = parse_hosts(args.hosts, default_workers=args.workers) \
        if args.hosts is not None else None
    if hosts is None and (args.heartbeat_s is not None
                          or args.straggler_factor is not None):
        raise ValueError(
            "--heartbeat-s/--straggler-factor only apply with --hosts"
        )
    heartbeat_s = (
        DEFAULT_HEARTBEAT_S if args.heartbeat_s is None else args.heartbeat_s
    )
    if not (math.isfinite(heartbeat_s) and heartbeat_s > 0.0):
        raise ValueError(
            f"invalid --heartbeat-s {args.heartbeat_s!r}: must be a "
            f"positive finite number of seconds"
        )
    straggler_factor = (
        DEFAULT_STRAGGLER_FACTOR if args.straggler_factor is None
        else args.straggler_factor
    )
    if straggler_factor and (
            not math.isfinite(straggler_factor) or straggler_factor < 1.0):
        raise ValueError(
            f"invalid --straggler-factor {args.straggler_factor!r}: must be "
            f">= 1 (or 0 to disable straggler re-dispatch)"
        )

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    workload_names = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else [args.workload]
    )
    unknown = [w for w in workload_names if w not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {', '.join(unknown)}; choose from {', '.join(WORKLOADS)}"
        )
    try:
        seeds = (
            [int(s.strip()) for s in args.seeds.split(",") if s.strip()]
            if args.seeds
            else [args.seed]
        )
    except ValueError:
        raise ValueError(
            f"invalid --seeds {args.seeds!r}: must be comma-separated integers"
        ) from None

    cells = []
    for policy in policies:
        for workload_name in workload_names:
            for seed in seeds:
                cells.append(
                    SweepCell(
                        id=f"{policy}/{workload_name}/s{seed}",
                        runner="run-workload",
                        params={
                            "policy": policy,
                            "workload": _workload_spec(args, workload_name, seed),
                            "config": {
                                "dram_pages": args.dram_pages,
                                "pm_pages": args.pm_pages,
                                "swap_pages": args.swap_pages,
                                "interval": args.interval,
                                "seed": seed,
                            },
                        },
                    )
                )
    spec = SweepSpec(name="repro-sweep", cells=tuple(cells))
    out = args.out or DEFAULT_SWEEP_REPORT
    manifest = args.manifest or f"{out}.manifest.json"
    cache_dir = (args.cache_dir or f"{out}.cache") if args.cache else None
    note = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731

    # --journal arms the observability plane: the NDJSON span journal,
    # the live <out>.status.json that `repro top` polls, and the
    # timing/profile sections of the report.  Without it `obs` stays
    # None and the sweep layer builds its null observer, so the report
    # bytes are identical to a journal-off run (CI pins this with cmp).
    obs = None
    journal_path = None
    if args.journal is not None:
        from repro.obs import Journal, StatusBoard, SweepObserver

        journal_path = args.journal or f"{out}.journal.ndjson"
        journal = Journal(journal_path)
        obs = SweepObserver(
            progress=note,
            journal=journal,
            status=StatusBoard(f"{out}.status.json", total=len(cells),
                               spec=spec.name, trace=journal.trace_id),
        )
    try:
        if hosts is not None:
            result = run_remote_sweep(
                spec,
                hosts,
                timeout_s=args.timeout_s,
                max_attempts=args.max_attempts,
                manifest_path=manifest,
                resume=args.resume,
                cache_dir=cache_dir,
                heartbeat_s=heartbeat_s,
                straggler_factor=straggler_factor,
                connect_timeout_s=args.connect_timeout_s,
                reconnect_attempts=args.reconnect_attempts,
                local_workers=args.workers,
                workers_per_host=args.workers,
                progress=note,
                obs=obs,
            )
        else:
            result = run_sweep(
                spec,
                workers=args.workers,
                timeout_s=args.timeout_s,
                max_attempts=args.max_attempts,
                manifest_path=manifest,
                resume=args.resume,
                cache_dir=cache_dir,
                progress=note,
                obs=obs,
            )
    except (SweepInterrupted, KeyboardInterrupt):
        # The journal gets its synthetic aborted ends and the status
        # file its terminal state even on Ctrl-C — a consumer must
        # never see a journal whose begins lack ends.
        if obs is not None:
            obs.close("interrupted")
        raise

    timing = profile = None
    if obs is not None:
        obs.close("done" if result.ok else "failed")
        from repro.obs import fold_profile, read_journal

        profile = fold_profile(read_journal(journal_path))
        timing = obs.timing_rows()

    report = build_report(
        result,
        grid={
            "policies": policies,
            "workloads": workload_names,
            "seeds": seeds,
        },
        timing=timing,
        profile=profile,
    )
    write_report(report, out)

    if hosts is not None:
        # Per-host outcomes go to a sidecar, never into the report: the
        # report's bytes must stay identical to a sequential sweep's.
        with open(f"{out}.hosts.json", "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "cache_hits": result.cache_hits,
                    "hosts": [h.to_dict() for h in result.host_outcomes],
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        for h in result.host_outcomes:
            extras = []
            if h.reconnects:
                extras.append(f"{h.reconnects} reconnect(s)")
            if h.duplicates_discarded:
                extras.append(f"{h.duplicates_discarded} duplicate(s) discarded")
            if h.error:
                extras.append(h.error)
            detail = f" ({'; '.join(extras)})" if extras else ""
            print(f"  host {h.host}: {h.state}, {h.done} cell(s) done{detail}",
                  file=sys.stderr)
        if all(h.state == "dead" for h in result.host_outcomes):
            print("warning: every sweep host was lost; the sweep finished "
                  "on the local pool", file=sys.stderr)

    for o in result.outcomes:
        if o.ok:
            r = RunResult.from_dict(o.payload)
            print(f"{o.cell.id:>40}  {r.throughput_ops:>12,.0f} ops/s  "
                  f"{100 * r.dram_access_fraction:5.1f}% DRAM")
        else:
            print(f"{o.cell.id:>40}  FAILED: {o.error}")
    if profile is not None:
        from repro.obs import render_profile

        print(render_profile(profile), file=sys.stderr)
        print(f"  journal written to {journal_path}", file=sys.stderr)

    done = sum(1 for o in result.outcomes if o.ok)
    cached = sum(1 for o in result.outcomes if o.cached)
    print(f"{done}/{len(result.outcomes)} cells done "
          f"({cached} cached, {result.spawned_workers} worker(s) spawned); "
          f"report written to {out}")
    return 0 if result.ok else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs import read_status, render_prometheus, render_top

    path = args.path
    if not path.endswith(".status.json"):
        path = f"{path}.status.json"
    if args.prometheus:
        print(render_prometheus(read_status(path)), end="")
        return 0
    while True:
        status = read_status(path)
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(render_top(status))
        if args.once or status.get("state") != "running":
            return 0
        time.sleep(max(0.1, args.interval))


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import read_journal, timeline_records
    from repro.trace import write_trace_events

    path = args.journal
    if not path.endswith(".ndjson"):
        path = f"{path}.journal.ndjson"
    events = read_journal(path)
    if not events:
        raise ValueError(
            f"no journal events in {path}; run the sweep with --journal "
            f"(and the same --out) first"
        )
    records, lanes = timeline_records(events)
    out = args.out or f"{path}.trace.json"
    write_trace_events(records, out)
    print(f"{len(records)} trace records across {lanes} lane(s) "
          f"written to {out}")
    return 0


def _parse_limits(raw: str) -> list[int | None]:
    """``--limits none,400,none`` → ``[None, 400, None]``."""
    limits: list[int | None] = []
    for token in raw.split(","):
        token = token.strip().lower()
        if token in ("", "none", "max", "-"):
            limits.append(None)
            continue
        try:
            limits.append(int(token))
        except ValueError:
            raise ValueError(
                f"invalid --limits entry {token!r}: must be an integer page "
                f"count or 'none'"
            ) from None
    return limits


def _cmd_colo(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.colo import render_colo, run_colo

    limits = _parse_limits(args.limits) if args.limits else None
    result = run_colo(
        n_tenants=args.tenants,
        records_per_tenant=args.records,
        ops_per_tenant=args.ops,
        policy=args.policy,
        dram_pages=args.dram_pages,
        pm_pages=args.pm_pages,
        swap_pages=args.swap_pages,
        limits=limits,
        seed=args.seed,
    )
    registry = result["registry"]
    if args.json:
        print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
        return 0
    if args.prometheus:
        sys.stdout.write(registry.to_prometheus())
        return 0
    print(render_colo(result))
    if args.vmstat:
        sys.stdout.write(registry.to_vmstat(None))
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as fh:
            json.dump(registry.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot written to {args.snapshot}")
    if args.html:
        from repro.analysis.dashboard import build_dashboard

        html = build_dashboard(
            registry.to_json(), None,
            title=f"colocation: {args.tenants} tenants on {args.policy}",
        )
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(html)
        print(f"dashboard written to {args.html}")
    return 0


def _run_with_metrics(args: argparse.Namespace):
    """Build a machine, arm metrics, drive the workload; returns both."""
    machine = Machine(_build_config(args), args.policy)
    registry = machine.enable_metrics()
    result = run_workload(_build_workload(args), machine.config, machine=machine)
    return machine, registry, result


def _cmd_stat(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import render_table

    _, registry, result = _run_with_metrics(args)
    if args.node is not None and args.node not in registry.gauge_nodes():
        raise ValueError(
            f"unknown node {args.node}; sampled nodes: "
            f"{', '.join(str(n) for n in registry.gauge_nodes())}"
        )
    if args.json:
        snapshot = registry.to_json()
        if args.node is not None:
            node_key = str(args.node)
            for section in ("gauges", "events"):
                snapshot[section] = {
                    name: {node_key: per_node[node_key]}
                    for name, per_node in snapshot[section].items()
                    if node_key in per_node
                }
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    if args.prometheus:
        sys.stdout.write(registry.to_prometheus())
        return 0
    print(result.summary())
    if args.windows:
        snapshot = registry.to_json()
        nodes = (
            [args.node] if args.node is not None
            else sorted(
                {int(n) for per in snapshot["gauges"].values() for n in per}
            )
        )
        for node_id in nodes:
            node_key = str(node_id)
            names = [
                name for name, per in snapshot["gauges"].items()
                if node_key in per
            ]
            if not names:
                continue
            windows: dict[int, dict[str, object]] = {}
            for name in names:
                for point in snapshot["gauges"][name][node_key]["windows"]:
                    row = windows.setdefault(
                        point["window"], {"start_s": point["start_s"]}
                    )
                    row[name] = point["value"]
            rows = [
                [window_id, row["start_s"]]
                + [
                    "-" if row.get(name) is None else f"{row[name]:.1f}"
                    for name in names
                ]
                for window_id, row in sorted(windows.items())
            ]
            label = "machine" if node_id == -1 else f"node {node_id}"
            print(f"\n{label}:")
            print(render_table(["window", "start_s", *names], rows))
        return 0
    sys.stdout.write(registry.to_vmstat(args.node))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.analysis.dashboard import build_dashboard

    def load_report(path: str | None, default: str):
        if path is None:
            path = default if os.path.exists(default) else None
            if path is None:
                return None
        elif not os.path.exists(path):
            raise ValueError(f"report file not found: {path}")
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    sweep = load_report(args.sweep, DEFAULT_SWEEP_REPORT)
    from repro.faults.chaos import DEFAULT_REPORT as DEFAULT_CHAOS_REPORT

    chaos = load_report(args.chaos, DEFAULT_CHAOS_REPORT)
    if args.snapshot:
        # Saved-snapshot mode: render what a prior run recorded (e.g.
        # `repro colo --snapshot`) instead of driving a workload here.
        if not os.path.exists(args.snapshot):
            raise ValueError(f"snapshot file not found: {args.snapshot}")
        with open(args.snapshot, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        title = args.title or f"saved snapshot: {args.snapshot}"
        html = build_dashboard(
            snapshot, None, sweep=sweep, chaos=chaos, title=title
        )
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(html)
        print(f"dashboard written to {args.out}")
        return 0
    _, registry, result = _run_with_metrics(args)
    title = args.title or f"{result.workload} on {result.policy}"
    html = build_dashboard(
        registry.to_json(), result, sweep=sweep, chaos=chaos, title=title
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(result.summary())
    print(f"dashboard written to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import (
        audit_machine,
        iter_events,
        render_summary,
        render_tail,
        write_ndjson,
        write_perfetto,
    )

    machine = Machine(_build_config(args), args.policy)
    tracer = machine.enable_tracing(capacity_per_node=args.capacity)
    result = run_workload(_build_workload(args), machine.config, machine=machine)
    print(result.summary())

    prefixes = (
        [p.strip() for p in args.events.split(",") if p.strip()]
        if args.events
        else None
    )
    events = list(iter_events(tracer, prefixes=prefixes))
    if args.ndjson:
        write_ndjson(events, args.ndjson)
        print(f"{len(events)} events written to {args.ndjson}")
    if args.perfetto:
        write_perfetto(events, args.perfetto)
        print(f"{len(events)} events written to {args.perfetto} (perfetto)")
    if args.tail:
        print(render_tail(events, args.tail))
    if not args.no_summary:
        print(render_summary(tracer))
    if args.audit:
        report = audit_machine(machine)
        print(report.render())
        return 0 if report.ok else 1
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "sweep-agent":
        from repro.sweep.remote import agent_main

        return agent_main(workers=args.workers)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "colo":
        return _cmd_colo(args)
    if args.command == "stat":
        return _cmd_stat(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    from repro.sweep.pool import SweepInterrupted

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except SweepInterrupted as exc:
        # First signal: the sweep already stopped dispatching, flushed
        # the manifest and tore its workers/agents down — one summary
        # line, no traceback.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        # Second signal (or an interrupt outside a sweep): force-killed.
        print("error: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed early (`repro top --once | grep -q ...`).
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the dead pipe cannot raise a second time, and exit cleanly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
        return 0
    except OutOfMemoryError as exc:
        # Message already names the failing allocation and per-node occupancy.
        print(f"error: out of memory: {exc}", file=sys.stderr)
        return 1
    except MemoryError as exc:
        print(f"error: allocation failed: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        # Operator mistakes (unknown policy, impossible sizing, bad plan)
        # get one line on stderr, not a traceback.
        detail = exc.args[0] if exc.args else str(exc)
        print(f"error: {detail}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
