"""Top-level run API: drive a workload against a machine, measure it.

``run_workload`` is what every example, test and benchmark in this repo
calls.  It returns a :class:`RunResult` holding the virtual-time
performance numbers the paper reports (throughput in operations per
virtual second, execution time) together with the full stats snapshot
(promotions, demotions, faults, tier hit ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine import Machine
from repro.sim.config import SimulationConfig
from repro.sim.vclock import NANOS_PER_SECOND
from repro.workloads.base import Workload

__all__ = ["RunResult", "run_workload", "run_numeric_stream"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``(workload, policy, config)`` simulation.

    ``operations`` is the workload's own operation count when the run is
    *operation-marked* — the stream carried an ``op_boundary`` or the
    workload declares :attr:`~repro.workloads.base.Workload.marks_op_boundaries`.
    Only unmarked streams (raw page traces) fall back to the access
    count, with ``ops_fallback`` True so throughput numbers can be told
    apart from real operation rates.  A marked phase that completes zero
    operations reports ``operations == 0`` — not a silent switch to
    accesses/s.
    """

    workload: str
    policy: str
    operations: int
    accesses: int
    elapsed_ns: int
    app_ns: int
    system_ns: int
    counters: dict[str, int] = field(default_factory=dict, repr=False)
    ops_fallback: bool = False

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns / NANOS_PER_SECOND

    @property
    def throughput_ops(self) -> float:
        """Operations per virtual second — the YCSB-style metric."""
        if self.elapsed_ns == 0:
            return 0.0
        return self.operations * NANOS_PER_SECOND / self.elapsed_ns

    @property
    def dram_access_fraction(self) -> float:
        total = self.counters.get("accesses.total", 0)
        if total == 0:
            return 0.0
        return self.counters.get("accesses.dram", 0) / total

    @property
    def promotions(self) -> int:
        return self.counters.get("migrate.promotions", 0)

    @property
    def demotions(self) -> int:
        return self.counters.get("migrate.demotions", 0)

    @property
    def migration_attempts(self) -> int:
        """Every call into the migration engine, successful or not."""
        return self.counters.get("migrate.attempts", 0)

    @property
    def migration_outcomes(self) -> dict[str, int]:
        """Per-outcome totals: moves that landed and each failure reason."""
        return {
            "moved": self.promotions
            + self.demotions
            + self.counters.get("migrate.lateral", 0),
            "copy_failed": self.counters.get("migrate.failed_copy", 0),
            "dest_full": self.counters.get("migrate.failed_dest_full", 0),
            "page_locked": self.counters.get("migrate.failed_locked", 0),
            "page_unevictable": self.counters.get("migrate.failed_unevictable", 0),
            "same_node": self.counters.get("migrate.failed_same_node", 0),
            "retries": self.counters.get("migrate.retries", 0),
            "retry_succeeded": self.counters.get("migrate.retry_succeeded", 0),
            "retries_exhausted": self.counters.get("migrate.retries_exhausted", 0),
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form; round-trips via :meth:`from_dict`.

        This is the sweep-worker wire format, so it must stay a pure
        function of the dataclass fields (no derived values, no host
        facts) for parallel runs to merge byte-identically.
        """
        return {
            "workload": self.workload,
            "policy": self.policy,
            "operations": self.operations,
            "accesses": self.accesses,
            "elapsed_ns": self.elapsed_ns,
            "app_ns": self.app_ns,
            "system_ns": self.system_ns,
            "counters": dict(sorted(self.counters.items())),
            "ops_fallback": self.ops_fallback,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            workload=data["workload"],
            policy=data["policy"],
            operations=data["operations"],
            accesses=data["accesses"],
            elapsed_ns=data["elapsed_ns"],
            app_ns=data["app_ns"],
            system_ns=data["system_ns"],
            counters=dict(data["counters"]),
            ops_fallback=data["ops_fallback"],
        )

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.workload} on {self.policy}: "
            f"{self.operations} ops in {self.elapsed_seconds:.3f}s virtual "
            f"({self.throughput_ops:,.0f} ops/s, "
            f"{100 * self.dram_access_fraction:.1f}% DRAM accesses, "
            f"{self.promotions} promotions, {self.demotions} demotions)"
        )


def run_workload(
    workload: Workload,
    config: SimulationConfig,
    policy: str = "multiclock",
    *,
    machine: Machine | None = None,
    batch: bool = True,
) -> RunResult:
    """Simulate ``workload`` on a machine running ``policy``.

    A pre-built ``machine`` may be supplied to run several workload phases
    back to back on warm state (the YCSB prescribed execution sequence);
    otherwise a fresh machine is built from ``config``.

    The access stream is driven through :meth:`Machine.touch_batch` by
    default; ``batch=False`` selects the original one-call-per-access
    loop.  The two drivers produce identical results (the perf tests
    assert it) — the per-access loop exists as the baseline the
    ``repro bench`` touch microbenchmark compares against.
    """
    if machine is None:
        machine = Machine(config, policy)
    workload.setup(machine)
    start_ns = machine.clock.now_ns
    start_app = machine.clock.app_ns
    start_system = machine.clock.system_ns
    start_counters = machine.stats.snapshot()
    # "Saw any op boundary" is tracked explicitly rather than inferred
    # from operations truthiness, and a workload may declare that it
    # marks boundaries: a marked phase that happens to complete zero
    # operations must not be mislabelled as a fallback run.
    if batch:
        accesses, operations = machine.touch_batch(workload.accesses())
        saw_op_boundary = operations > 0
    else:
        operations = 0
        accesses = 0
        saw_op_boundary = False
        for access in workload.accesses():
            machine.touch(
                access.process, access.vpage, is_write=access.is_write, lines=access.lines
            )
            accesses += 1
            if access.op_boundary:
                operations += 1
                saw_op_boundary = True
    marked = saw_op_boundary or workload.marks_op_boundaries
    end_counters = machine.stats.snapshot()
    deltas = {
        key: end_counters.get(key, 0) - start_counters.get(key, 0)
        for key in end_counters
    }
    return RunResult(
        workload=workload.name,
        policy=machine.policy.name,
        operations=operations if marked else accesses,
        accesses=accesses,
        elapsed_ns=machine.clock.now_ns - start_ns,
        app_ns=machine.clock.app_ns - start_app,
        system_ns=machine.clock.system_ns - start_system,
        counters=deltas,
        ops_fallback=not marked,
    )


def run_numeric_stream(
    workload: Workload,
    config: SimulationConfig,
    stream: list,
    policy: str = "multiclock",
    *,
    machine: Machine | None = None,
) -> RunResult:
    """Replay a pre-generated numeric access stream for ``workload``.

    ``stream`` is a materialised list of ``(vpages, writes)`` batches —
    the output of a synthetic workload's ``numeric_batches()`` — shared
    read-only across many cells by the sweep pool so the (comparatively
    expensive) stream construction happens once per grid instead of once
    per cell.  ``workload`` still provides ``setup`` (process and region
    creation against the fresh machine), its name, and the per-access
    ``lines`` width; the result is bit-identical to
    ``run_workload(workload, config, policy)`` because ``accesses()`` is
    by definition the emission of exactly these batches.

    A pre-built ``machine`` may be supplied (mirroring
    :func:`run_workload`) so callers can arm tracing or metrics before
    the stream runs.
    """
    if machine is None:
        machine = Machine(config, policy)
    workload.setup(machine)
    process = workload.process  # type: ignore[attr-defined]
    start_ns = machine.clock.now_ns
    start_app = machine.clock.app_ns
    start_system = machine.clock.system_ns
    start_counters = machine.stats.snapshot()
    accesses, operations = machine.touch_batch_array(
        process, stream, lines=workload.lines  # type: ignore[attr-defined]
    )
    marked = operations > 0 or workload.marks_op_boundaries
    end_counters = machine.stats.snapshot()
    deltas = {
        key: end_counters.get(key, 0) - start_counters.get(key, 0)
        for key in end_counters
    }
    return RunResult(
        workload=workload.name,
        policy=machine.policy.name,
        operations=operations if marked else accesses,
        accesses=accesses,
        elapsed_ns=machine.clock.now_ns - start_ns,
        app_ns=machine.clock.app_ns - start_app,
        system_ns=machine.clock.system_ns - start_system,
        counters=deltas,
        ops_fallback=not marked,
    )
