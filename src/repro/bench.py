"""Host-wall-clock microbenchmarks for the hot paths — ``repro bench``.

Everything else in this repo measures *virtual* time; this module is the
one place that measures *host* time, because its job is to keep the
simulator itself fast enough to run the paper's full workloads.  Three
benchmarks, written to ``BENCH_perf.json``:

* ``touch`` — the per-access :meth:`~repro.machine.Machine.touch` loop
  versus :meth:`~repro.machine.Machine.touch_batch` (object stream) and
  :meth:`~repro.machine.Machine.touch_batch_array` (numeric arrays, the
  sweep pool's replay path) on the same fixed-seed Zipf stream, under
  the ``static`` policy so no daemon work dilutes the pure access path.
  Reports ops/sec for all three drivers (``batched_ops_per_sec`` is the
  array driver), the speedup, and an ``identical`` flag asserting the
  runs ended with bit-identical counters and virtual clocks.
* ``kpromoted`` — scan throughput of the MULTI-CLOCK promotion daemon,
  in pages scanned per host second.
* ``ycsb_a`` — end-to-end host wall time of a YCSB Load + Workload A
  sequence under ``multiclock``, the closest thing to "how long does a
  paper experiment take".
* ``trace`` — the tracepoint layer's cost: the same ``multiclock`` run
  with tracing off versus armed.  Reports both throughputs, the
  overhead ratio, and an ``identical`` flag asserting the traced run's
  counters and virtual clocks match the untraced run bit for bit (the
  "tracepoints compile to nops" property, measured).
* ``sweep`` — the sweep orchestrator: a declarative policy grid run as
  a naive sequential per-cell loop versus the persistent worker pool
  (shared workload streams, array replay), then re-run against the warm
  result cache.  Reports all three wall times (``sequential_s``,
  ``parallel_s``, ``cached_rerun_seconds``), the speedup, the host's
  CPU count, ``cached_rerun_workers`` (must be 0 — a fully cached
  re-run spawns no children), and an ``identical`` flag asserting both
  pool runs' merged payloads equal the sequential results exactly.
* ``metrics`` — the metrics registry's cost: the same ``multiclock``
  run with metrics off versus armed.  Reports both throughputs, the
  overhead ratio, and an ``identical`` flag asserting the armed run's
  counters and virtual clocks match the metrics-off run bit for bit
  (the cost-free sampler / guarded-sites nop property, measured).
* ``deactivate`` — the columnar ``deactivate_excess_active`` fast path
  versus the page-at-a-time reference loop on identical list states.
  Reports pages/sec for both, the speedup, and an ``identical`` flag
  asserting both arms made the same scan decisions page for page.
* ``journal`` — the control-plane span journal's cost: the same local
  pool sweep with the journal off versus armed.  Reports both wall
  times, the overhead ratio, the journal's event count, and an
  ``identical`` flag asserting the armed run's merged payloads equal
  the journal-off run's exactly (observability must never change
  results — the same property the byte-identical report pins).

Each benchmark takes a best-of-``repeats`` timing to shrug off host
scheduling noise.  ``--smoke`` shrinks the workloads to CI size.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import time
from typing import Any, Iterator

from repro.machine import Machine
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

__all__ = [
    "bench_touch",
    "bench_kpromoted",
    "bench_deactivate",
    "bench_ycsb_a",
    "bench_trace",
    "bench_sweep",
    "bench_remote",
    "bench_journal",
    "bench_metrics",
    "run_suite",
    "write_results",
]

DEFAULT_OUT = "BENCH_perf.json"


def _config(seed: int = 42) -> SimulationConfig:
    return SimulationConfig(dram_pages=(1024,), pm_pages=(8192,), seed=seed)


@contextlib.contextmanager
def _gc_paused() -> Iterator[None]:
    """Collector off during timed sections, so its pauses don't land in
    one driver's window and not the other's."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _machine_state(machine: Machine) -> tuple[dict[str, int], int, int, int]:
    clock = machine.clock
    return machine.stats.snapshot(), clock.now_ns, clock.app_ns, clock.system_ns


def bench_touch(
    ops: int = 200_000, *, pages: int = 4000, repeats: int = 3, seed: int = 42
) -> dict[str, Any]:
    """Per-access loop vs the two batched drivers on one access stream.

    Three arms over the same fixed-seed Zipf stream: the per-access
    :meth:`~repro.machine.Machine.touch` loop, the object-stream
    :meth:`~repro.machine.Machine.touch_batch`, and the numeric array
    driver :meth:`~repro.machine.Machine.touch_batch_array` (the sweep
    pool's replay path, and the headline ``batched_ops_per_sec``).

    Each arm drives the stream through a fresh machine twice with its
    own driver: the first pass populates the pages (a cold-fault storm
    whose cost is the slow fault path, not the access path) and the
    second, timed pass measures the steady-state throughput the paper's
    long workloads actually see — the same warm-up discipline
    ``bench_kpromoted`` uses.  The array arm's cold first pass is also
    timed and reported as ``cold_batched_ops_per_sec``.  ``identical``
    asserts all three arms ended both passes with bit-identical counters
    and virtual clocks.
    """

    def materialize() -> tuple[Machine, ZipfWorkload]:
        workload = ZipfWorkload(pages, ops, seed=seed, write_ratio=0.2)
        machine = Machine(_config(seed), "static")
        workload.setup(machine)
        return machine, workload

    # The numeric stream is machine-independent: build it once and share
    # it across repeats, exactly as the sweep pool does.
    batches = list(ZipfWorkload(pages, ops, seed=seed, write_ratio=0.2).numeric_batches())

    # Timing runs: fresh machine per repeat so every repeat warms up the
    # same way and the drivers all see the same starting point.  The
    # baseline loop body mirrors run_workload(batch=False) — the
    # original per-access driver — exactly, down to the operation count.
    per_access_best = float("inf")
    for _ in range(max(1, repeats)):
        machine, workload = materialize()
        stream = list(workload.accesses())
        for access in stream:  # warm pass: fault every page in
            machine.touch(
                access.process, access.vpage, is_write=access.is_write, lines=access.lines
            )
        with _gc_paused():
            start = time.perf_counter()
            operations = 0
            for access in stream:
                machine.touch(
                    access.process, access.vpage, is_write=access.is_write, lines=access.lines
                )
                if access.op_boundary:
                    operations += 1
            per_access_best = min(per_access_best, time.perf_counter() - start)
    per_state = _machine_state(machine)

    object_best = float("inf")
    for _ in range(max(1, repeats)):
        machine, workload = materialize()
        stream = list(workload.accesses())
        machine.touch_batch(stream)  # warm pass
        with _gc_paused():
            start = time.perf_counter()
            machine.touch_batch(stream)
            object_best = min(object_best, time.perf_counter() - start)
    object_state = _machine_state(machine)

    array_best = cold_best = float("inf")
    for _ in range(max(1, repeats)):
        machine, workload = materialize()
        with _gc_paused():
            start = time.perf_counter()
            machine.touch_batch_array(workload.process, batches, lines=workload.lines)
            cold_best = min(cold_best, time.perf_counter() - start)
            start = time.perf_counter()
            machine.touch_batch_array(workload.process, batches, lines=workload.lines)
            array_best = min(array_best, time.perf_counter() - start)
    array_state = _machine_state(machine)

    per_ops = ops / per_access_best
    object_ops = ops / object_best
    array_ops = ops / array_best
    return {
        "ops": ops,
        "pages": pages,
        "repeats": repeats,
        "per_access_ops_per_sec": round(per_ops),
        "object_batched_ops_per_sec": round(object_ops),
        "cold_batched_ops_per_sec": round(ops / cold_best),
        "batched_ops_per_sec": round(array_ops),
        "speedup": round(array_ops / per_ops, 2),
        "identical": per_state == object_state == array_state,
    }


def bench_kpromoted(
    *, pages: int = 4000, warm_ops: int = 50_000, runs: int = 200, seed: int = 42
) -> dict[str, Any]:
    """Pages scanned per host second by the kpromoted daemon."""
    workload = ZipfWorkload(pages, warm_ops, seed=seed, write_ratio=0.2)
    machine = Machine(_config(seed), "multiclock")
    workload.setup(machine)
    machine.touch_batch(workload.accesses())  # warm the lists
    daemons = machine.system.policy._kpromoted  # type: ignore[attr-defined]
    scanned = machine.stats.counter("kpromoted.pages_scanned")
    before = scanned.n
    start = time.perf_counter()
    for _ in range(runs):
        for daemon in daemons:
            daemon.run(machine.clock.now_ns)
    elapsed = time.perf_counter() - start
    pages_scanned = scanned.n - before
    return {
        "runs": runs,
        "pages_scanned": pages_scanned,
        "pages_per_sec": round(pages_scanned / elapsed) if elapsed > 0 else 0,
        "wall_seconds": round(elapsed, 4),
    }


def bench_deactivate(
    *, pages: int = 4000, warm_ops: int = 50_000, rounds: int = 40,
    budget: int = 2048, seed: int = 42,
) -> dict[str, Any]:
    """Columnar vs page-at-a-time ``deactivate_excess_active`` force scans.

    Both arms drive the same rounds over identically warmed machines:
    each round re-arms a deterministic slice of accessed bits (so the
    scan keeps seeing the full four-way state mix instead of draining
    the lists once and idling) and force-scans every active list.  The
    vector arm goes through the public entry point, whose guard picks
    the pagestore fast path; the scalar arm calls the reference loop
    directly.  ``identical`` asserts both machines ended with the same
    list membership, order and flag words — the vectorization must only
    ever buy time, never change a scan decision.
    """
    from repro.mm import vmscan
    from repro.mm.lruvec import ListKind

    def build() -> Machine:
        workload = ZipfWorkload(pages, warm_ops, seed=seed, write_ratio=0.2)
        machine = Machine(_config(seed), "autonuma")
        workload.setup(machine)
        machine.touch_batch(workload.accesses())  # warm the lists
        return machine

    def drive(machine: Machine, scalar: bool) -> tuple[int, float]:
        store = machine.system.pagestore
        scanned = 0
        elapsed = 0.0
        with _gc_paused():
            for round_no in range(rounds):
                # Refill (untimed): put every inactive page back on its
                # active list so each round scans full lists instead of
                # draining them once and idling, then re-arm a
                # deterministic, phase-shifted third of the accessed
                # bits so the scan keeps seeing the full state mix.
                for node in machine.system.nodes.values():
                    for is_anon in (True, False):
                        inactive = node.lruvec.list_for(ListKind.INACTIVE, is_anon)
                        for page in inactive.iter_from_tail():
                            vmscan._activate(node, page)
                store.pte_accessed[round_no % 3 :: 3] = True
                start = time.perf_counter()
                for node in machine.system.nodes.values():
                    for is_anon in (True, False):
                        if scalar:
                            result = vmscan.ScanResult()
                            vmscan._deactivate_scalar(
                                machine.system, node,
                                node.lruvec.list_for(ListKind.ACTIVE, is_anon),
                                is_anon, budget, None, None, True, None, result,
                            )
                        else:
                            result = vmscan.deactivate_excess_active(
                                machine.system, node, is_anon, budget, force=True
                            )
                        scanned += result.scanned
                elapsed += time.perf_counter() - start
        return scanned, elapsed

    def digest(machine: Machine) -> list:
        store = machine.system.pagestore
        out = []
        for node in machine.system.nodes.values():
            for kind in (ListKind.ACTIVE, ListKind.INACTIVE):
                for is_anon in (True, False):
                    lst = node.lruvec.list_for(kind, is_anon)
                    cursor, order = lst._tail, []
                    while cursor >= 0:
                        order.append(int(cursor))
                        cursor = int(store.lru_prev[cursor])
                    out.append((node.node_id, kind.name, is_anon, order,
                                [int(store.flags[p]) for p in order]))
        return out

    vec_machine = build()
    vec_scanned, vec_s = drive(vec_machine, scalar=False)
    scalar_machine = build()
    scalar_scanned, scalar_s = drive(scalar_machine, scalar=True)

    vec_rate = vec_scanned / vec_s if vec_s > 0 else 0.0
    scalar_rate = scalar_scanned / scalar_s if scalar_s > 0 else 0.0
    return {
        "rounds": rounds,
        "budget": budget,
        "pages_scanned": vec_scanned,
        "scalar_pages_per_sec": round(scalar_rate),
        "vector_pages_per_sec": round(vec_rate),
        "speedup": round(vec_rate / scalar_rate, 2) if scalar_rate else 0.0,
        "identical": (
            vec_scanned == scalar_scanned
            and digest(vec_machine) == digest(scalar_machine)
        ),
    }


def bench_ycsb_a(
    *, n_records: int = 10_000, ops: int = 50_000, seed: int = 42
) -> dict[str, Any]:
    """Host wall time of a YCSB Load + Workload A run under multiclock."""
    from repro.run import run_workload
    from repro.workloads.ycsb import YCSBSession

    session = YCSBSession(n_records, seed=seed)
    footprint = session.footprint_pages()
    config = SimulationConfig(
        dram_pages=(max(256, footprint // 3),),
        pm_pages=(footprint * 2,),
        daemons=DaemonConfig(),
        seed=seed,
    )
    machine = Machine(config, "multiclock")
    start = time.perf_counter()
    run_workload(session.load_phase(), config, machine=machine)
    result = run_workload(session.phase("A", ops), config, machine=machine)
    elapsed = time.perf_counter() - start
    return {
        "n_records": n_records,
        "ops": ops,
        "wall_seconds": round(elapsed, 3),
        "accesses": result.accesses,
        "accesses_per_wall_sec": round(result.accesses / elapsed) if elapsed > 0 else 0,
        "virtual_throughput_ops": round(result.throughput_ops),
        "dram_access_fraction": round(result.dram_access_fraction, 4),
    }


def bench_trace(
    ops: int = 100_000, *, pages: int = 4000, repeats: int = 3, seed: int = 42
) -> dict[str, Any]:
    """Tracing off vs armed on an identical multiclock run.

    ``multiclock`` (not ``static``) so daemons, migrations, and LRU
    movement actually fire tracepoints — an access-only run would
    measure almost nothing.
    """

    def run_once(traced: bool) -> tuple[Machine, float, int]:
        workload = ZipfWorkload(pages, ops, seed=seed, write_ratio=0.2)
        machine = Machine(_config(seed), "multiclock")
        if traced:
            machine.enable_tracing()
        workload.setup(machine)
        stream = list(workload.accesses())
        with _gc_paused():
            start = time.perf_counter()
            machine.touch_batch(stream)
            elapsed = time.perf_counter() - start
        emitted = machine.system.trace.events_emitted if traced else 0
        return machine, elapsed, emitted

    off_best = on_best = float("inf")
    for _ in range(max(1, repeats)):
        machine, elapsed, _ = run_once(traced=False)
        off_best = min(off_best, elapsed)
    off_state = _machine_state(machine)
    for _ in range(max(1, repeats)):
        machine, elapsed, emitted = run_once(traced=True)
        on_best = min(on_best, elapsed)
    on_state = _machine_state(machine)

    off_ops = ops / off_best
    on_ops = ops / on_best
    return {
        "ops": ops,
        "pages": pages,
        "repeats": repeats,
        "off_ops_per_sec": round(off_ops),
        "on_ops_per_sec": round(on_ops),
        "overhead": round(off_ops / on_ops, 3),
        "events_emitted": emitted,
        "identical": off_state == on_state,
    }


def bench_metrics(
    ops: int = 100_000, *, pages: int = 4000, repeats: int = 3, seed: int = 42
) -> dict[str, Any]:
    """Metrics off vs armed on an identical multiclock run.

    The armed run carries the ``vmstat_sampler`` daemon, gauge series,
    and the six hot-path histograms; ``identical`` asserts none of that
    moved a counter or the virtual clocks (the metrics-off/metrics-on
    bit-identity the instrumentation guards promise).
    """

    def run_once(armed: bool) -> tuple[Machine, float, Any]:
        workload = ZipfWorkload(pages, ops, seed=seed, write_ratio=0.2)
        machine = Machine(_config(seed), "multiclock")
        # Dense sampling (1ms virtual) so short benchmark runs still
        # exercise the cost-free sampler daemon inside the identity check.
        registry = (
            machine.enable_metrics(sample_interval_s=0.001) if armed else None
        )
        workload.setup(machine)
        stream = list(workload.accesses())
        with _gc_paused():
            start = time.perf_counter()
            machine.touch_batch(stream)
            elapsed = time.perf_counter() - start
        return machine, elapsed, registry

    off_best = on_best = float("inf")
    for _ in range(max(1, repeats)):
        machine, elapsed, _ = run_once(armed=False)
        off_best = min(off_best, elapsed)
    off_state = _machine_state(machine)
    for _ in range(max(1, repeats)):
        machine, elapsed, registry = run_once(armed=True)
        on_best = min(on_best, elapsed)
    on_state = _machine_state(machine)

    off_ops = ops / off_best
    on_ops = ops / on_best
    return {
        "ops": ops,
        "pages": pages,
        "repeats": repeats,
        "off_ops_per_sec": round(off_ops),
        "on_ops_per_sec": round(on_ops),
        "overhead": round(off_ops / on_ops, 3),
        "samples": registry.samples,
        "observations": sum(h.count for h in registry.histograms.values()),
        "identical": off_state == on_state,
    }


def bench_sweep(
    *,
    pages: int = 2000,
    ops: int = 40_000,
    policies: tuple[str, ...] = ("static", "multiclock", "nimble", "autotiering-cpm"),
    workers: int = 2,
    seed: int = 42,
    repeats: int = 2,
) -> dict[str, Any]:
    """Sequential per-cell execution vs the persistent worker pool, plus
    a warm-cache re-run.

    The sequential arm is the naive grid loop: each cell builds its own
    workload and drives the per-access object stream, exactly what a
    plain ``for cell in grid`` runner costs.  The pool arm runs the same
    declarative cells cold (empty result cache) through
    :func:`~repro.sweep.pool.run_sweep`: persistent workers, one shared
    numeric stream per distinct workload, array-replay per cell.
    ``identical`` asserts the pool's merged payloads equal the
    sequential results field for field — sharing construction must
    change wall time, never results.  The third timing,
    ``cached_rerun_seconds``, re-runs the identical spec against the
    now-populated cache: every cell is a fingerprint hit, no worker is
    spawned (``cached_rerun_workers`` must stay 0), so it measures the
    fixed cost of an incremental re-sweep.
    """
    import shutil
    import tempfile

    from repro.run import run_workload
    from repro.sweep import SweepCell, SweepSpec, run_sweep
    from repro.sweep.runners import _STREAM_CACHE, build_config, build_workload

    workload_spec = {
        "kind": "zipf", "pages": pages, "ops": ops,
        "seed": seed, "write_ratio": 0.2,
    }
    config_spec = {"dram_pages": 1024, "pm_pages": 8192, "seed": seed}
    spec = SweepSpec(
        name="bench-sweep",
        cells=tuple(
            SweepCell(
                id=policy,
                runner="run-workload",
                params={
                    "policy": policy,
                    "workload": workload_spec,
                    "config": config_spec,
                },
            )
            for policy in policies
        ),
    )

    # Best-of-repeats on both arms, like every other benchmark here: the
    # fork in the pool arm is sensitive to host scheduling noise, and a
    # gc pass before each timing keeps collector pauses (and fork cost
    # proportional to garbage) out of the comparison.
    sequential_s = float("inf")
    for _ in range(max(1, repeats)):
        gc.collect()
        with _gc_paused():
            start = time.perf_counter()
            sequential = {
                policy: run_workload(
                    build_workload(workload_spec),
                    build_config(config_spec),
                    policy=policy,
                ).to_dict()
                for policy in policies
            }
            sequential_s = min(sequential_s, time.perf_counter() - start)

    parallel_s = float("inf")
    cache_dir = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        for _ in range(max(1, repeats)):
            # Every cold repeat pays for stream construction and starts
            # from an empty cache.
            _STREAM_CACHE.clear()
            shutil.rmtree(cache_dir, ignore_errors=True)
            gc.collect()
            with _gc_paused():
                start = time.perf_counter()
                cold = run_sweep(spec, workers=workers, cache_dir=cache_dir)
                parallel_s = min(parallel_s, time.perf_counter() - start)

        start = time.perf_counter()
        warm = run_sweep(spec, workers=workers, cache_dir=cache_dir)
        cached_rerun_s = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = (
        cold.ok
        and warm.ok
        and cold.payloads() == sequential
        and warm.payloads() == sequential
    )
    return {
        "cells": len(policies),
        "ops_per_cell": ops,
        "workers": workers,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(sequential_s / parallel_s, 2) if parallel_s > 0 else 0.0,
        "cached_rerun_seconds": round(cached_rerun_s, 4),
        "cached_rerun_workers": warm.spawned_workers,
        "identical": identical,
    }


def bench_remote(
    *,
    pages: int = 800,
    ops: int = 8_000,
    policies: tuple[str, ...] = ("static", "multiclock"),
    workers: int = 2,
    seed: int = 42,
) -> dict[str, Any]:
    """Local pool vs one loopback host agent over the wire protocol.

    Both arms run the same declarative grid with the same worker count;
    the remote arm adds agent startup, JSON envelopes, leases and
    heartbeats on top.  ``overhead_s`` is that fixed protocol tax —
    what shipping a cell to another machine costs before the network is
    even involved.  ``identical`` pins the determinism gate: the wire
    must never change results.
    """
    from repro.sweep import SweepCell, SweepSpec, run_remote_sweep, run_sweep

    spec = SweepSpec(
        name="bench-remote",
        cells=tuple(
            SweepCell(
                id=policy,
                runner="run-workload",
                params={
                    "policy": policy,
                    "workload": {
                        "kind": "zipf", "pages": pages, "ops": ops,
                        "seed": seed, "write_ratio": 0.2,
                    },
                    "config": {"dram_pages": 1024, "pm_pages": 8192,
                               "seed": seed},
                },
            )
            for policy in policies
        ),
    )

    gc.collect()
    with _gc_paused():
        start = time.perf_counter()
        local = run_sweep(spec, workers=workers)
        local_s = time.perf_counter() - start

    gc.collect()
    with _gc_paused():
        start = time.perf_counter()
        remote = run_remote_sweep(spec, f"loopback:{workers}")
        remote_s = time.perf_counter() - start

    return {
        "cells": len(policies),
        "ops_per_cell": ops,
        "workers": workers,
        "local_pool_s": round(local_s, 3),
        "loopback_host_s": round(remote_s, 3),
        "overhead_s": round(remote_s - local_s, 3),
        "identical": local.ok and remote.ok
        and remote.payloads() == local.payloads(),
    }


def bench_journal(
    *,
    pages: int = 800,
    ops: int = 8_000,
    policies: tuple[str, ...] = ("static", "multiclock"),
    workers: int = 2,
    seed: int = 42,
) -> dict[str, Any]:
    """The same local-pool sweep with the span journal off vs armed.

    The journal writes one flushed NDJSON line per control-plane event —
    a per-*cell* cost, so its overhead must stay invisible next to the
    cells themselves.  ``identical`` pins the contract that buys the
    byte-identical journal-off report: arming observability never
    changes what the sweep computes.
    """
    import tempfile

    from repro.obs import Journal, SweepObserver, read_journal
    from repro.sweep import SweepCell, SweepSpec, run_sweep

    spec = SweepSpec(
        name="bench-journal",
        cells=tuple(
            SweepCell(
                id=policy,
                runner="run-workload",
                params={
                    "policy": policy,
                    "workload": {
                        "kind": "zipf", "pages": pages, "ops": ops,
                        "seed": seed, "write_ratio": 0.2,
                    },
                    "config": {"dram_pages": 1024, "pm_pages": 8192,
                               "seed": seed},
                },
            )
            for policy in policies
        ),
    )

    gc.collect()
    with _gc_paused():
        start = time.perf_counter()
        off = run_sweep(spec, workers=workers)
        off_s = time.perf_counter() - start

    with tempfile.NamedTemporaryFile(suffix=".ndjson", delete=False) as tmp:
        journal_path = tmp.name
    try:
        obs = SweepObserver(journal=Journal(journal_path))
        gc.collect()
        with _gc_paused():
            start = time.perf_counter()
            armed = run_sweep(spec, workers=workers, obs=obs)
            armed_s = time.perf_counter() - start
        obs.close("done")
        events = len(read_journal(journal_path))
    finally:
        os.unlink(journal_path)

    return {
        "cells": len(policies),
        "ops_per_cell": ops,
        "workers": workers,
        "off_s": round(off_s, 3),
        "armed_s": round(armed_s, 3),
        "overhead": round(armed_s / off_s, 3) if off_s > 0 else 0.0,
        "journal_events": events,
        "identical": off.ok and armed.ok
        and armed.payloads() == off.payloads(),
    }


def run_suite(*, smoke: bool = False, repeats: int = 3) -> dict[str, Any]:
    """Run all benchmarks; smoke mode uses CI-sized workloads."""
    if smoke:
        touch = bench_touch(60_000, pages=2000, repeats=max(1, min(repeats, 2)))
        kpromoted = bench_kpromoted(pages=1000, warm_ops=10_000, runs=30)
        ycsb = bench_ycsb_a(n_records=2_000, ops=5_000)
        trace = bench_trace(30_000, pages=2000, repeats=max(1, min(repeats, 2)))
        # All four default policies, and cells big enough (~70ms each)
        # that the pool's fork-and-pipe overhead stops being the same
        # order as the cells themselves: at ops=8_000 the comparison on
        # a busy single-core host was a coin flip (0.94x-1.45x measured
        # over repeated runs); at this sizing it holds 1.3x+.
        sweep = bench_sweep(pages=1500, ops=20_000)
        remote = bench_remote(pages=400, ops=4_000)
        journal = bench_journal(pages=400, ops=4_000)
        metrics = bench_metrics(30_000, pages=2000, repeats=max(1, min(repeats, 2)))
        deactivate = bench_deactivate(pages=1000, warm_ops=10_000, rounds=10)
    else:
        touch = bench_touch(repeats=repeats)
        kpromoted = bench_kpromoted()
        ycsb = bench_ycsb_a()
        trace = bench_trace(repeats=repeats)
        sweep = bench_sweep()
        remote = bench_remote()
        journal = bench_journal()
        metrics = bench_metrics(repeats=repeats)
        deactivate = bench_deactivate()
    return {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "touch": touch,
        "kpromoted": kpromoted,
        "ycsb_a": ycsb,
        "trace": trace,
        "sweep": sweep,
        "remote": remote,
        "journal": journal,
        "metrics": metrics,
        "deactivate": deactivate,
    }


def write_results(results: dict[str, Any], path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")


def render(results: dict[str, Any]) -> str:
    """Human-readable summary of one suite run."""
    touch = results["touch"]
    kpromoted = results["kpromoted"]
    ycsb = results["ycsb_a"]
    lines = [
        f"touch      per-access {touch['per_access_ops_per_sec']:>10,} ops/s"
        f"  object {touch['object_batched_ops_per_sec']:>10,} ops/s"
        f"  array {touch['batched_ops_per_sec']:>10,} ops/s"
        f"  speedup {touch['speedup']:.2f}x"
        f"  identical={touch['identical']}",
        f"kpromoted  {kpromoted['pages_per_sec']:>10,} pages/s"
        f"  ({kpromoted['pages_scanned']:,} pages in {kpromoted['wall_seconds']}s)",
        f"ycsb-a     {ycsb['wall_seconds']}s wall for load+{ycsb['ops']:,} ops"
        f"  ({ycsb['accesses_per_wall_sec']:,} accesses/s host,"
        f" {ycsb['virtual_throughput_ops']:,} ops/s virtual)",
    ]
    trace = results.get("trace")
    if trace is not None:
        lines.append(
            f"trace      off {trace['off_ops_per_sec']:>10,} ops/s"
            f"  armed {trace['on_ops_per_sec']:>10,} ops/s"
            f"  overhead {trace['overhead']:.3f}x"
            f"  ({trace['events_emitted']:,} events)"
            f"  identical={trace['identical']}"
        )
    sweep = results.get("sweep")
    if sweep is not None:
        lines.append(
            f"sweep      {sweep['cells']} cells sequential {sweep['sequential_s']}s"
            f"  {sweep['workers']} workers {sweep['parallel_s']}s"
            f"  speedup {sweep['speedup']:.2f}x"
            f"  cached rerun {sweep['cached_rerun_seconds']}s"
            f" ({sweep['cached_rerun_workers']} spawned)"
            f"  ({sweep['cpu_count']} core(s))"
            f"  identical={sweep['identical']}"
        )
    remote = results.get("remote")
    if remote is not None:
        lines.append(
            f"remote     {remote['cells']} cells local pool"
            f" {remote['local_pool_s']}s"
            f"  loopback host {remote['loopback_host_s']}s"
            f"  protocol tax {remote['overhead_s']}s"
            f"  identical={remote['identical']}"
        )
    journal = results.get("journal")
    if journal is not None:
        lines.append(
            f"journal    {journal['cells']} cells off {journal['off_s']}s"
            f"  armed {journal['armed_s']}s"
            f"  overhead {journal['overhead']:.3f}x"
            f"  ({journal['journal_events']:,} events)"
            f"  identical={journal['identical']}"
        )
    deactivate = results.get("deactivate")
    if deactivate is not None:
        lines.append(
            f"deactivate scalar {deactivate['scalar_pages_per_sec']:>10,} pages/s"
            f"  vector {deactivate['vector_pages_per_sec']:>10,} pages/s"
            f"  speedup {deactivate['speedup']:.2f}x"
            f"  identical={deactivate['identical']}"
        )
    metrics = results.get("metrics")
    if metrics is not None:
        lines.append(
            f"metrics    off {metrics['off_ops_per_sec']:>10,} ops/s"
            f"  armed {metrics['on_ops_per_sec']:>10,} ops/s"
            f"  overhead {metrics['overhead']:.3f}x"
            f"  ({metrics['samples']:,} samples,"
            f" {metrics['observations']:,} observations)"
            f"  identical={metrics['identical']}"
        )
    return "\n".join(lines)
