"""Counters and windowed time series.

The paper's per-window figures (Fig. 8: pages promoted per 20-second
window; Fig. 9: re-access percentage of recently promoted pages per
window) need event streams bucketed by virtual time.  :class:`StatsBook`
is the single sink the simulator writes into: plain monotonic counters
for totals plus :class:`WindowedSeries` for anything reported over time.

Counters are *interned*: :meth:`StatsBook.counter` hands out a
:class:`Counter` handle whose ``.n`` slot hot paths bump directly,
so a per-access statistics update is one attribute increment instead of
a string hash into a dict.  ``inc``/``get``/``snapshot`` keep the
original string-keyed interface on top of the handles.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.sim.vclock import NANOS_PER_SECOND

__all__ = ["Counter", "StatsBook", "WindowedSeries", "WindowPoint"]


class Counter:
    """One interned counter: hot paths increment ``.n`` directly."""

    __slots__ = ("name", "n")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, n={self.n})"


@dataclass(frozen=True)
class WindowPoint:
    """One bucket of a windowed series.

    ``width_seconds`` is the window width of the series the point came
    from; it defaults to 1 so hand-built points keep the historical
    ``start_seconds == window_id`` behaviour.  ``samples`` is how many
    events landed in the window (``None`` for hand-built points that
    never knew): a window with ``samples == 0`` held *no data*, which for
    a mean is not the same thing as averaging to zero — Fig. 9 must
    distinguish "no promoted pages to re-access" from "0% re-accessed".
    """

    window_id: int
    value: float
    width_seconds: float = 1.0
    samples: int | None = None

    @property
    def start_seconds(self) -> float:
        """Virtual-time start of this window in seconds."""
        return self.window_id * self.width_seconds

    @property
    def is_empty(self) -> bool:
        """True when the window is known to have received no events."""
        return self.samples == 0


class WindowedSeries:
    """Accumulates ``(time, value)`` events into fixed-width windows.

    Windows are indexed by ``time_ns // window_ns``; empty windows between
    observed ones are materialised as zero so plots have a continuous axis.
    """

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window width must be positive, got {window_seconds}")
        self.window_seconds = float(window_seconds)
        self.window_ns = int(window_seconds * NANOS_PER_SECOND)
        self._sums: dict[int, float] = defaultdict(float)
        self._counts: dict[int, int] = defaultdict(int)

    def record(self, time_ns: int, value: float = 1.0) -> None:
        """Add ``value`` to the window containing ``time_ns``.

        Negative timestamps are rejected: the virtual clock starts at
        zero, and a negative ``time_ns`` would floor-divide to a negative
        window id that ``_dense``'s ``range(last + 1)`` silently drops
        from :meth:`totals`/:meth:`means` — the event would be recorded
        but never reported.
        """
        if time_ns < 0:
            raise ValueError(
                f"cannot record at negative virtual time {time_ns}ns; "
                "windowed series start at t=0"
            )
        window_id = time_ns // self.window_ns
        self._sums[window_id] += value
        self._counts[window_id] += 1

    def totals(self) -> list[WindowPoint]:
        """Sum of values per window, dense from window 0 to the last.

        An empty window genuinely sums to zero, so its value stays 0.0 —
        but its ``samples`` count is 0, letting consumers that care tell
        the difference.
        """
        return self._dense(self._sums, empty_value=0.0)

    def means(self) -> list[WindowPoint]:
        """Mean value per window; empty windows carry NaN, not zero.

        A mean over nothing is undefined: densifying empty windows to 0.0
        (the old behaviour) made a window with no promoted pages read as
        "0% re-accessed" in the Fig. 9 series.  Empty windows now come
        back with ``value=nan`` and ``samples=0`` so renderers and CSV
        export show them as gaps.
        """
        means = {
            wid: self._sums[wid] / self._counts[wid]
            for wid in self._sums
            if self._counts[wid]
        }
        return self._dense(means, empty_value=float("nan"))

    def _dense(
        self, sparse: dict[int, float], *, empty_value: float
    ) -> list[WindowPoint]:
        if not sparse:
            return []
        last = max(sparse)
        width = self.window_seconds
        counts = self._counts
        return [
            WindowPoint(wid, sparse.get(wid, empty_value), width, counts.get(wid, 0))
            for wid in range(last + 1)
        ]

    def __len__(self) -> int:
        return len(self._sums)


class StatsBook:
    """Central statistics sink for a simulation run.

    Counters are created lazily on first increment or interning, so
    callers never need to pre-register names.  Windowed series must be
    created explicitly because they need a window width.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self.series: dict[str, WindowedSeries] = {}

    def counter(self, name: str) -> Counter:
        """Intern ``name`` and return its handle for direct ``.n`` bumps."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).n += amount

    def get(self, name: str) -> int:
        """Read counter ``name`` (zero if never incremented)."""
        handle = self._counters.get(name)
        return handle.n if handle is not None else 0

    @property
    def counters(self) -> dict[str, int]:
        """Plain-dict view of all counters (compatibility accessor)."""
        return self.snapshot()

    def make_series(self, name: str, window_seconds: float) -> WindowedSeries:
        """Create (or return the existing) windowed series called ``name``.

        Asking for an existing name with a *different* window width is an
        error: silently returning the old series would bucket the
        caller's events on a width it never asked for.
        """
        existing = self.series.get(name)
        if existing is None:
            existing = self.series[name] = WindowedSeries(window_seconds)
        elif existing.window_seconds != float(window_seconds):
            raise ValueError(
                f"series {name!r} already exists with window "
                f"{existing.window_seconds}s, cannot remake it with "
                f"{window_seconds}s"
            )
        return existing

    def record(self, name: str, time_ns: int, value: float = 1.0) -> None:
        """Record into an existing series; raises KeyError if absent."""
        self.series[name].record(time_ns, value)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters."""
        return {name: handle.n for name, handle in self._counters.items()}
