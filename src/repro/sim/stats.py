"""Counters and windowed time series.

The paper's per-window figures (Fig. 8: pages promoted per 20-second
window; Fig. 9: re-access percentage of recently promoted pages per
window) need event streams bucketed by virtual time.  :class:`StatsBook`
is the single sink the simulator writes into: plain monotonic counters
for totals plus :class:`WindowedSeries` for anything reported over time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.sim.vclock import NANOS_PER_SECOND

__all__ = ["StatsBook", "WindowedSeries", "WindowPoint"]


@dataclass(frozen=True)
class WindowPoint:
    """One bucket of a windowed series."""

    window_id: int
    value: float

    @property
    def start_seconds(self) -> float:
        """Window start is meaningful only relative to the series width."""
        return float(self.window_id)


class WindowedSeries:
    """Accumulates ``(time, value)`` events into fixed-width windows.

    Windows are indexed by ``time_ns // window_ns``; empty windows between
    observed ones are materialised as zero so plots have a continuous axis.
    """

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window width must be positive, got {window_seconds}")
        self.window_ns = int(window_seconds * NANOS_PER_SECOND)
        self._sums: dict[int, float] = defaultdict(float)
        self._counts: dict[int, int] = defaultdict(int)

    def record(self, time_ns: int, value: float = 1.0) -> None:
        """Add ``value`` to the window containing ``time_ns``."""
        window_id = time_ns // self.window_ns
        self._sums[window_id] += value
        self._counts[window_id] += 1

    def totals(self) -> list[WindowPoint]:
        """Sum of values per window, dense from window 0 to the last."""
        return self._dense(self._sums)

    def means(self) -> list[WindowPoint]:
        """Mean value per window (zero for empty windows)."""
        means = {
            wid: self._sums[wid] / self._counts[wid]
            for wid in self._sums
            if self._counts[wid]
        }
        return self._dense(means)

    def _dense(self, sparse: dict[int, float]) -> list[WindowPoint]:
        if not sparse:
            return []
        last = max(sparse)
        return [WindowPoint(wid, sparse.get(wid, 0.0)) for wid in range(last + 1)]

    def __len__(self) -> int:
        return len(self._sums)


class StatsBook:
    """Central statistics sink for a simulation run.

    Counters are created lazily on first increment, so callers never need
    to pre-register names.  Windowed series must be created explicitly
    because they need a window width.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.series: dict[str, WindowedSeries] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def get(self, name: str) -> int:
        """Read counter ``name`` (zero if never incremented)."""
        return self.counters.get(name, 0)

    def make_series(self, name: str, window_seconds: float) -> WindowedSeries:
        """Create (or return the existing) windowed series called ``name``."""
        if name not in self.series:
            self.series[name] = WindowedSeries(window_seconds)
        return self.series[name]

    def record(self, name: str, time_ns: int, value: float = 1.0) -> None:
        """Record into an existing series; raises KeyError if absent."""
        self.series[name].record(time_ns, value)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)
