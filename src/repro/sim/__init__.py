"""Discrete virtual-time simulation substrate.

Provides the clock, daemon scheduler, deterministic RNG streams,
statistics sinks and the configuration object shared by every other
subsystem of the reproduction.
"""

from repro.sim.config import PAGE_SIZE, DaemonConfig, LatencyConfig, SimulationConfig
from repro.sim.events import Daemon, DaemonScheduler
from repro.sim.rng import derive_seed, make_rng
from repro.sim.stats import StatsBook, WindowedSeries, WindowPoint
from repro.sim.vclock import (
    NANOS_PER_MICRO,
    NANOS_PER_MILLI,
    NANOS_PER_SECOND,
    VirtualClock,
)

__all__ = [
    "PAGE_SIZE",
    "DaemonConfig",
    "LatencyConfig",
    "SimulationConfig",
    "Daemon",
    "DaemonScheduler",
    "derive_seed",
    "make_rng",
    "StatsBook",
    "WindowedSeries",
    "WindowPoint",
    "VirtualClock",
    "NANOS_PER_MICRO",
    "NANOS_PER_MILLI",
    "NANOS_PER_SECOND",
]
