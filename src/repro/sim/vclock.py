"""Virtual time for the simulator.

The whole reproduction is trace driven: instead of wall-clock time, every
memory access, page fault, daemon wakeup and page migration advances a
shared virtual clock measured in nanoseconds.  Throughput and execution
time reported by the benchmark harness are derived from this clock, which
makes runs fully deterministic and independent of the host machine.
"""

from __future__ import annotations

__all__ = ["VirtualClock", "NANOS_PER_SECOND", "NANOS_PER_MILLI", "NANOS_PER_MICRO"]

NANOS_PER_SECOND = 1_000_000_000
NANOS_PER_MILLI = 1_000_000
NANOS_PER_MICRO = 1_000


class VirtualClock:
    """A monotonically advancing nanosecond counter.

    The clock distinguishes *application* time (latency experienced by the
    workload's own memory accesses) from *system* time (daemon scans, page
    migrations, hint page faults).  Both advance the single global ``now``
    — a daemon that burns CPU delays the application, which is exactly the
    overhead trade-off the paper's Section V-E and V-F study — but the two
    buckets are accounted separately so experiments can report overhead.
    """

    # Invariant: _now_ns == start_ns + _app_ns + _system_ns.  The batched
    # access path (Machine.touch_batch) bumps _now_ns/_app_ns directly to
    # skip per-access method-call overhead — keep these three fields (and
    # that invariant) in sync with advance_app/advance_system.
    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"start_ns must be non-negative, got {start_ns}")
        self._now_ns = start_ns
        self._app_ns = 0
        self._system_ns = 0

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / NANOS_PER_SECOND

    @property
    def app_ns(self) -> int:
        """Nanoseconds spent in application memory accesses."""
        return self._app_ns

    @property
    def system_ns(self) -> int:
        """Nanoseconds spent in simulated system work (scans, migrations)."""
        return self._system_ns

    def advance_app(self, delta_ns: int) -> int:
        """Advance the clock by application work; returns the new time."""
        self._check_delta(delta_ns)
        self._now_ns += delta_ns
        self._app_ns += delta_ns
        return self._now_ns

    def advance_system(self, delta_ns: int) -> int:
        """Advance the clock by system (daemon/migration) work."""
        self._check_delta(delta_ns)
        self._now_ns += delta_ns
        self._system_ns += delta_ns
        return self._now_ns

    @staticmethod
    def _check_delta(delta_ns: int) -> None:
        if delta_ns < 0:
            raise ValueError(f"time can only move forward, got delta {delta_ns}")

    def __repr__(self) -> str:
        return (
            f"VirtualClock(now={self._now_ns}ns, "
            f"app={self._app_ns}ns, system={self._system_ns}ns)"
        )
