"""Deterministic random number helpers.

Every stochastic component of the reproduction (workload key choice, graph
generation, page sampling) draws from a seeded :class:`numpy.random.Generator`
created here, so that two runs with the same configuration produce
bit-identical results.  Sub-streams are derived with ``spawn_key`` style
name hashing so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_SEED_BYTES = 8


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a stable child seed from a base seed and a component name.

    The derivation hashes ``(base_seed, name)`` with BLAKE2b, so each named
    component gets an independent stream and renaming a component is the
    only way to change its stream.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{name}".encode(), digest_size=_SEED_BYTES
    ).digest()
    return int.from_bytes(digest, "little")


def make_rng(base_seed: int, name: str = "") -> np.random.Generator:
    """Create a deterministic generator for the component called ``name``."""
    seed = derive_seed(base_seed, name) if name else base_seed
    return np.random.default_rng(seed)
