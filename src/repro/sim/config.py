"""Simulation configuration.

All tunables live here so an experiment is fully described by one
:class:`SimulationConfig` value.  Latency defaults follow published
measurements of Intel Optane DC Persistent Memory relative to DDR4
(reads ~3-4x DRAM latency, writes absorbed by the controller's write
buffer, asymmetric as discussed in the paper's Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["LatencyConfig", "DaemonConfig", "SimulationConfig", "PAGE_SIZE"]

PAGE_SIZE = 4096
"""Bytes per page; the paper's prototype manages base (4 KiB) pages."""


@dataclass(frozen=True)
class LatencyConfig:
    """Nanosecond costs of the primitive operations the simulator charges.

    The PM numbers are *effective* per-access costs, folding both latency
    and bandwidth: Optane DCPMM random reads measure ~3-4x DRAM latency,
    and although individual writes complete in the controller's buffer
    quickly, sustained write bandwidth is ~3x lower than read bandwidth,
    so under load the effective per-access write cost exceeds the read
    cost (the asymmetry Section VII discusses).

    ``page_copy_ns`` is the cost of migrating one 4 KiB page between tiers
    (dominated by the copy plus mapping fixup, a few microseconds in
    Linux's ``migrate_pages()``).  ``hint_fault_ns`` is the cost of one
    software (hint) page fault, the tracking mechanism AutoTiering and
    AutoNUMA pay for and that the paper's Table I calls out as costly.
    ``scan_page_ns`` is the per-page cost of a CLOCK scan step (testing
    and clearing referenced bits in every mapping page table).
    ``poison_page_ns`` is the per-page cost of unmapping a PTE for hint-
    fault tracking — more expensive than a scan step because clearing a
    live translation requires a TLB shootdown.
    ``daemon_wakeup_ns`` is the fixed cost of one daemon wakeup (context
    switch plus cache pollution) — the "excessive context switches" that
    Section III-B warns make too-frequent kpromoted scheduling harmful.
    """

    dram_read_ns: int = 80
    dram_write_ns: int = 80
    pm_read_ns: int = 300
    pm_write_ns: int = 600
    page_copy_ns: int = 3_000
    hint_fault_ns: int = 2_500
    scan_page_ns: int = 120
    poison_page_ns: int = 500
    daemon_wakeup_ns: int = 2_000
    minor_fault_ns: int = 800
    swap_in_ns: int = 100_000
    swap_out_ns: int = 60_000
    migrate_backoff_ns: int = 1_000
    """Base backoff between retries of a transiently failed migration
    (doubles per attempt, kernel ``migrate_pages()``-style)."""
    remote_socket_multiplier: float = 1.5
    """Latency multiplier for accesses that cross a socket interconnect
    (typical QPI/UPI remote-DRAM penalty)."""

    def validated(self) -> "LatencyConfig":
        """Return self after checking every latency is positive."""
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"latency {name} must be positive, got {value}")
        return self


@dataclass(frozen=True)
class DaemonConfig:
    """Wakeup cadence and scan budgets for the background daemons.

    The paper sets both MULTI-CLOCK's ``kpromoted`` and Nimble's promotion
    daemon to a one-second interval with a 1024-page scan budget
    (Section V, "we set the number of page scan to 1024").
    """

    kpromoted_interval_s: float = 1.0
    scan_budget_pages: int = 1024
    kswapd_interval_s: float = 0.5
    hint_scan_interval_s: float = 1.0
    hint_scan_budget_pages: int = 1024

    def validated(self) -> "DaemonConfig":
        if self.kpromoted_interval_s <= 0:
            raise ValueError("kpromoted interval must be positive")
        if self.kswapd_interval_s <= 0:
            raise ValueError("kswapd interval must be positive")
        if self.hint_scan_interval_s <= 0:
            raise ValueError("hint scan interval must be positive")
        if self.scan_budget_pages <= 0 or self.hint_scan_budget_pages <= 0:
            raise ValueError("scan budgets must be positive")
        return self


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of a simulated hybrid-memory machine.

    ``dram_pages``/``pm_pages`` give per-node capacities, one entry per
    NUMA node of that tier.  The paper's testbed is a dual-socket machine
    where DAX-KMEM hot-plugs each socket's PM as its own node; the default
    here is a single-socket (one DRAM node, one PM node) machine scaled
    down so simulations finish quickly.
    """

    dram_pages: tuple[int, ...] = (8192,)
    pm_pages: tuple[int, ...] = (32768,)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    daemons: DaemonConfig = field(default_factory=DaemonConfig)
    seed: int = 42
    stats_window_s: float = 20.0
    active_inactive_ratio_cap: float | None = None
    swap_pages: int = 1 << 28
    sockets: int = 1
    """NUMA sockets.  Nodes are assigned round-robin within each tier, as
    on the paper's dual-socket testbed (one DRAM node and one DAX-KMEM PM
    node per socket); cross-socket accesses pay the remote multiplier."""

    def validated(self) -> "SimulationConfig":
        """Validate and return self (chainable)."""
        if not self.dram_pages or not self.pm_pages:
            raise ValueError("need at least one DRAM node and one PM node")
        for pages in (*self.dram_pages, *self.pm_pages):
            if pages <= 0:
                raise ValueError(f"node capacity must be positive, got {pages}")
        if self.stats_window_s <= 0:
            raise ValueError("stats window must be positive")
        if self.sockets < 1:
            raise ValueError("need at least one socket")
        if self.latency.remote_socket_multiplier < 1.0:
            raise ValueError("remote accesses cannot be faster than local")
        self.latency.validated()
        self.daemons.validated()
        return self

    @property
    def total_dram_pages(self) -> int:
        return sum(self.dram_pages)

    @property
    def total_pm_pages(self) -> int:
        return sum(self.pm_pages)

    @property
    def total_pages(self) -> int:
        return self.total_dram_pages + self.total_pm_pages

    def with_overrides(self, **changes: Any) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes).validated()
