"""Periodic daemon scheduling on the virtual clock.

The kernel threads the paper adds or relies on — ``kpromoted`` (one per
node), ``kswapd``, AutoTiering's hint-fault scanner — are modelled as
periodic callbacks.  The simulator is trace driven, so instead of a full
event queue the :class:`DaemonScheduler` is *pumped*: after every batch of
workload accesses the machine calls :meth:`run_due`, which fires every
daemon whose next deadline has passed.  This mirrors how kernel daemons
only matter at the granularity of their wakeup period.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.vclock import NANOS_PER_SECOND, VirtualClock

__all__ = ["Daemon", "DaemonScheduler", "NEVER_NS"]

NEVER_NS = 1 << 62
"""Sentinel deadline meaning "no daemon is registered"."""


class Daemon:
    """A named periodic callback.

    ``body`` receives the current virtual time (ns) and returns the number
    of nanoseconds of system work the wakeup consumed, which the scheduler
    charges to the clock.  Returning 0 models a wakeup that found nothing
    to do.

    ``one_shot=True`` makes the daemon a timer instead: it fires once,
    ``interval_s`` after registration, and is not rescheduled.  The fault
    injector uses these for the edges of its fault windows.

    ``cost_free=True`` exempts the daemon from the scheduler's fixed
    per-wakeup charge: pure *observers* (the vmstat metrics sampler) must
    not perturb the virtual clock, or arming them would break the
    metrics-off bit-identity guarantee.  Simulated kernel threads keep
    the default and pay their wakeup cost.
    """

    def __init__(
        self,
        name: str,
        interval_s: float,
        body: Callable[[int], int],
        *,
        enabled: bool = True,
        one_shot: bool = False,
        cost_free: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"daemon {name!r} needs a positive interval")
        self.name = name
        self.interval_ns = int(interval_s * NANOS_PER_SECOND)
        self.body = body
        self.enabled = enabled
        self.one_shot = one_shot
        self.cost_free = cost_free
        self.wakeups = 0

    def __repr__(self) -> str:
        kind = "once in" if self.one_shot else "every"
        return f"Daemon({self.name!r}, {kind} {self.interval_ns}ns, wakeups={self.wakeups})"


class DaemonScheduler:
    """Runs registered daemons when their deadlines pass.

    Deadlines are kept in a heap keyed by ``(next_deadline, seq)``; the
    sequence number makes ordering deterministic when two daemons share a
    deadline (registration order wins).

    The earliest deadline is additionally cached in ``next_deadline_ns``
    so the per-access pump is a single integer compare: callers on the
    hot path check ``scheduler.next_deadline_ns <= clock.now_ns`` before
    paying for a :meth:`run_due` call, and :meth:`run_due` itself returns
    immediately when nothing is due.
    """

    def __init__(self, clock: VirtualClock, *, wakeup_cost_ns: int = 0) -> None:
        if wakeup_cost_ns < 0:
            raise ValueError("wakeup cost cannot be negative")
        self._clock = clock
        self._wakeup_cost_ns = wakeup_cost_ns
        self._heap: list[tuple[int, int, Daemon]] = []
        self._seq = itertools.count()
        self._daemons: dict[str, Daemon] = {}
        self.next_deadline_ns: int = NEVER_NS
        # Optional wakeup-jitter hook (fault injection): called once per
        # reschedule, returns extra nanoseconds to delay the next wakeup.
        self.jitter_hook: Callable[[Daemon], int] | None = None

    def register(self, daemon: Daemon) -> Daemon:
        """Register ``daemon``; its first wakeup is one interval from now."""
        if daemon.name in self._daemons:
            raise ValueError(f"daemon {daemon.name!r} already registered")
        self._daemons[daemon.name] = daemon
        first = self._clock.now_ns + daemon.interval_ns
        heapq.heappush(self._heap, (first, next(self._seq), daemon))
        if first < self.next_deadline_ns:
            self.next_deadline_ns = first
        return daemon

    def get(self, name: str) -> Daemon:
        return self._daemons[name]

    @property
    def daemons(self) -> list[Daemon]:
        return list(self._daemons.values())

    def run_due(self) -> int:
        """Fire every daemon whose deadline has passed; return ns charged.

        A daemon that falls far behind (its deadline is several intervals
        in the past, e.g. after a long-latency swap-in) fires once and is
        rescheduled from *now*, matching how a sleeping kernel thread that
        oversleeps does not replay missed wakeups.
        """
        if self._clock.now_ns < self.next_deadline_ns:
            return 0
        charged = 0
        while self._heap and self._heap[0][0] <= self._clock.now_ns:
            deadline, __, daemon = heapq.heappop(self._heap)
            if daemon.enabled:
                daemon.wakeups += 1
                work_ns = daemon.body(self._clock.now_ns)
                if not daemon.cost_free:
                    work_ns += self._wakeup_cost_ns
                if work_ns:
                    self._clock.advance_system(work_ns)
                    charged += work_ns
            if daemon.one_shot:
                del self._daemons[daemon.name]
                continue
            next_deadline = max(deadline, self._clock.now_ns) + daemon.interval_ns
            if self.jitter_hook is not None:
                next_deadline += max(0, self.jitter_hook(daemon))
            heapq.heappush(self._heap, (next_deadline, next(self._seq), daemon))
        self.next_deadline_ns = self._heap[0][0] if self._heap else NEVER_NS
        return charged
