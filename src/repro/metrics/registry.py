"""The metrics registry — the simulator's ``/proc/vmstat`` + histograms.

One :class:`MetricsRegistry` per machine, installed by
``Machine.enable_metrics()``.  It owns three kinds of state, all kept
*outside* the :class:`~repro.sim.stats.StatsBook` so arming metrics never
changes the counter key sets or values a metrics-off run produces:

* **gauges** — per-node occupancy values sampled by the ``vmstat_sampler``
  daemon into :class:`~repro.sim.stats.WindowedSeries` (free frames, LRU
  list lengths, watermark distance, promote-list depth, swap occupancy);
* **latency histograms** — :class:`~repro.metrics.histogram.Log2Histogram`
  instances fed from the hot paths (promotion latency, page age at
  demotion, time-to-first-reaccess, migration retry backoff, direct-
  reclaim stall, swap residency);
* **event series** — windowed vmscan activity (``pgscan`` / ``pgsteal`` /
  ``pgdeactivate``), the classic vmstat reclaim counters over time.

Every instrumentation site guards on ``<sink>.metrics is None``, the
same nop discipline the tracepoint layer uses, so the metrics-off access
path is bit-identical to a build without this package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.histogram import Log2Histogram
from repro.sim.stats import WindowedSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.mm.system import MemorySystem

__all__ = ["MetricsRegistry", "HISTOGRAM_SPECS", "GAUGE_NAMES", "EVENT_NAMES"]

#: (attribute, metric name, help text) for every predeclared histogram.
HISTOGRAM_SPECS: tuple[tuple[str, str, str], ...] = (
    ("promotion_latency", "promotion_latency_ns",
     "virtual ns from PagePromote (promote-list add) to the migration "
     "committing the page into DRAM"),
    ("demotion_age", "demotion_page_age_ns",
     "page age (now - born_ns) at the moment of demotion to a lower tier"),
    ("reaccess_delay", "reaccess_delay_ns",
     "virtual ns from a promotion to the page's first re-access"),
    ("migrate_backoff", "migrate_backoff_ns",
     "virtual-time backoff charged between migration retry attempts"),
    ("reclaim_stall", "reclaim_stall_ns",
     "virtual ns an allocation stalled in synchronous direct reclaim"),
    ("swap_residency", "swap_residency_ns",
     "virtual ns a swapped-out page spent in the swap area before its "
     "major refault"),
)

#: Per-node gauges the vmstat sampler records, in exposition order.
GAUGE_NAMES: tuple[str, ...] = (
    "nr_free_pages",
    "nr_inactive_anon",
    "nr_active_anon",
    "nr_inactive_file",
    "nr_active_file",
    "nr_promote_pages",
    "nr_unevictable",
    "watermark_low_distance",
    "nr_swap_used",
)

#: Windowed vmscan event series (recorded per node).
EVENT_NAMES: tuple[str, ...] = ("pgscan", "pgsteal", "pgdeactivate")

#: Node id used for machine-wide gauges (swap lives on no NUMA node).
MACHINE_NODE = -1


class MetricsRegistry:
    """Gauges, histograms and event series for one machine."""

    def __init__(
        self,
        system: "MemorySystem",
        *,
        window_seconds: float,
        sample_interval_s: float,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("metrics window must be positive")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.system = system
        self.window_seconds = float(window_seconds)
        self.sample_interval_s = float(sample_interval_s)
        self.samples = 0
        self.histograms: dict[str, Log2Histogram] = {}
        for attr, name, help_text in HISTOGRAM_SPECS:
            hist = Log2Histogram(name, help_text)
            setattr(self, attr, hist)
            self.histograms[name] = hist
        # (gauge name, node id) -> sampled series; insertion-ordered by
        # the sampler's first pass, which walks nodes in id order.
        self.gauges: dict[tuple[str, int], WindowedSeries] = {}
        self.gauge_last: dict[tuple[str, int], float] = {}
        self.events: dict[tuple[str, int], WindowedSeries] = {}
        # PagePromote latency tracking: pfn -> virtual ns the page joined
        # a promote list.  Commit pops it; recycling drops it.
        self._promote_pending: dict[int, int] = {}
        # Swap residency: (pid, vpage) -> virtual ns of the swap-out.
        self._swap_out_at: dict[tuple[int, int], int] = {}

    # -- typed accessors (set in __init__ via HISTOGRAM_SPECS) --------------
    promotion_latency: Log2Histogram
    demotion_age: Log2Histogram
    reaccess_delay: Log2Histogram
    migrate_backoff: Log2Histogram
    reclaim_stall: Log2Histogram
    swap_residency: Log2Histogram

    # -- gauges --------------------------------------------------------------

    def set_gauge(self, name: str, node_id: int, now_ns: int, value: float) -> None:
        """Record one sampled gauge value into its windowed series."""
        key = (name, node_id)
        series = self.gauges.get(key)
        if series is None:
            series = self.gauges[key] = WindowedSeries(self.window_seconds)
        series.record(now_ns, value)
        self.gauge_last[key] = value

    def gauge_nodes(self) -> list[int]:
        """Node ids that have at least one sampled gauge, sorted."""
        return sorted({node_id for (_, node_id) in self.gauges})

    # -- per-tenant latency ----------------------------------------------------

    def tenant_histogram(self, tenant: str) -> Log2Histogram:
        """The per-operation latency histogram for one tenant, created on
        first use.  Lives in :attr:`histograms` beside the predeclared
        specs, so every exposition format picks tenants up for free."""
        import re

        slug = re.sub(r"[^0-9A-Za-z_]", "_", tenant)
        name = f"tenant_{slug}_latency_ns"
        hist = self.histograms.get(name)
        if hist is None:
            hist = Log2Histogram(
                name,
                f"per-operation access latency of tenant {tenant}",
            )
            self.histograms[name] = hist
        return hist

    # -- vmscan event series -------------------------------------------------

    def note_vmscan(
        self, node_id: int, now_ns: int, *, scanned: int, stolen: int, deactivated: int
    ) -> None:
        """Account one list scan's activity (pgscan/pgsteal/pgdeactivate)."""
        for name, value in (
            ("pgscan", scanned),
            ("pgsteal", stolen),
            ("pgdeactivate", deactivated),
        ):
            if not value:
                continue
            key = (name, node_id)
            series = self.events.get(key)
            if series is None:
                series = self.events[key] = WindowedSeries(self.window_seconds)
            series.record(now_ns, value)

    # -- promotion latency ---------------------------------------------------

    def note_promote_list_add(self, pfn: int, now_ns: int) -> None:
        """A page joined a promote list (PagePromote set)."""
        self._promote_pending.setdefault(pfn, now_ns)

    def note_promote_drop(self, pfn: int) -> None:
        """A promote-list page was recycled without being promoted."""
        self._promote_pending.pop(pfn, None)

    def note_promote_commit(self, pfn: int, now_ns: int) -> None:
        """A promotion committed; record its promote-list latency."""
        added_at = self._promote_pending.pop(pfn, None)
        if added_at is not None:
            self.promotion_latency.record(now_ns - added_at)

    @property
    def promote_pending(self) -> int:
        """Pages currently tracked between PagePromote and commit."""
        return len(self._promote_pending)

    # -- swap residency --------------------------------------------------------

    def note_swap_out(self, process_id: int, vpage: int) -> None:
        self._swap_out_at[(process_id, vpage)] = self.system.clock.now_ns

    def note_swap_in(self, process_id: int, vpage: int) -> None:
        out_at = self._swap_out_at.pop((process_id, vpage), None)
        if out_at is not None:
            self.swap_residency.record(self.system.clock.now_ns - out_at)

    # -- exposition ------------------------------------------------------------

    def to_vmstat(self, node: int | None = None) -> str:
        """``/proc/vmstat``-format text dump (``name value`` lines)."""
        from repro.metrics.exposition import render_vmstat

        return render_vmstat(self, node)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        from repro.metrics.exposition import render_prometheus

        return render_prometheus(self)

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable snapshot of every metric."""
        from repro.metrics.exposition import build_snapshot

        return build_snapshot(self)
