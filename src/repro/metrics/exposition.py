"""Text exposition of a :class:`~repro.metrics.registry.MetricsRegistry`.

Three formats, matching the three audiences:

* :func:`render_vmstat` — ``/proc/vmstat``-style ``name value`` lines,
  for eyeballs and shell pipelines;
* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` metadata, labelled samples, cumulative
  histogram ``_bucket``/``_sum``/``_count`` families), for scrapers;
* :func:`build_snapshot` — a JSON-ready dict, for ``repro stat --json``
  and the HTML dashboard.

All three read only the registry and the machine's counter snapshot, so
rendering is a pure function of the finished run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.metrics.registry import GAUGE_NAMES, MACHINE_NODE

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.registry import MetricsRegistry

__all__ = [
    "render_vmstat",
    "render_prometheus",
    "build_snapshot",
    "sanitize_metric_name",
    "escape_label_value",
]

PROM_PREFIX = "repro_"


def sanitize_metric_name(name: str) -> str:
    """Map a dotted counter name onto the Prometheus name grammar."""
    return name.replace(".", "_").replace("-", "_").replace("/", "_")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Integer-looking floats print as integers, vmstat style."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# -- /proc/vmstat ------------------------------------------------------------


def render_vmstat(registry: "MetricsRegistry", node: int | None = None) -> str:
    """``name value`` lines: counters, per-node gauges, histogram moments.

    ``node`` restricts the gauge rows to one node id (counters and
    histograms are machine-wide and always printed).
    """
    lines: list[str] = []
    for name, value in sorted(registry.system.stats.snapshot().items()):
        lines.append(f"{sanitize_metric_name(name)} {value}")
    for name in GAUGE_NAMES:
        for node_id in registry.gauge_nodes():
            if node is not None and node_id != node:
                continue
            value = registry.gauge_last.get((name, node_id))
            if value is None:
                continue
            prefix = "" if node_id == MACHINE_NODE else f"node{node_id}_"
            lines.append(f"{prefix}{name} {_fmt(value)}")
    for hist in registry.histograms.values():
        lines.append(f"{hist.name}_count {hist.count}")
        lines.append(f"{hist.name}_sum {hist.total}")
        if hist.count:
            lines.append(f"{hist.name}_p50 {_fmt(hist.quantile(0.5))}")
            lines.append(f"{hist.name}_p99 {_fmt(hist.quantile(0.99))}")
    return "\n".join(lines) + "\n"


# -- Prometheus text format --------------------------------------------------


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Prometheus text exposition of the whole registry."""
    system = registry.system
    out: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")

    for raw_name, value in sorted(system.stats.snapshot().items()):
        name = PROM_PREFIX + sanitize_metric_name(raw_name) + "_total"
        family(name, "counter", f"simulator counter {raw_name}")
        out.append(f"{name} {value}")

    node_tiers = {
        node.node_id: node.tier.name for node in system.nodes.values()
    }
    for gauge_name in GAUGE_NAMES:
        samples = []
        for node_id in registry.gauge_nodes():
            value = registry.gauge_last.get((gauge_name, node_id))
            if value is None:
                continue
            if node_id == MACHINE_NODE:
                labels = ""
            else:
                tier = escape_label_value(node_tiers.get(node_id, "?"))
                labels = f'{{node="{node_id}",tier="{tier}"}}'
            samples.append(f"{PROM_PREFIX}{gauge_name}{labels} {_fmt(value)}")
        if samples:
            family(
                PROM_PREFIX + gauge_name, "gauge",
                f"last sampled {gauge_name} per node",
            )
            out.extend(samples)

    for hist in registry.histograms.values():
        name = PROM_PREFIX + hist.name
        family(name, "histogram", hist.help or hist.name)
        for upper, cumulative in hist.cumulative_buckets():
            out.append(f'{name}_bucket{{le="{upper}"}} {cumulative}')
        out.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        out.append(f"{name}_sum {hist.total}")
        out.append(f"{name}_count {hist.count}")
    for hist in registry.histograms.values():
        if not hist.count:
            continue
        # Quantiles are their own gauge families (not histogram samples:
        # the text-format grammar only allows _bucket/_sum/_count under
        # a histogram family's metadata).
        name = PROM_PREFIX + hist.name
        for label, q in (("p50", 0.5), ("p99", 0.99)):
            family(
                f"{name}_{label}", "gauge",
                f"{label} of {hist.name} (log2-bucket midpoint estimate)",
            )
            out.append(f"{name}_{label} {_fmt(hist.quantile(q))}")

    return "\n".join(out) + "\n"


# -- JSON snapshot -----------------------------------------------------------


def _series_points(series) -> list[dict[str, object]]:
    points = []
    for point in series.totals():
        points.append(
            {
                "window": point.window_id,
                "start_s": point.start_seconds,
                "value": None if math.isnan(point.value) else point.value,
                "samples": point.samples,
            }
        )
    return points


def _series_means(series) -> list[dict[str, object]]:
    points = []
    for point in series.means():
        points.append(
            {
                "window": point.window_id,
                "start_s": point.start_seconds,
                "value": None if math.isnan(point.value) else point.value,
                "samples": point.samples,
            }
        )
    return points


def build_snapshot(registry: "MetricsRegistry") -> dict[str, object]:
    """Everything the registry knows, as JSON-serialisable primitives."""
    system = registry.system
    gauges: dict[str, dict[str, object]] = {}
    for name in GAUGE_NAMES:
        per_node: dict[str, object] = {}
        for node_id in registry.gauge_nodes():
            if (name, node_id) not in registry.gauges:
                continue
            per_node[str(node_id)] = {
                "last": registry.gauge_last[(name, node_id)],
                "windows": _series_means(registry.gauges[(name, node_id)]),
            }
        if per_node:
            gauges[name] = per_node
    events: dict[str, dict[str, object]] = {}
    for (name, node_id), series in sorted(registry.events.items()):
        events.setdefault(name, {})[str(node_id)] = _series_points(series)
    return {
        "meta": {
            "now_ns": system.clock.now_ns,
            "samples": registry.samples,
            "sample_interval_s": registry.sample_interval_s,
            "window_seconds": registry.window_seconds,
            "nodes": {
                str(node.node_id): {
                    "tier": node.tier.name,
                    "capacity_pages": node.capacity_pages,
                }
                for node in system.nodes.values()
            },
        },
        "counters": dict(sorted(system.stats.snapshot().items())),
        "gauges": gauges,
        "events": events,
        "histograms": {
            name: hist.to_dict() for name, hist in registry.histograms.items()
        },
    }
