"""``/proc/vmstat``-style metrics: gauges, log2 histograms, exposition.

Off by default — a machine carries no registry until
``Machine.enable_metrics()`` installs one, and every instrumentation
site guards on ``None``, so metrics-off runs are bit-identical to a
build without this package (asserted against the recorded baselines and
measured by the ``metrics`` entry of ``repro bench``).
"""

from repro.metrics.exposition import (
    build_snapshot,
    escape_label_value,
    render_prometheus,
    render_vmstat,
    sanitize_metric_name,
)
from repro.metrics.histogram import Log2Histogram
from repro.metrics.registry import (
    EVENT_NAMES,
    GAUGE_NAMES,
    HISTOGRAM_SPECS,
    MetricsRegistry,
)
from repro.metrics.sampler import SAMPLER_NAME, VmstatSampler

__all__ = [
    "Log2Histogram",
    "MetricsRegistry",
    "VmstatSampler",
    "SAMPLER_NAME",
    "GAUGE_NAMES",
    "EVENT_NAMES",
    "HISTOGRAM_SPECS",
    "render_vmstat",
    "render_prometheus",
    "build_snapshot",
    "sanitize_metric_name",
    "escape_label_value",
]
