"""The ``vmstat_sampler`` daemon — periodic gauge sampling.

Gauges are *states*, not events: free-frame counts, LRU list lengths and
swap occupancy only mean anything as a time series of observations.  The
sampler is a virtual-clock daemon that reads each node's occupancy on
every wakeup and records it into the registry's windowed series, the way
``vmstat <interval>`` polls ``/proc/vmstat``.

The daemon is registered ``cost_free``: it observes, so it must charge
nothing to the virtual clock — otherwise arming metrics would perturb
the run it is measuring and break the off/on bit-identity guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.registry import MACHINE_NODE, MetricsRegistry
from repro.mm.lruvec import ListKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mm.system import MemorySystem

__all__ = ["VmstatSampler", "SAMPLER_NAME"]

SAMPLER_NAME = "vmstat_sampler"


class VmstatSampler:
    """Reads per-node occupancy gauges into the registry."""

    def __init__(self, system: "MemorySystem", registry: MetricsRegistry) -> None:
        self.system = system
        self.registry = registry

    @property
    def name(self) -> str:
        return SAMPLER_NAME

    def run(self, now_ns: int) -> int:
        """One sampling pass; always returns 0 ns of system work."""
        registry = self.registry
        set_gauge = registry.set_gauge
        for node in self.system.nodes.values():
            nid = node.node_id
            lruvec = node.lruvec
            set_gauge("nr_free_pages", nid, now_ns, node.free_pages)
            set_gauge(
                "nr_inactive_anon", nid, now_ns,
                len(lruvec.list_for(ListKind.INACTIVE, True)),
            )
            set_gauge(
                "nr_active_anon", nid, now_ns,
                len(lruvec.list_for(ListKind.ACTIVE, True)),
            )
            set_gauge(
                "nr_inactive_file", nid, now_ns,
                len(lruvec.list_for(ListKind.INACTIVE, False)),
            )
            set_gauge(
                "nr_active_file", nid, now_ns,
                len(lruvec.list_for(ListKind.ACTIVE, False)),
            )
            set_gauge(
                "nr_promote_pages", nid, now_ns,
                len(lruvec.list_for(ListKind.PROMOTE, True))
                + len(lruvec.list_for(ListKind.PROMOTE, False)),
            )
            set_gauge(
                "nr_unevictable", nid, now_ns,
                len(lruvec.list_for(ListKind.UNEVICTABLE)),
            )
            set_gauge(
                "watermark_low_distance", nid, now_ns,
                node.free_pages - node.watermarks.low_pages,
            )
        set_gauge(
            "nr_swap_used", MACHINE_NODE, now_ns, self.system.backing.swapped_pages
        )
        registry.samples += 1
        return 0
