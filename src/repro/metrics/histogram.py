"""Kernel-style log2 latency histograms.

The kernel's latency instrumentation (``hist_triggers``, BPF's
``log2l()`` maps, the block layer's I/O histograms) buckets nanosecond
durations by the position of the highest set bit, because tail behaviour
is what matters and a handful of power-of-two buckets capture four
orders of magnitude in ~30 integers.  :class:`Log2Histogram` is that
structure: bucket ``i`` covers ``[2**(i-1), 2**i - 1]`` (bucket 0 is the
value 0), kept sparse in a dict so an idle histogram costs nothing.
"""

from __future__ import annotations

__all__ = ["Log2Histogram"]


class Log2Histogram:
    """Power-of-two bucketed distribution of non-negative integers.

    Hot paths call :meth:`record` — one ``bit_length`` plus two dict/int
    updates.  ``count``/``total``/``min_value``/``max_value`` give exact
    moments alongside the bucketed shape, so a mean never suffers
    bucketing error even though quantiles do.
    """

    __slots__ = ("name", "help", "unit", "buckets", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, help: str = "", unit: str = "ns") -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min_value: int | None = None
        self.max_value: int | None = None

    def record(self, value: int) -> None:
        """Add one observation; ``value`` must be a non-negative integer.

        Zero is a real observation (bucket 0: the ``[0, 0]`` range) and
        updates every exact moment.  The value is coerced through
        ``int`` so numpy scalars off the hot-path columns cannot leak
        into ``total``/``min``/``max`` (where they would wrap at 64 bits
        and break JSON export).
        """
        value = int(value)
        if value < 0:
            raise ValueError(f"histogram {self.name!r} got negative value {value}")
        index = value.bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @staticmethod
    def bucket_upper_bound(index: int) -> int:
        """Inclusive upper bound of bucket ``index`` (0 for bucket 0)."""
        return (1 << index) - 1

    @staticmethod
    def bucket_lower_bound(index: int) -> int:
        """Inclusive lower bound of bucket ``index``."""
        return 0 if index == 0 else 1 << (index - 1)

    def dense_buckets(self) -> list[tuple[int, int]]:
        """``(index, count)`` from bucket 0 to the last occupied bucket."""
        if not self.buckets:
            return []
        last = max(self.buckets)
        return [(i, self.buckets.get(i, 0)) for i in range(last + 1)]

    def cumulative_buckets(self) -> list[tuple[int, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out: list[tuple[int, int]] = []
        running = 0
        for index, count in self.dense_buckets():
            running += count
            out.append((self.bucket_upper_bound(index), running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (midpoint of the bucket).

        Good enough for a dashboard's p50/p99 annotation; exact values
        would need the raw stream the histogram deliberately discards.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        for index, count in self.dense_buckets():
            running += count
            if running >= rank:
                lo = self.bucket_lower_bound(index)
                hi = self.bucket_upper_bound(index)
                return (lo + hi) / 2
        return float(self.max_value if self.max_value is not None else 0)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready snapshot.

        Quantiles are ``None`` (not NaN) when the histogram is empty so
        the snapshot stays round-trippable through strict JSON.
        """
        return {
            "name": self.name,
            "unit": self.unit,
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.quantile(0.5) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
            "buckets": [
                {"le": self.bucket_upper_bound(i), "count": c}
                for i, c in self.dense_buckets()
            ],
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"Log2Histogram({self.name!r}, count={self.count}, "
            f"buckets={len(self.buckets)})"
        )
