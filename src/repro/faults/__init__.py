"""Fault injection and chaos testing for the simulator.

``repro.faults`` turns the simulator into its own test rig: a declarative
:class:`~repro.faults.plan.FaultPlan` is armed against a machine by
:func:`~repro.faults.injector.install_faults`, and the chaos harness in
:mod:`repro.faults.chaos` runs policy × workload matrices under fault
schedules while the ``CONFIG_DEBUG_VM`` invariant checker
(:mod:`repro.mm.debug`) watches for corruption.
"""

from repro.faults.chaos import (
    ChaosCell,
    ChaosReport,
    default_plan,
    render_report,
    run_chaos,
    write_report,
)
from repro.faults.injector import FaultInjector, install_faults
from repro.faults.plan import (
    CapacityLoss,
    CopyFailures,
    DaemonJitter,
    DaemonStall,
    FaultPlan,
    FaultSpec,
    LockBurst,
    PmSlowdown,
)

__all__ = [
    "FaultSpec",
    "CopyFailures",
    "LockBurst",
    "PmSlowdown",
    "CapacityLoss",
    "DaemonStall",
    "DaemonJitter",
    "FaultPlan",
    "FaultInjector",
    "install_faults",
    "ChaosCell",
    "ChaosReport",
    "default_plan",
    "run_chaos",
    "write_report",
    "render_report",
]
