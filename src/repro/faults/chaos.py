"""Chaos harness: a policy × workload matrix under a fault schedule.

``repro chaos`` (and ``tests/chaos/``) drive every requested policy over
every requested workload with a :class:`~repro.faults.plan.FaultPlan`
armed and the ``CONFIG_DEBUG_VM`` invariant checker sweeping periodically,
then assert the three robustness properties the subsystem exists for:

1. **completion** — no uncaught exception ends the run (OOM kills are
   recorded, not crashes);
2. **cleanliness** — zero invariant violations across every periodic
   sweep and a final full sweep;
3. **determinism** — the report is a pure function of (plan, matrix,
   config): same seed, same ``CHAOS_report.json``, bit for bit.

The report deliberately contains no wall-clock or host facts — everything
in it is virtual-time state, which is what makes property 3 checkable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.injector import install_faults
from repro.faults.plan import CapacityLoss, CopyFailures, FaultPlan
from repro.machine import Machine
from repro.mm.debug import InvariantChecker
from repro.mm.system import OutOfMemoryError
from repro.run import RunResult, run_workload
from repro.sim.config import SimulationConfig
from repro.sim.events import Daemon
from repro.workloads.base import Workload

__all__ = [
    "ChaosCell",
    "ChaosReport",
    "default_plan",
    "run_chaos",
    "write_report",
    "render_report",
    "DEFAULT_REPORT",
]

DEFAULT_REPORT = "CHAOS_report.json"

#: counters worth surfacing per cell — the observability the retry /
#: degradation machinery exists to provide.
_REPORT_COUNTERS = (
    "migrate.attempts",
    "migrate.failed_copy",
    "migrate.failed_dest_full",
    "migrate.failed_locked",
    "migrate.retries",
    "migrate.retry_succeeded",
    "migrate.retries_exhausted",
    "migrate.promotions",
    "migrate.demotions",
    "vm.oom_stalls",
    "oom.kills",
    "alloc.direct_reclaim",
    "faults.windows_opened",
    "faults.copy_failures_injected",
    "faults.pages_locked",
    "faults.frames_offlined",
    "debug_vm.checks",
    "debug_vm.violations",
    "kpromoted.promoted",
    "kpromoted.deactivated",
)


@dataclass(frozen=True)
class ChaosCell:
    """One (policy, workload) run of the matrix."""

    policy: str
    workload: str
    completed: bool
    oom_killed: bool
    error: str
    elapsed_ns: int
    accesses: int
    violations: int
    violation_details: tuple[str, ...]
    counters: dict[str, int] = field(default_factory=dict)
    # Present only when the matrix ran with tracing armed
    # (run_chaos(trace_capacity=...)): the lifecycle auditor's verdict.
    trace_audit: dict[str, Any] | None = None

    @property
    def clean(self) -> bool:
        if self.trace_audit is not None and self.trace_audit["mismatches"]:
            return False
        return self.completed and self.violations == 0

    def to_dict(self) -> dict[str, Any]:
        data = {
            "policy": self.policy,
            "workload": self.workload,
            "completed": self.completed,
            "oom_killed": self.oom_killed,
            "error": self.error,
            "elapsed_ns": self.elapsed_ns,
            "accesses": self.accesses,
            "violations": self.violations,
            "violation_details": list(self.violation_details),
            "counters": dict(sorted(self.counters.items())),
        }
        if self.trace_audit is not None:
            data["trace_audit"] = self.trace_audit
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosCell":
        """Rebuild a cell from :meth:`to_dict` output — the sweep-worker
        wire format.  ``from_dict(x.to_dict())`` round-trips exactly, so
        a parallel matrix merges bit-identically to a sequential one."""
        return cls(
            policy=data["policy"],
            workload=data["workload"],
            completed=data["completed"],
            oom_killed=data["oom_killed"],
            error=data["error"],
            elapsed_ns=data["elapsed_ns"],
            accesses=data["accesses"],
            violations=data["violations"],
            violation_details=tuple(data["violation_details"]),
            counters=dict(data["counters"]),
            trace_audit=data.get("trace_audit"),
        )


@dataclass(frozen=True)
class ChaosReport:
    """The full matrix outcome plus the plan that produced it."""

    plan: FaultPlan
    cells: tuple[ChaosCell, ...]

    @property
    def all_clean(self) -> bool:
        return all(cell.clean for cell in self.cells)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "all_clean": self.all_clean,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def default_plan(seed: int = 42) -> FaultPlan:
    """The acceptance schedule: 20% transient migration copy failures for
    most of the run, plus one PM capacity-loss window."""
    return FaultPlan(
        seed=seed,
        events=(
            CopyFailures(start_s=0.002, end_s=30.0, rate=0.2),
            CapacityLoss(start_s=0.01, end_s=0.05, node_id=1, frames=1024),
        ),
    )


def run_chaos(
    policies: list[str],
    workloads: dict[str, Callable[[], Workload]],
    plan: FaultPlan,
    config: SimulationConfig,
    *,
    check_interval_s: float = 0.005,
    trace_capacity: int | None = None,
    workers: int = 1,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the matrix; every cell gets a fresh machine and a fresh fault
    schedule, so cells are independent and individually reproducible.

    ``trace_capacity`` arms the tracepoint layer on every cell (ring
    capacity per node) and runs the lifecycle auditor after each run;
    audit mismatches mark the cell dirty.

    ``workers > 1`` shards the matrix across a pool of persistent,
    crash-isolated worker processes (:mod:`repro.sweep`); ``progress``
    receives the pool's streamed per-cell status lines as cells finish.
    Determinism property 3 is what makes the sharding safe: each cell
    is a pure function of (plan, cell, config), so the merge — keyed by
    (policy, workload) in matrix order — is bit-identical to the
    sequential run.  A worker that dies outright even after retries
    becomes an uncompleted cell in the report (``completed=False``),
    never a sweep abort.  Chaos cells carry live objects (the workload
    builders), so they are never served from the sweep result cache.
    """
    grid = [
        (policy, workload_name, build)
        for policy in policies
        for workload_name, build in workloads.items()
    ]
    if workers <= 1:
        cells = [
            _run_cell(
                policy, workload_name, build(), plan, config,
                check_interval_s, trace_capacity,
            )
            for policy, workload_name, build in grid
        ]
        return ChaosReport(plan=plan, cells=tuple(cells))

    from repro.sweep import SweepCell, SweepSpec, run_sweep

    spec = SweepSpec(
        name="run_chaos",
        cells=tuple(
            SweepCell(
                id=f"{policy}/{workload_name}",
                runner="chaos-cell",
                params={
                    "policy": policy,
                    "workload_name": workload_name,
                    "build": build,
                    "plan": plan,
                    "config": config,
                    "check_interval_s": check_interval_s,
                    "trace_capacity": trace_capacity,
                },
            )
            for policy, workload_name, build in grid
        ),
    )
    outcome = run_sweep(spec, workers=workers, progress=progress)
    cells = []
    for (policy, workload_name, _), cell_outcome in zip(grid, outcome.outcomes):
        if cell_outcome.ok:
            cells.append(ChaosCell.from_dict(cell_outcome.payload))
        else:
            # The chaos runner catches everything a simulation can
            # raise, so only a hard worker death lands here; keep the
            # never-abort contract by reporting it as a dirty cell.
            cells.append(
                ChaosCell(
                    policy=policy,
                    workload=workload_name,
                    completed=False,
                    oom_killed=False,
                    error=f"sweep worker failed: {cell_outcome.error}",
                    elapsed_ns=0,
                    accesses=0,
                    violations=0,
                    violation_details=(),
                    counters={},
                )
            )
    return ChaosReport(plan=plan, cells=tuple(cells))


def _run_cell(
    policy: str,
    workload_name: str,
    workload: Workload,
    plan: FaultPlan,
    config: SimulationConfig,
    check_interval_s: float,
    trace_capacity: int | None = None,
) -> ChaosCell:
    machine = Machine(config, policy)
    if trace_capacity is not None:
        machine.enable_tracing(capacity_per_node=trace_capacity)
    install_faults(machine, plan)
    checker = InvariantChecker(machine.system)
    machine.scheduler.register(Daemon(checker.name, check_interval_s, checker.run))
    details: list[str] = []
    result: RunResult | None = None
    completed = False
    oom_killed = False
    error = ""
    try:
        result = run_workload(workload, config, machine=machine)
        completed = True
    except OutOfMemoryError as exc:
        # Graceful degradation's last resort: recorded, not a crash.
        oom_killed = True
        error = f"OutOfMemoryError: {exc}"
    except Exception as exc:  # noqa: BLE001 - chaos runs must report, not die
        error = f"{type(exc).__name__}: {exc}"
    # Final sweep over whatever state the run ended in.
    final = checker.check()
    details.extend(str(v) for v in checker.last_violations)
    violations = machine.stats.get("debug_vm.violations")
    counters = {
        key: machine.stats.get(key) for key in _REPORT_COUNTERS
    }
    trace_audit = None
    if trace_capacity is not None:
        from repro.trace import audit_machine

        report = audit_machine(machine)
        trace_audit = {
            "checks": report.checks,
            "events_replayed": report.events_replayed,
            "complete": report.complete,
            "mismatches": len(report.mismatches),
            "mismatch_details": list(report.mismatches[:20]),
        }
    return ChaosCell(
        policy=policy,
        workload=workload_name,
        completed=completed,
        oom_killed=oom_killed,
        error=error,
        elapsed_ns=machine.clock.now_ns,
        accesses=result.accesses if result is not None else machine.stats.get("accesses.total"),
        violations=violations,
        violation_details=tuple(details[:20]),
        counters=counters,
        trace_audit=trace_audit,
    )


def write_report(report: ChaosReport, path: str = DEFAULT_REPORT) -> None:
    """Serialise deterministically: sorted keys, no timestamps, newline-terminated."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_report(report: ChaosReport) -> str:
    """Human-readable matrix summary for the CLI."""
    lines = ["policy × workload under faults:"]
    for cell in report.cells:
        status = "clean" if cell.clean else ("OOM" if cell.oom_killed else "DIRTY")
        retries = cell.counters.get("migrate.retries", 0)
        healed = cell.counters.get("migrate.retry_succeeded", 0)
        lines.append(
            f"  {cell.policy:>12} × {cell.workload:<16} {status:>5}  "
            f"{cell.counters.get('faults.copy_failures_injected', 0)} copy faults, "
            f"{retries} retries ({healed} healed), "
            f"{cell.counters.get('vm.oom_stalls', 0)} oom stalls, "
            f"{cell.violations} violations"
        )
    verdict = "ALL CLEAN" if report.all_clean else "FAILURES PRESENT"
    lines.append(f"chaos verdict: {verdict}")
    return "\n".join(lines)
