"""Declarative fault plans.

A :class:`FaultPlan` is a seed plus a list of fault specs, each pinned to
a virtual-time window (or instant).  Plans are plain data: they can be
built in code, round-tripped through dicts (the chaos harness embeds the
plan in ``CHAOS_report.json``), and replayed bit-identically — the
injector derives every random draw from the plan's seed.

Each spec models one failure mode the paper's kernel context absorbs for
free:

* :class:`CopyFailures`     — transient ``migrate_pages()`` copy failures
  (-EAGAIN), at a given probability per attempt inside the window;
* :class:`LockBurst`        — a burst of pages grabbing the page lock for
  a while (writeback / pin storms), blocking their migration;
* :class:`PmSlowdown`       — a PM latency degradation window (thermal
  throttle / media-error retries on a DIMM);
* :class:`CapacityLoss`     — frames taken offline on one node for the
  window (memory hot-remove, a failing rank);
* :class:`DaemonStall`      — matching daemons miss every wakeup in the
  window (scheduling starvation under load);
* :class:`DaemonJitter`     — random extra delay added to every daemon
  reschedule in the window (noisy-neighbour wakeup latency).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any

__all__ = [
    "FaultSpec",
    "CopyFailures",
    "LockBurst",
    "PmSlowdown",
    "CapacityLoss",
    "DaemonStall",
    "DaemonJitter",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultSpec:
    """Base: a fault active on the virtual-time window [start_s, end_s)."""

    start_s: float
    end_s: float

    def validated(self) -> "FaultSpec":
        if self.start_s < 0:
            raise ValueError(f"{type(self).__name__} cannot start before t=0")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"{type(self).__name__} window [{self.start_s}, {self.end_s}) is empty"
            )
        return self

    @property
    def kind(self) -> str:
        return _KIND_BY_CLASS[type(self)]


@dataclass(frozen=True)
class CopyFailures(FaultSpec):
    """Each migration copy attempt fails with probability ``rate``."""

    rate: float = 0.2

    def validated(self) -> "CopyFailures":
        super().validated()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"copy-failure rate must be in (0, 1], got {self.rate}")
        return self


@dataclass(frozen=True)
class LockBurst(FaultSpec):
    """``pages`` random resident pages of ``node_id`` hold the page lock."""

    node_id: int = 0
    pages: int = 64

    def validated(self) -> "LockBurst":
        super().validated()
        if self.pages <= 0:
            raise ValueError("a lock burst needs a positive page count")
        return self


@dataclass(frozen=True)
class PmSlowdown(FaultSpec):
    """PM access latency is scaled by ``multiplier`` for the window."""

    multiplier: float = 3.0

    def validated(self) -> "PmSlowdown":
        super().validated()
        if self.multiplier < 1.0:
            raise ValueError("a slowdown cannot make PM faster than nominal")
        return self


@dataclass(frozen=True)
class CapacityLoss(FaultSpec):
    """``frames`` free frames of ``node_id`` go offline for the window."""

    node_id: int = 0
    frames: int = 256

    def validated(self) -> "CapacityLoss":
        super().validated()
        if self.frames <= 0:
            raise ValueError("a capacity loss needs a positive frame count")
        return self


@dataclass(frozen=True)
class DaemonStall(FaultSpec):
    """Daemons whose name starts with ``name_prefix`` skip every wakeup."""

    name_prefix: str = "kpromoted"


@dataclass(frozen=True)
class DaemonJitter(FaultSpec):
    """Every daemon reschedule gains up to ``max_extra_s`` random delay."""

    max_extra_s: float = 0.01

    def validated(self) -> "DaemonJitter":
        super().validated()
        if self.max_extra_s <= 0:
            raise ValueError("jitter needs a positive maximum delay")
        return self


_KIND_BY_CLASS: dict[type, str] = {
    CopyFailures: "copy_failures",
    LockBurst: "lock_burst",
    PmSlowdown: "pm_slowdown",
    CapacityLoss: "capacity_loss",
    DaemonStall: "daemon_stall",
    DaemonJitter: "daemon_jitter",
}
_CLASS_BY_KIND = {kind: cls for cls, kind in _KIND_BY_CLASS.items()}


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault schedule it makes deterministic."""

    seed: int = 42
    events: tuple[FaultSpec, ...] = ()

    def validated(self) -> "FaultPlan":
        for event in self.events:
            if type(event) not in _KIND_BY_CLASS:
                raise ValueError(f"unknown fault spec {type(event).__name__}")
            event.validated()
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form, embedded in chaos reports."""
        return {
            "seed": self.seed,
            "events": [
                {"kind": event.kind, **asdict(event)} for event in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        events = []
        for entry in data.get("events", ()):
            entry = dict(entry)
            spec_cls = _CLASS_BY_KIND[entry.pop("kind")]
            allowed = {f.name for f in fields(spec_cls)}
            events.append(spec_cls(**{k: v for k, v in entry.items() if k in allowed}))
        return cls(seed=data.get("seed", 42), events=tuple(events)).validated()
