"""Seeded, virtual-time-scheduled fault injection.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into live disturbances: each fault
window's edges become one-shot daemons on the machine's virtual-clock
scheduler, so faults open and close at exact virtual times regardless of
workload shape, and every random draw (which copy fails, which pages
lock, how much jitter) comes from one RNG stream derived from the plan's
seed — two runs of the same (plan, workload, policy) are bit-identical.

Injection points, and the resilience code that absorbs each:

==================  ===================================================
fault               absorbed by
==================  ===================================================
copy failures       ``MigrationEngine.migrate_with_retry`` (bounded
                    retry + exponential virtual-time backoff)
lock bursts         promote-list recycling / scan rotation (the paper's
                    "page is locked" fallback paths)
PM slowdown         nothing to absorb — it degrades, measurably
capacity loss       watermark pressure -> demotion; direct reclaim with
                    ``vm.oom_stalls`` on the touch path
daemon stall        catch-up semantics of the scheduler (oversleeping
                    daemons fire once, never replay)
daemon jitter       same
==================  ===================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import (
    CapacityLoss,
    CopyFailures,
    DaemonJitter,
    DaemonStall,
    FaultPlan,
    FaultSpec,
    LockBurst,
    PmSlowdown,
)
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.sim.events import Daemon
from repro.sim.rng import make_rng
from repro.sim.vclock import NANOS_PER_SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.mm.numa import NumaNode
    from repro.mm.page import Page

__all__ = ["FaultInjector", "install_faults"]

#: daemons fault injection must never interfere with: the injector's own
#: window edges, the invariant checker observing the damage, and the
#: metrics sampler (jittering an observer would also draw RNG, shifting
#: the fault stream between metrics-armed and metrics-off runs).
_PROTECTED_PREFIXES = ("fault/", "debug_vm", "vmstat_sampler")


class FaultInjector:
    """Arms a fault plan against one machine."""

    def __init__(self, machine: "Machine", plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan.validated()
        self.rng = make_rng(plan.seed, "faults")
        stats = machine.system.stats
        self._c_copy_failures = stats.counter("faults.copy_failures_injected")
        self._c_pages_locked = stats.counter("faults.pages_locked")
        self._c_frames_offlined = stats.counter("faults.frames_offlined")
        self._c_windows = stats.counter("faults.windows_opened")
        # Active-window state (lists, because windows may overlap).
        self._copy_fail_rates: list[float] = []
        self._slowdown_multipliers: list[float] = []
        self._jitter_max_ns: list[int] = []
        self._locked_pages: dict[int, list["Page"]] = {}
        self._offlined: dict[int, tuple[int, int]] = {}  # event idx -> (node, frames)
        self._stalled: dict[int, list[str]] = {}
        self._armed = False

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Install hooks and schedule every window edge as a one-shot."""
        if self._armed:
            raise RuntimeError("fault plan is already armed")
        self._armed = True
        system = self.machine.system
        system.migrator.copy_fault_hook = self._should_fail_copy
        now_ns = system.clock.now_ns
        edges: list[tuple[int, int, int, bool]] = []
        for index, event in enumerate(self.plan.events):
            start_ns = int(event.start_s * NANOS_PER_SECOND)
            end_ns = int(event.end_s * NANOS_PER_SECOND)
            # Sort key closes old windows before opening new ones when
            # edges share a deadline (back-to-back windows compose).
            edges.append((end_ns, 0, index, False))
            edges.append((start_ns, 1, index, True))
        for when_ns, __, index, opening in sorted(edges):
            delay_ns = max(1, when_ns - now_ns)
            name = f"fault/{index}/{'start' if opening else 'end'}"
            body = self._edge_body(index, opening)
            self.machine.scheduler.register(
                Daemon(name, delay_ns / NANOS_PER_SECOND, body, one_shot=True)
            )

    def _edge_body(self, index: int, opening: bool):
        event = self.plan.events[index]

        def body(now_ns: int) -> int:
            trace = self.machine.system.trace
            if trace is not None:
                trace.trace_fault_window(index, type(event).__name__, opening)
            if opening:
                self._c_windows.n += 1
                self._open(index, event)
            else:
                self._close(index, event)
            return 0

        return body

    # -- window transitions ------------------------------------------------

    def _open(self, index: int, event: FaultSpec) -> None:
        if isinstance(event, CopyFailures):
            self._copy_fail_rates.append(event.rate)
        elif isinstance(event, PmSlowdown):
            self._slowdown_multipliers.append(event.multiplier)
            self._apply_slowdown()
        elif isinstance(event, CapacityLoss):
            node = self.machine.system.nodes[event.node_id]
            taken = node.take_offline(event.frames)
            self._offlined[index] = (event.node_id, taken)
            self._c_frames_offlined.n += taken
        elif isinstance(event, LockBurst):
            self._lock_burst(index, event)
        elif isinstance(event, DaemonStall):
            self._stall(index, event)
        elif isinstance(event, DaemonJitter):
            self._jitter_max_ns.append(int(event.max_extra_s * NANOS_PER_SECOND))
            self.machine.scheduler.jitter_hook = self._jitter
        else:  # pragma: no cover - plan.validated() rejects unknown specs
            raise TypeError(f"unhandled fault spec {type(event).__name__}")

    def _close(self, index: int, event: FaultSpec) -> None:
        if isinstance(event, CopyFailures):
            self._copy_fail_rates.remove(event.rate)
        elif isinstance(event, PmSlowdown):
            self._slowdown_multipliers.remove(event.multiplier)
            self._apply_slowdown()
        elif isinstance(event, CapacityLoss):
            node_id, taken = self._offlined.pop(index, (event.node_id, 0))
            self.machine.system.nodes[node_id].bring_online(taken)
        elif isinstance(event, LockBurst):
            for page in self._locked_pages.pop(index, ()):
                page.clear(PageFlags.LOCKED)
        elif isinstance(event, DaemonStall):
            scheduler = self.machine.scheduler
            for name in self._stalled.pop(index, ()):
                scheduler.get(name).enabled = True
        elif isinstance(event, DaemonJitter):
            self._jitter_max_ns.remove(int(event.max_extra_s * NANOS_PER_SECOND))
            if not self._jitter_max_ns:
                self.machine.scheduler.jitter_hook = None

    # -- per-fault mechanics ----------------------------------------------

    def _should_fail_copy(self, page: "Page", dest: "NumaNode") -> bool:
        """MigrationEngine hook: does this copy attempt fail?"""
        if not self._copy_fail_rates:
            return False
        miss = 1.0
        for rate in self._copy_fail_rates:
            miss *= 1.0 - rate
        if self.rng.random() < 1.0 - miss:
            self._c_copy_failures.n += 1
            trace = self.machine.system.trace
            if trace is not None:
                trace.trace_fault_copy_fail(page.node_id, page.pfn, dest.node_id)
            return True
        return False

    def _apply_slowdown(self) -> None:
        effective = max(self._slowdown_multipliers, default=1.0)
        self.machine.system.hardware.set_tier_scale(MemoryTier.PM, effective)

    def _lock_burst(self, index: int, event: LockBurst) -> None:
        node = self.machine.system.nodes[event.node_id]
        candidates: list["Page"] = []
        for kind in (ListKind.INACTIVE, ListKind.ACTIVE, ListKind.PROMOTE):
            for is_anon in (True, False):
                for page in node.lruvec.list_for(kind, is_anon):
                    if not page.test(PageFlags.LOCKED):
                        candidates.append(page)
        if not candidates:
            self._locked_pages[index] = []
            return
        if len(candidates) <= event.pages:
            chosen = candidates
        else:
            picks = self.rng.choice(len(candidates), size=event.pages, replace=False)
            chosen = [candidates[i] for i in sorted(int(i) for i in picks)]
        for page in chosen:
            page.set(PageFlags.LOCKED)
        self._c_pages_locked.n += len(chosen)
        self._locked_pages[index] = chosen

    def _stall(self, index: int, event: DaemonStall) -> None:
        stalled = []
        for daemon in self.machine.scheduler.daemons:
            if daemon.one_shot or daemon.name.startswith(_PROTECTED_PREFIXES):
                continue
            if daemon.name.startswith(event.name_prefix) and daemon.enabled:
                daemon.enabled = False
                stalled.append(daemon.name)
        self._stalled[index] = stalled

    def _jitter(self, daemon: Daemon) -> int:
        if daemon.one_shot or daemon.name.startswith(_PROTECTED_PREFIXES):
            return 0
        limit = max(self._jitter_max_ns, default=0)
        if limit <= 0:
            return 0
        return int(self.rng.integers(0, limit))

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """What was actually injected (all counters are virtual-time facts)."""
        stats = self.machine.system.stats
        return {
            "windows_opened": stats.get("faults.windows_opened"),
            "copy_failures_injected": stats.get("faults.copy_failures_injected"),
            "pages_locked": stats.get("faults.pages_locked"),
            "frames_offlined": stats.get("faults.frames_offlined"),
        }


def install_faults(machine: "Machine", plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` against ``machine`` and return the live injector."""
    if machine.system.faults is not None:
        raise RuntimeError("a fault plan is already installed on this machine")
    injector = FaultInjector(machine, plan)
    injector.arm()
    machine.system.faults = injector
    return injector
