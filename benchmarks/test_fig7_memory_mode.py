"""Regenerates Figure 7: Memory-mode comparison at a 4x-DRAM footprint."""

from conftest import run_once

from repro.experiments.fig7_memory_mode import render_fig7, run_fig7


def test_fig7_memory_mode(benchmark, capsys):
    comparisons = run_once(
        benchmark,
        lambda: run_fig7(n_records=4000, ops_per_phase=10_000, pr_scale=11),
    )
    with capsys.disabled():
        print("\n" + render_fig7(comparisons))
    ycsb = {k: v for k, v in comparisons.items() if k.startswith("ycsb-")}
    for name, comparison in ycsb.items():
        mm = comparison.values["memory-mode"]
        mc = comparison.values["multiclock"]
        # Both are comparable and both beat (or at worst match) static on
        # most workloads; Memory-mode and MULTI-CLOCK stay within the
        # same performance class (paper: within single-digit percent; we
        # allow a wider band for the scaled simulator).
        assert mm > 0.9 and mc > 0.9, name
        assert max(mm, mc) / min(mm, mc) < 1.6, name
    # "For PageRank, MULTI-CLOCK outperforms Memory-mode" (exec time:
    # lower is better).
    pr = comparisons["gapbs-pr"]
    assert pr.values["multiclock"] < pr.values["memory-mode"] * 1.02
    assert pr.values["multiclock"] < 1.0  # and beats static
