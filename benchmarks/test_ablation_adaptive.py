"""Regenerates the Section VII adaptive-interval ablation."""

from conftest import run_once

from repro.experiments.ablation_adaptive import (
    render_ablation_adaptive,
    run_ablation_adaptive,
)


def test_ablation_adaptive(benchmark, capsys):
    cells = run_once(
        benchmark, lambda: run_ablation_adaptive(n_records=4000, ops=40_000)
    )
    with capsys.disabled():
        print("\n" + render_ablation_adaptive(cells))
    by_key = {(c.base_interval_s, c.policy): c.result for c in cells}
    good, bad = 0.25, 5.0
    # From a mis-tuned (slow) base, the controller must not hurt and
    # should find promotion work the fixed daemon misses.
    assert (
        by_key[(bad, "multiclock-adaptive")].throughput_ops
        >= by_key[(bad, "multiclock")].throughput_ops * 0.99
    )
    assert (
        by_key[(bad, "multiclock-adaptive")].promotions
        >= by_key[(bad, "multiclock")].promotions
    )
    # From a well-tuned base it stays within a modest band of fixed.
    assert (
        by_key[(good, "multiclock-adaptive")].throughput_ops
        >= by_key[(good, "multiclock")].throughput_ops * 0.8
    )
    # And the well-tuned configuration still beats the mis-tuned one for
    # both variants (sanity of the sweep itself).
    assert (
        by_key[(good, "multiclock")].throughput_ops
        > by_key[(bad, "multiclock")].throughput_ops
    )
