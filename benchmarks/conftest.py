"""Shared helpers for the figure-regeneration benchmark suite.

Every benchmark regenerates one table or figure of the paper at reduced
(but shape-preserving) scale, prints the rendered figure, and asserts the
paper's qualitative claims about it.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark a whole experiment exactly once (they are minutes-long
    at full scale; timing variance across rounds is not the point — the
    figure content is)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def _print_separator(request, capsys):
    yield
    with capsys.disabled():
        print(f"\n[{request.node.name} complete]")
