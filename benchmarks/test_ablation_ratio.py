"""Regenerates the Section VII DRAM:PM ratio ablation."""

from conftest import run_once

from repro.experiments.ablation_ratio import render_ablation_ratio, run_ablation_ratio


def test_ablation_ratio(benchmark, capsys):
    points = run_once(
        benchmark, lambda: run_ablation_ratio(n_records=3000, ops=8000)
    )
    with capsys.disabled():
        print("\n" + render_ablation_ratio(points))
    by_fraction = {p.dram_fraction: p for p in points}
    # Dynamic tiering matters most when DRAM is the scarce tier: the gain
    # at the smallest DRAM share beats the gain at the largest.
    fractions = sorted(by_fraction)
    assert by_fraction[fractions[0]].gain > by_fraction[fractions[-1]].gain
    # With DRAM covering most of the footprint there is little left to
    # win — the gain shrinks toward zero (within noise).
    assert by_fraction[fractions[-1]].gain < 0.25
    # MULTI-CLOCK never collapses below static by more than noise.
    for point in points:
        assert point.gain > -0.15, point
