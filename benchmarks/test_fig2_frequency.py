"""Regenerates Figure 2: single- vs multi-access future frequency."""

from conftest import run_once

from repro.experiments.fig2_frequency import render_fig2, run_fig2


def test_fig2_frequency(benchmark, capsys):
    analyses = run_once(
        benchmark, lambda: run_fig2(pages=1000, segments=24, ops_per_segment=4000)
    )
    with capsys.disabled():
        print("\n" + render_fig2(analyses))
    for name, analysis in analyses.items():
        # "pages that were accessed multiple times in the observation
        # windows are accessed with a much higher frequency on average in
        # the performance windows" — we require at least 1.5x.
        assert analysis.multi_over_single_ratio > 1.5, name
        assert analysis.mean_future("multi") > analysis.mean_future("single"), name
