"""Regenerates the Figure 4 state-machine coverage report."""

from conftest import run_once

from repro.core.state import PageState
from repro.experiments.fig4_transitions import render_fig4, run_fig4


def test_fig4_transitions(benchmark, capsys):
    data = run_once(benchmark, lambda: run_fig4(ops=60_000))
    with capsys.disabled():
        print("\n" + render_fig4(data))
    observed = data["observed_states"]
    # Every live state of Figure 4 must occur during a real run.
    for state in (
        PageState.INACTIVE_UNREFERENCED,
        PageState.INACTIVE_REFERENCED,
        PageState.ACTIVE_UNREFERENCED,
        PageState.ACTIVE_REFERENCED,
        PageState.PROMOTE,
    ):
        assert observed.get(state, 0) > 0, state
    # The MULTI-CLOCK-specific edges fired.
    assert data["promote_list_adds"] > 0  # edge 10
    assert data["promotions"] > 0  # edge 13
    assert data["demotions"] > 0  # edge 3
