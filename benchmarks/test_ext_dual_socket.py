"""Regenerates the dual-socket topology extension experiment."""

from conftest import run_once

from repro.experiments.ext_dual_socket import (
    render_ext_dual_socket,
    run_ext_dual_socket,
)


def test_ext_dual_socket(benchmark, capsys):
    cells = run_once(benchmark, lambda: run_ext_dual_socket(ops=80_000, pages=1800))
    with capsys.disabled():
        print("\n" + render_ext_dual_socket(cells))
    by_key = {(c.topology, c.policy): c.result for c in cells}
    # MULTI-CLOCK beats static on both topologies.
    for topology in ("single-socket", "dual-socket"):
        assert (
            by_key[(topology, "multiclock")].throughput_ops
            > by_key[(topology, "static")].throughput_ops
        ), topology
    # NUMA-aware placement keeps promoted pages local: the multiclock
    # remote share stays tiny even with pinned tenants on both sockets.
    dual_mc = by_key[("dual-socket", "multiclock")]
    remote_share = dual_mc.counters.get("accesses.remote", 0) / max(
        1, dual_mc.counters.get("accesses.total", 0)
    )
    assert remote_share < 0.05
    # Per-node daemons scan in parallel: the dual-socket machine promotes
    # at least as aggressively as the single-socket one.
    assert dual_mc.promotions >= by_key[("single-socket", "multiclock")].promotions
