"""Regenerates Figure 9: re-access percentage of promoted pages."""

from conftest import run_once

from repro.experiments.fig9_reaccess import render_fig9, run_fig9


def test_fig9_reaccess(benchmark, capsys):
    series = run_once(benchmark, lambda: run_fig9(n_records=4000, ops=30_000))
    with capsys.disabled():
        print("\n" + render_fig9(series))
    multiclock = series["multiclock"]
    nimble = series["nimble"]
    # "pages promoted by MULTI-CLOCK have [a] higher re-access percentage
    # than Nimble" — the paper reports ~15 percentage points.
    assert multiclock.overall_percentage > nimble.overall_percentage + 10.0
    # And the percentages are sane.
    assert 0.0 < nimble.overall_percentage <= 100.0
    assert 0.0 < multiclock.overall_percentage <= 100.0
