"""Regenerates the Section V-F overhead accounting table."""

from conftest import run_once

from repro.experiments.overhead import render_overhead, run_overhead


def test_overhead_accounting(benchmark, capsys):
    rows = run_once(benchmark, lambda: run_overhead(n_records=3000, ops=10_000))
    with capsys.disabled():
        print("\n" + render_overhead(rows))
    by_policy = {row.policy: row for row in rows}
    static = by_policy["static"]
    multiclock = by_policy["multiclock"]
    # Static tiering does no background work at all.
    assert static.system_percent == 0.0
    assert static.promotions == 0 and static.demotions == 0
    # MULTI-CLOCK pays a real but bounded overhead...
    assert 0.0 < multiclock.system_percent < 30.0
    assert multiclock.promotions > 0
    # ... and "MULTI-CLOCK's benefit will surpass the migration overhead"
    # for this memory-intensive workload.
    assert multiclock.throughput_ops > static.throughput_ops
    # The hint-fault trackers pay for tracking with faults; CLOCK-based
    # policies never take hint faults.
    assert by_policy["autotiering-cpm"].hint_faults > 0
    assert multiclock.hint_faults == 0
