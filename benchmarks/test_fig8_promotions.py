"""Regenerates Figure 8: pages promoted per window, MULTI-CLOCK vs Nimble."""

from conftest import run_once

from repro.experiments.fig8_promotions import render_fig8, run_fig8


def test_fig8_promotions(benchmark, capsys):
    series = run_once(benchmark, lambda: run_fig8(n_records=4000, ops=30_000))
    with capsys.disabled():
        print("\n" + render_fig8(series))
    multiclock = series["multiclock"]
    nimble = series["nimble"]
    # Both policies promote pages...
    assert multiclock.total > 0
    assert nimble.total > 0
    # ... but "Nimble promotes more pages than MULTI-CLOCK" (the paper's
    # Fig 8 observation, by a clear margin).
    assert nimble.total > 1.3 * multiclock.total
