"""Regenerates Figure 5: YCSB throughput normalized to static tiering."""

from conftest import run_once

from repro.experiments.fig5_ycsb import render_fig5, run_fig5


def test_fig5_ycsb(benchmark, capsys):
    comparisons = run_once(
        benchmark, lambda: run_fig5(n_records=3000, ops_per_phase=6000)
    )
    with capsys.disabled():
        print("\n" + render_fig5(comparisons))
    for phase, comparison in comparisons.items():
        values = comparison.values
        # "MULTI-CLOCK outperforms static tiering, Nimble, AT-CPM, and
        # AT-OPM for all the workloads."
        assert values["multiclock"] > 1.0, phase
        assert values["multiclock"] > values["nimble"], phase
        assert values["multiclock"] > values["autotiering-cpm"], phase
        assert values["multiclock"] > values["autotiering-opm"], phase
    # "MULTI-CLOCK achieves the maximum throughput gain in Workload D" —
    # D must be at or near the top of the per-workload gains.
    gains = {phase: c.values["multiclock"] for phase, c in comparisons.items()}
    top_two = sorted(gains, key=gains.get, reverse=True)[:2]
    assert "D" in top_two, gains
    # The D gain is substantial (paper: +132%; we require > +50%).
    assert gains["D"] > 1.5
