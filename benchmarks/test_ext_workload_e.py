"""Regenerates the workload-E extension experiment."""

from conftest import run_once

from repro.experiments.ext_workload_e import render_ext_workload_e, run_ext_workload_e


def test_ext_workload_e(benchmark, capsys):
    comparison = run_once(
        benchmark, lambda: run_ext_workload_e(n_records=3000, ops=4000)
    )
    with capsys.disabled():
        print("\n" + render_ext_workload_e(comparison))
    values = comparison.values
    # Scan-dominated, weak-locality access: static tiering wins, exactly
    # as the paper's Section V-C1 locality argument predicts.
    assert values["static"] >= max(v for k, v in values.items() if k != "static")
    # MULTI-CLOCK's selectivity keeps it the best dynamic policy.
    assert values["multiclock"] > values["nimble"]
    # Nothing collapses: scans are still served, mostly from PM.
    assert min(values.values()) > 0.3
