"""Smoke test for the benchmark harness (not part of tier-1 pytest).

Run with:  PYTHONPATH=src python -m pytest benchmarks/perf -q

Asserts the suite runs end to end, writes well-formed JSON, and that the
batched driver is both correct (bit-identical to the per-access loop)
and meaningfully faster.  The speedup floor here is deliberately below
the full benchmark's >=3x so a noisy CI host doesn't flake; the real
number is recorded in BENCH_perf.json.
"""

from __future__ import annotations

import json

from repro import bench


def test_smoke_suite_writes_results(tmp_path):
    results = bench.run_suite(smoke=True, repeats=1)
    out = tmp_path / "BENCH_perf.json"
    bench.write_results(results, str(out))

    on_disk = json.loads(out.read_text())
    assert on_disk["meta"]["mode"] == "smoke"
    touch = on_disk["touch"]
    assert touch["identical"] is True
    assert touch["per_access_ops_per_sec"] > 0
    assert touch["batched_ops_per_sec"] > 0
    assert touch["speedup"] >= 1.5, "batched driver lost its edge"
    assert on_disk["kpromoted"]["pages_per_sec"] > 0
    assert on_disk["ycsb_a"]["wall_seconds"] > 0
    assert on_disk["ycsb_a"]["accesses"] > 0
    trace = on_disk["trace"]
    # Tracing must not perturb the simulation at all (counters + clocks),
    # and an armed tracer should cost well under 2x even on a noisy host
    # (the recorded full-size number is far lower).
    assert trace["identical"] is True
    assert trace["events_emitted"] > 0
    assert trace["overhead"] < 2.0, "tracepoint layer got expensive"
    sweep = on_disk["sweep"]
    # The pool shares workload construction across cells, so it must not
    # lose to the naive sequential loop even on a single-core host; a
    # warm-cache re-run serves every cell without forking anything.
    assert sweep["identical"] is True
    assert sweep["parallel_s"] <= sweep["sequential_s"], "pool lost to sequential"
    assert sweep["cached_rerun_workers"] == 0
    assert sweep["cached_rerun_seconds"] < sweep["parallel_s"]
