#!/usr/bin/env python
"""Run the hot-path microbenchmarks and write BENCH_perf.json.

Thin driver over :mod:`repro.bench` for running straight from a checkout:

    PYTHONPATH=src python benchmarks/perf/run.py [--smoke] [--out PATH]

Equivalent to ``python -m repro bench``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro import bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized workloads")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=bench.DEFAULT_OUT)
    args = parser.parse_args()
    results = bench.run_suite(smoke=args.smoke, repeats=args.repeats)
    bench.write_results(results, args.out)
    print(bench.render(results))
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
