"""Regenerates Figure 1: the sampled-page access heatmaps."""

from conftest import run_once

from repro.experiments.fig1_heatmaps import render_fig1, run_fig1


def test_fig1_heatmaps(benchmark, capsys):
    heatmaps = run_once(
        benchmark, lambda: run_fig1(pages=1000, segments=24, ops_per_segment=4000)
    )
    with capsys.disabled():
        print("\n" + render_fig1(heatmaps))
    assert set(heatmaps) == {"rubis", "specpower", "xalan", "lusearch"}
    for name, heatmap in heatmaps.items():
        counts = heatmap.class_counts()
        # The paper's observation: all three page populations coexist in
        # every workload's heatmap.
        assert counts["dram_friendly"] > 0, name
        assert counts["tier_friendly"] > 0, name
        assert counts["rare"] > 0, name
        assert heatmap.counts.shape == (50, 24)
