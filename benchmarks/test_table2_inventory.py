"""Regenerates the Table II analogue: the reproduction's module inventory."""

from conftest import run_once

from repro.experiments.table2_inventory import render_table2, run_table2


def test_table2_inventory(benchmark, capsys):
    rows = run_once(benchmark, run_table2)
    with capsys.disabled():
        print("\n" + render_table2())
    paths = {name for name, __, __t in rows}
    # The inventory must cover every subsystem DESIGN.md promises.
    for needle in (
        "repro/core/multiclock.py",
        "repro/core/kpromoted.py",
        "repro/mm/vmscan.py",
        "repro/mm/swap.py",
        "repro/policies/nimble.py",
        "repro/policies/autotiering.py",
        "repro/policies/memory_mode.py",
        "repro/workloads/ycsb.py",
        "repro/workloads/gapbs/pagerank.py",
    ):
        assert needle in paths, needle
    total_code = sum(code for __, code, __t in rows)
    assert total_code > 3000  # a real system, not a sketch
