"""Regenerates the Section VII dirtiness-weighted placement ablation."""

from conftest import run_once

from repro.experiments.ablation_dirty import render_ablation_dirty, run_ablation_dirty


def test_ablation_dirty(benchmark, capsys):
    rows = run_once(benchmark, lambda: run_ablation_dirty(n_records=3000, ops=12_000))
    with capsys.disabled():
        print("\n" + render_ablation_dirty(rows))
    by_phase = {row.phase: row for row in rows}
    # The weighted variant stays in the same performance class as the
    # baseline on both workloads (the extension refines, not rewrites).
    for phase, row in by_phase.items():
        assert row.gain() > -0.25, phase
    # On the read-only workload the variant skips clean candidates under
    # contention: far fewer promotions at only a small throughput cost —
    # the migration savings nearly pay for the lost read placement.
    read_only = by_phase["C"]
    assert (
        read_only.results["multiclock-rw"].promotions
        < read_only.results["multiclock"].promotions
    )
    assert read_only.gain() > -0.1
    # The binary rule's cost shows up downstream (W inherits C's
    # under-promotion debt) — the reason §VII asks for a *weighted
    # formula* rather than a gate.  Both variants still function.
    assert by_phase["W"].results["multiclock-rw"].throughput_ops > 0
