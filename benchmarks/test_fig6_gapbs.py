"""Regenerates Figure 6: GAPBS normalized execution time."""

from conftest import run_once

from repro.experiments.fig6_gapbs import GAPBS_KERNEL_ORDER, render_fig6, run_fig6


def test_fig6_gapbs(benchmark, capsys):
    comparisons = run_once(
        benchmark, lambda: run_fig6(scale_exp=11, edge_factor=8, trials=3)
    )
    with capsys.disabled():
        print("\n" + render_fig6(comparisons))
    assert set(comparisons) == set(GAPBS_KERNEL_ORDER)
    multiclock_wins_vs_nimble = 0
    for kernel, comparison in comparisons.items():
        values = comparison.values
        # "MULTI-CLOCK outperforms static tiering ... for the GAPBS
        # workloads" (normalized execution time below 1).
        assert values["multiclock"] < 1.0, kernel
        if values["multiclock"] <= values["nimble"]:
            multiclock_wins_vs_nimble += 1
    # MULTI-CLOCK beats Nimble on (nearly) every kernel; the paper's
    # margins are 1-16%, so allow one kernel of seed noise.
    assert multiclock_wins_vs_nimble >= len(comparisons) - 1
    # GAPBS gaps are smaller than YCSB's: static remains competitive, so
    # MULTI-CLOCK's best kernel should not be more than ~4x faster.
    assert min(c.values["multiclock"] for c in comparisons.values()) > 0.25
