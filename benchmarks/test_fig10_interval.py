"""Regenerates Figure 10: scanning-interval sensitivity."""

from conftest import run_once

from repro.experiments.fig10_interval import render_fig10, run_fig10


def test_fig10_interval(benchmark, capsys):
    sweeps = run_once(benchmark, lambda: run_fig10(n_records=3000, ops=8000))
    with capsys.disabled():
        print("\n" + render_fig10(sweeps))
    multiclock = {i: r.throughput_ops for i, r in sweeps["multiclock"].items()}
    nimble = {i: r.throughput_ops for i, r in sweeps["nimble"].items()}
    intervals = sorted(multiclock)
    best = max(multiclock, key=multiclock.get)
    # The optimum is interior: neither the most frequent nor the rarest
    # scanning wins (the Fig 10 U-shape).
    assert best not in (intervals[0], intervals[-1]), multiclock
    # "For larger scan intervals above 5s, we do not observe much
    # difference due to the lag in the reaction time."
    assert abs(multiclock[60.0] - multiclock[5.0]) / multiclock[5.0] < 0.15
    # "overall MULTI-CLOCK performs better when compared to Nimble" in
    # the useful interval range.
    useful = [i for i in intervals if 0.1 <= i <= 1.0]
    wins = sum(1 for i in useful if multiclock[i] > nimble[i])
    assert wins >= len(useful) - 1
