"""Regenerates Table I from the policy registry metadata."""

from conftest import run_once

from repro.experiments.table1_features import render_table1, run_table1


def test_table1_features(benchmark, capsys):
    rows = run_once(benchmark, run_table1)
    with capsys.disabled():
        print("\n" + render_table1())
    systems = {row["tiering"] for row in rows}
    for expected in (
        "Static-Tiering",
        "AutoNUMA-Tiering",
        "AutoTiering (CPM)",
        "AutoTiering (OPM)",
        "Nimble",
        "MULTI-CLOCK",
    ):
        assert expected in systems
    # The paper's Table I discriminators.
    by_name = {row["tiering"]: row for row in rows}
    assert by_name["MULTI-CLOCK"]["selection_promotion"] == "Recency + Frequency"
    assert by_name["MULTI-CLOCK"]["page_access_tracking"] == "Reference Bit"
    assert by_name["MULTI-CLOCK"]["space_overhead"] == "No"
    assert by_name["Nimble"]["selection_promotion"] == "Recency"
    assert by_name["AutoTiering (CPM)"]["page_access_tracking"] == "Software Page Fault"
    assert by_name["AutoTiering (OPM)"]["selection_demotion"] == "Frequency"
    # MULTI-CLOCK renders last, as in the paper.
    assert rows[-1]["tiering"] == "MULTI-CLOCK"
