#!/usr/bin/env bash
# CI entry point: tier-1 tests, bench-harness smoke test, then a smoke
# run of the microbenchmarks themselves (writes BENCH_perf.json to a
# scratch path so CI never clobbers the committed full-run results).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench harness smoke test =="
python -m pytest benchmarks/perf -q

echo "== repro bench --smoke =="
python -m repro bench --smoke --repeats 1 --out "$(mktemp -d)/BENCH_perf.json"

echo "== chaos smoke (2 policies x 1 workload under faults) =="
python -m repro chaos --policies multiclock,static --workload zipf \
    --pages 600 --ops 4000 --dram-pages 256 --pm-pages 2048 \
    --interval 0.002 --out "$(mktemp -d)/CHAOS_report.json"

echo "== trace smoke (run -> export -> audit) =="
TRACE_TMP="$(mktemp -d)"
python -m repro trace --workload zipf --pages 600 --ops 4000 \
    --dram-pages 256 --pm-pages 2048 --interval 0.002 --no-summary \
    --ndjson "$TRACE_TMP/events.ndjson" --perfetto "$TRACE_TMP/events.json" \
    --audit
test -s "$TRACE_TMP/events.ndjson"

echo "== invariant checker against a clean run =="
python -m repro check --workload shifting-hotset --pages 800 --ops 6000 \
    --dram-pages 256 --pm-pages 2048 --interval 0.002 --strict

echo "CI OK"
