#!/usr/bin/env bash
# CI entry point: tier-1 tests, bench-harness smoke test, then a smoke
# run of the microbenchmarks themselves (writes BENCH_perf.json to a
# scratch path so CI never clobbers the committed full-run results).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench harness smoke test =="
python -m pytest benchmarks/perf -q

echo "== repro bench --smoke =="
BENCH_TMP="$(mktemp -d)"
python -m repro bench --smoke --repeats 1 --out "$BENCH_TMP/BENCH_perf.json"

echo "== pagestore smoke (SoA array driver vs recorded baseline) =="
python - <<'PYEOF'
import json
from repro.machine import Machine
from repro.run import run_numeric_stream
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

recorded = json.load(open("tests/data/baseline_runresults.json"))
config = SimulationConfig(
    dram_pages=(512,), pm_pages=(4096,), swap_pages=1 << 20,
    daemons=DaemonConfig(kpromoted_interval_s=0.002,
                         kswapd_interval_s=0.001,
                         hint_scan_interval_s=0.002),
    seed=7,
)
workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
stream = list(workload.numeric_batches())
result = run_numeric_stream(workload, config, stream, "autonuma")
got = {
    "operations": result.operations, "accesses": result.accesses,
    "elapsed_ns": result.elapsed_ns, "app_ns": result.app_ns,
    "system_ns": result.system_ns, "ops_fallback": result.ops_fallback,
    "counters": dict(sorted(result.counters.items())),
}
assert got == recorded["autonuma"], "SoA array driver diverged from baseline"
print("SoA array driver is bit-identical to the recorded autonuma baseline")
PYEOF

echo "== bench guard (batched touch must not regress below the floor) =="
python - "$BENCH_TMP/BENCH_perf.json" <<'PYEOF'
import json
import sys

# The committed full-run batched-touch throughput before the SoA
# vectorized driver landed; even the smoke-sized run clears it by an
# order of magnitude, so dipping below means the fast path fell off.
FLOOR = 1_455_757

# The columnar deactivate scan measures ~3.4M pages/s at smoke size
# (scalar reference: ~135k); a floor 10x under that still sits well
# above the scalar loop, so tripping it means the vector guard stopped
# taking the fast path.
DEACTIVATE_FLOOR = 300_000

bench = json.load(open(sys.argv[1]))
touch = bench["touch"]
assert touch["identical"] is True, f"touch drivers diverged: {touch}"
rate = touch["batched_ops_per_sec"]
assert rate >= FLOOR, (
    f"batched touch regressed: {rate:,.0f} ops/s < floor {FLOOR:,} ops/s"
)
print(f"batched touch {rate:,.0f} ops/s >= floor {FLOOR:,} ops/s")

deact = bench["deactivate"]
assert deact["identical"] is True, f"deactivate paths diverged: {deact}"
drate = deact["vector_pages_per_sec"]
assert drate >= DEACTIVATE_FLOOR, (
    f"vector deactivate regressed: {drate:,.0f} pages/s"
    f" < floor {DEACTIVATE_FLOOR:,} pages/s"
)
print(f"vector deactivate {drate:,.0f} pages/s >= floor {DEACTIVATE_FLOOR:,}"
      f" pages/s (scalar {deact['scalar_pages_per_sec']:,.0f},"
      f" speedup {deact['speedup']}x)")

journal = bench["journal"]
assert journal["identical"] is True, f"journal-armed sweep diverged: {journal}"
assert journal["journal_events"] > 0, journal
print(f"span journal is a measured nop: {journal['journal_events']} events, "
      f"overhead {journal['overhead']}x, identical=True")
PYEOF

echo "== chaos smoke (2 policies x 1 workload under faults) =="
python -m repro chaos --policies multiclock,static --workload zipf \
    --pages 600 --ops 4000 --dram-pages 256 --pm-pages 2048 \
    --interval 0.002 --out "$(mktemp -d)/CHAOS_report.json"

echo "== sweep smoke (2 workers == sequential; forced crash retried) =="
SWEEP_TMP="$(mktemp -d)"
SWEEP_ARGS=(--policies static,multiclock --workload zipf
            --pages 400 --ops 3000 --dram-pages 128 --pm-pages 1024
            --interval 0.002)
python -m repro sweep "${SWEEP_ARGS[@]}" --workers 2 \
    --out "$SWEEP_TMP/par.json" >/dev/null 2>&1
python -m repro sweep "${SWEEP_ARGS[@]}" --workers 1 --no-cache \
    --out "$SWEEP_TMP/seq.json" >/dev/null 2>&1
cmp "$SWEEP_TMP/par.json" "$SWEEP_TMP/seq.json"
python - "$SWEEP_TMP" <<'PYEOF'
import sys
from repro.sweep import SweepCell, SweepSpec, run_sweep

marker = sys.argv[1] + "/crash.marker"
spec = SweepSpec(name="ci-crash", cells=(
    SweepCell("boom", "flaky",
              {"marker": marker, "mode": "exit", "payload": "recovered"}),
))
result = run_sweep(spec, workers=2)
assert result.ok and result.outcomes[0].attempts == 2, result.outcomes
print("forced worker crash was retried and healed")
PYEOF

echo "== sweep perf smoke (pool beats sequential; cached re-run is free) =="
python - <<'PYEOF'
from repro.bench import bench_sweep

# Cells sized so the pool's fork-and-pipe overhead is well below the
# per-cell work; smaller cells made this comparison a coin flip on a
# busy single-core host.
r = bench_sweep(pages=1500, ops=20_000)
assert r["identical"], f"pool results diverged from sequential: {r}"
assert r["parallel_s"] <= r["sequential_s"], (
    f"2-worker pool slower than sequential: {r}"
)
assert r["cached_rerun_workers"] == 0, (
    f"cached re-run spawned child processes: {r}"
)
assert r["cached_rerun_seconds"] < r["parallel_s"], f"warm cache not faster: {r}"
print(f"pool {r['parallel_s']}s vs sequential {r['sequential_s']}s "
      f"(speedup {r['speedup']}x); cached re-run {r['cached_rerun_seconds']}s "
      f"with 0 workers spawned")
PYEOF
cp "$SWEEP_TMP/par.json" "$SWEEP_TMP/par.first.json"
python -m repro sweep "${SWEEP_ARGS[@]}" --workers 2 \
    --out "$SWEEP_TMP/par.json" > "$SWEEP_TMP/rerun.out" 2>/dev/null
grep -q "0 worker(s) spawned" "$SWEEP_TMP/rerun.out"
cmp "$SWEEP_TMP/par.json" "$SWEEP_TMP/par.first.json"
echo "cached CLI re-run: byte-identical report, zero workers spawned"

echo "== distributed sweep smoke (2 loopback agents == sequential) =="
python -m repro sweep "${SWEEP_ARGS[@]}" --no-cache \
    --hosts loopback,loopback --heartbeat-s 1 \
    --out "$SWEEP_TMP/remote.json" >/dev/null 2>&1
cmp "$SWEEP_TMP/remote.json" "$SWEEP_TMP/seq.json"
test -s "$SWEEP_TMP/remote.json.hosts.json"
echo "2-host loopback sweep: byte-identical report, host sidecar written"

echo "== distributed sweep fault smoke (agent killed mid-run heals, journal armed) =="
python - "$(mktemp -d)" <<'PYEOF'
import sys
from repro.obs import (Journal, SweepObserver, pair_spans, read_journal,
                       timeline_records)
from repro.sweep import SweepCell, SweepSpec, run_remote_sweep, run_sweep

tmp = sys.argv[1]
marker = tmp + "/killed.marker"
cells = [
    SweepCell(f"c{i}", "flaky",
              {"mode": "sleep", "sleep_s": 0.05, "payload": f"p{i}"})
    for i in range(8)
]
cells.insert(3, SweepCell("killer", "flaky",
                          {"mode": "kill-agent", "marker": marker,
                           "payload": "recovered"}))
spec = SweepSpec(name="ci-kill-agent", cells=tuple(cells))
sequential = run_sweep(spec, workers=1)
journal_path = tmp + "/sweep.journal.ndjson"
obs = SweepObserver(journal=Journal(journal_path))
remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.5,
                          reconnect_attempts=2, obs=obs)
obs.close("done")
assert remote.ok, [o.error for o in remote.outcomes if not o.ok]
assert remote.payloads() == sequential.payloads(), "results diverged"

# The journal must tell the same story: the killed host's cell.run span
# and its re-run elsewhere share the cell id, the cell commits once,
# and the merged timeline shows the whole fleet (driver + 2 hosts).
events = read_journal(journal_path)
runs = [s for s in pair_spans(events)
        if s.span == "cell.run" and s.cell == "killer"]
assert len(runs) >= 2 and any(s.aborted for s in runs), runs
commits = [e for e in events if e["ev"] == "point"
           and e["span"] == "commit" and e.get("cell") == "killer"]
assert len(commits) == 1, commits
_, lanes = timeline_records(events)
assert lanes >= 3, f"expected >=3 timeline lanes, got {lanes}"
print("agent SIGKILLed mid-sweep: every cell re-dispatched and completed, "
      "results identical to sequential; journal shows the re-run "
      f"({len(runs)} cell.run spans, 1 commit, {lanes} timeline lanes)")
PYEOF

echo "== observability smoke (journal -> top -> timeline -> byte-identity) =="
OBS_TMP="$(mktemp -d)"
python -m repro sweep "${SWEEP_ARGS[@]}" --no-cache \
    --hosts loopback,loopback --heartbeat-s 1 --journal \
    --out "$OBS_TMP/armed.json" >/dev/null 2>&1
python -m repro top "$OBS_TMP/armed.json" --once | grep -q "done 2"
python -m repro timeline "$OBS_TMP/armed.json" \
    --out "$OBS_TMP/trace.json" >/dev/null
python - "$OBS_TMP" <<'PYEOF'
import json, sys

tmp = sys.argv[1]
trace = json.load(open(tmp + "/trace.json"))  # perfetto export is JSON
lanes = {r["pid"] for r in trace["traceEvents"]}
assert len(lanes) >= 3, f"expected >=3 lanes, got {len(lanes)}"
report = json.load(open(tmp + "/armed.json"))
profile = report.pop("profile")
timing = report.pop("timing")
assert profile["coverage"] >= 0.95, profile
assert timing == sorted(timing, key=lambda r: (r["cell"], r["attempt"]))
with open(tmp + "/stripped.json", "w") as fh:
    json.dump(report, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"timeline has {len(lanes)} lanes; profile covers "
      f"{100 * profile['coverage']:.1f}% of measured wall")
PYEOF
cmp "$OBS_TMP/stripped.json" "$SWEEP_TMP/seq.json"
echo "journal-armed report minus timing/profile is byte-identical to journal-off"

echo "== trace smoke (run -> export -> audit) =="
TRACE_TMP="$(mktemp -d)"
python -m repro trace --workload zipf --pages 600 --ops 4000 \
    --dram-pages 256 --pm-pages 2048 --interval 0.002 --no-summary \
    --ndjson "$TRACE_TMP/events.ndjson" --perfetto "$TRACE_TMP/events.json" \
    --audit
test -s "$TRACE_TMP/events.ndjson"

echo "== invariant checker against a clean run =="
python -m repro check --workload shifting-hotset --pages 800 --ops 6000 \
    --dram-pages 256 --pm-pages 2048 --interval 0.002 --strict

echo "== metrics smoke (stat -> prometheus -> html dashboard -> nop check) =="
METRICS_TMP="$(mktemp -d)"
METRICS_ARGS=(--workload zipf --pages 600 --ops 4000
              --dram-pages 256 --pm-pages 2048 --interval 0.002)
python -m repro stat "${METRICS_ARGS[@]}" | grep -q node0_nr_free_pages
python -m repro stat "${METRICS_ARGS[@]}" --prometheus \
    | grep -q '^repro_nr_free_pages{node="0",tier="DRAM"}'
python -m repro stat "${METRICS_ARGS[@]}" --json \
    | python -c "import json,sys; s=json.load(sys.stdin); assert s['meta']['samples']>0"
python -m repro report "${METRICS_ARGS[@]}" --html \
    --out "$METRICS_TMP/REPORT.html" >/dev/null
grep -q "<svg" "$METRICS_TMP/REPORT.html"
python - <<'PYEOF'
from repro.bench import bench_metrics

result = bench_metrics(20_000, pages=1500, repeats=1)
assert result["identical"], "metrics-armed run diverged from metrics-off"
assert result["samples"] > 0 and result["observations"] > 0, result
print(f"metrics are a measured nop: {result['samples']} samples, "
      f"{result['observations']} observations, identical=True")
PYEOF

echo "== colocation smoke (3 tenants, memcg armed, OOM kill + co-tenants survive) =="
COLO_TMP="$(mktemp -d)"
COLO_ARGS=(--tenants 3 --records 600 --ops 1500
           --dram-pages 96 --pm-pages 300 --swap-pages 16
           --limits none,80,none --seed 7)
# Tight swap pins the limited tenant over its cap at the crunch, so the
# OOM killer selects it; the other two must run to completion.
python -m repro colo "${COLO_ARGS[@]}" --vmstat > "$COLO_TMP/colo.txt"
grep -q "KILLED" "$COLO_TMP/colo.txt"
grep -q "2/3 tenants finished" "$COLO_TMP/colo.txt"
grep -q "1 OOM group kill" "$COLO_TMP/colo.txt"
# p50/p99 reach all four exposition formats: vmstat ...
grep -q "tenant_tenant0_latency_ns_p99" "$COLO_TMP/colo.txt"
# ... Prometheus ...
python -m repro colo "${COLO_ARGS[@]}" --prometheus \
    | grep -q '^repro_tenant_tenant0_latency_ns_p50'
# ... JSON snapshot ...
python -m repro colo "${COLO_ARGS[@]}" \
    --snapshot "$COLO_TMP/colo_snap.json" > /dev/null
python - "$COLO_TMP/colo_snap.json" <<'PYEOF'
import json, sys

snapshot = json.load(open(sys.argv[1]))
hists = snapshot["histograms"]
for tenant in ("tenant0", "tenant2"):  # the survivors
    data = hists[f"tenant_{tenant}_latency_ns"]
    assert data["count"] > 0 and data["p50"] is not None, (tenant, data)
    assert data["p99"] >= data["p50"], (tenant, data)
print("snapshot carries per-tenant p50/p99 for every survivor")
PYEOF
# ... and the HTML dashboard, via the save -> report round trip.
python -m repro report --snapshot "$COLO_TMP/colo_snap.json" \
    --out "$COLO_TMP/colo.html" >/dev/null
grep -q "tenant_tenant0_latency_ns" "$COLO_TMP/colo.html"
grep -q "<svg" "$COLO_TMP/colo.html"

echo "CI OK"
