"""Result-cache properties: hits spawn no work, manifest resume wins,
corruption degrades to a live run, and failures never poison the cache."""

import os

from repro.sweep import (
    ResultCache,
    SweepCell,
    SweepSpec,
    cell_fingerprint,
    register_runner,
    run_sweep,
)


@register_runner("test-cache-log")
def _cache_log(params):
    # One line per execution — proof of whether the cache served us.
    with open(params["log"], "a", encoding="utf-8") as fh:
        fh.write(f"{params['value']}\n")
    return {"value": params["value"]}


def _log_lines(log_path):
    try:
        with open(log_path, "r", encoding="utf-8") as fh:
            return fh.read().splitlines()
    except FileNotFoundError:
        return []


def _grid(tmp_path, n=3):
    log = str(tmp_path / "invocations.log")
    return log, SweepSpec(
        "cached-grid",
        tuple(
            SweepCell(f"cell{i}", "test-cache-log", {"log": log, "value": i})
            for i in range(n)
        ),
    )


def test_cache_hit_serves_payload_without_spawning_workers(tmp_path):
    log, spec = _grid(tmp_path)
    cache_dir = str(tmp_path / "cache")

    cold = run_sweep(spec, workers=2, cache_dir=cache_dir)
    assert cold.ok
    assert cold.spawned_workers > 0
    assert len(_log_lines(log)) == 3

    warm = run_sweep(spec, workers=2, cache_dir=cache_dir)
    assert warm.ok
    assert warm.spawned_workers == 0  # every cell was a fingerprint hit
    assert len(_log_lines(log)) == 3  # nothing re-ran
    assert all(o.cached for o in warm.outcomes)
    assert warm.payloads() == cold.payloads()


def test_cache_is_shared_across_grid_names_and_cell_ids(tmp_path):
    # The fingerprint digests runner + params only, so a renamed grid
    # with renumbered cell ids still hits the same entries.
    log, spec = _grid(tmp_path)
    cache_dir = str(tmp_path / "cache")
    run_sweep(spec, cache_dir=cache_dir)

    renamed = SweepSpec(
        "other-grid",
        tuple(
            SweepCell(f"renamed{i}", cell.runner, cell.params)
            for i, cell in enumerate(spec.cells)
        ),
    )
    warm = run_sweep(renamed, cache_dir=cache_dir)
    assert warm.ok
    assert warm.spawned_workers == 0
    assert len(_log_lines(log)) == 3


def test_manifest_resume_takes_precedence_over_cache(tmp_path):
    log, spec = _grid(tmp_path)
    cache_dir = str(tmp_path / "cache")
    manifest = str(tmp_path / "manifest.json")

    first = run_sweep(spec, manifest_path=manifest, cache_dir=cache_dir)
    assert first.ok

    resumed = run_sweep(
        spec, manifest_path=manifest, resume=True, cache_dir=cache_dir
    )
    assert resumed.ok
    assert resumed.spawned_workers == 0
    assert len(_log_lines(log)) == 3
    # All three were in the manifest, so they report as resumed — the
    # cache never got a look-in.
    assert all(o.resumed and not o.cached for o in resumed.outcomes)
    assert all(o.attempts == 1 for o in resumed.outcomes)


def test_corrupted_cache_entry_falls_back_to_a_live_run(tmp_path):
    log, spec = _grid(tmp_path, n=2)
    cache_dir = str(tmp_path / "cache")
    run_sweep(spec, cache_dir=cache_dir)
    assert len(_log_lines(log)) == 2

    key0 = cell_fingerprint(spec.cells[0])
    key1 = cell_fingerprint(spec.cells[1])
    path0 = os.path.join(cache_dir, f"{key0}.json")
    path1 = os.path.join(cache_dir, f"{key1}.json")
    with open(path0, "w", encoding="utf-8") as fh:
        fh.write("{ this is not json")  # corrupted
    with open(path1, "w", encoding="utf-8") as fh:
        fh.write("")  # truncated

    rerun = run_sweep(spec, cache_dir=cache_dir)
    assert rerun.ok  # degraded to live runs, never an abort
    assert not any(o.cached for o in rerun.outcomes)
    assert len(_log_lines(log)) == 4  # both cells executed again
    # The live runs repaired the entries.
    assert ResultCache(cache_dir).load(key0)["payload"] == {"value": 0}
    assert ResultCache(cache_dir).load(key1)["payload"] == {"value": 1}


def test_cache_entry_with_wrong_fingerprint_is_a_miss(tmp_path):
    log, spec = _grid(tmp_path, n=1)
    cache_dir = str(tmp_path / "cache")
    key = cell_fingerprint(spec.cells[0])
    cache = ResultCache(cache_dir)
    # A hand-copied file whose recorded fingerprint doesn't match its key.
    cache.store("0" * 64, cell_id="x", attempts=1, payload={"value": 99})
    os.replace(
        os.path.join(cache_dir, "0" * 64 + ".json"),
        os.path.join(cache_dir, f"{key}.json"),
    )
    result = run_sweep(spec, cache_dir=cache_dir)
    assert result.ok
    assert not result.outcomes[0].cached
    assert result.payloads() == {"cell0": {"value": 0}}


def test_factory_cells_with_live_objects_are_never_cached(tmp_path):
    log = str(tmp_path / "invocations.log")
    cache_dir = str(tmp_path / "cache")
    # A lambda in params makes the cell's fingerprint undefined (None):
    # it cannot be content-addressed, so it must run live every time.
    spec = SweepSpec(
        "factory",
        (
            SweepCell(
                "live", "test-cache-log",
                {"log": log, "value": 7, "factory": lambda: None},
            ),
        ),
    )
    assert cell_fingerprint(spec.cells[0]) is None
    run_sweep(spec, cache_dir=cache_dir)
    run_sweep(spec, cache_dir=cache_dir)
    assert len(_log_lines(log)) == 2  # executed both times
    assert os.listdir(cache_dir) == []  # nothing was stored


def test_worker_hard_death_mid_cell_leaves_cache_untouched(tmp_path):
    # Models an OOM kill: the worker dies between starting the cell and
    # reporting a result.  Only the *parent* writes cache entries, and
    # only after harvesting a success, so the cache must stay empty.
    cache_dir = str(tmp_path / "cache")
    spec = SweepSpec(
        "oom", (SweepCell("victim", "flaky", {"mode": "exit"}),)
    )
    result = run_sweep(spec, cache_dir=cache_dir, max_attempts=2)
    assert not result.ok
    assert os.listdir(cache_dir) == []

    rerun = run_sweep(spec, cache_dir=cache_dir, max_attempts=1)
    assert not rerun.outcomes[0].cached  # no stale success to be served
    assert rerun.spawned_workers > 0


def test_only_successes_are_cached_failures_always_rerun(tmp_path):
    log = str(tmp_path / "invocations.log")
    cache_dir = str(tmp_path / "cache")
    marker = str(tmp_path / "heal.marker")
    spec = SweepSpec(
        "mixed",
        (
            SweepCell("heals", "flaky",
                      {"marker": marker, "mode": "exit", "payload": "recovered"}),
            SweepCell("fine", "test-cache-log", {"log": log, "value": 1}),
        ),
    )
    first = run_sweep(spec, cache_dir=cache_dir)
    assert first.ok  # "heals" recovered on attempt 2
    assert len(os.listdir(cache_dir)) == 2  # both successes stored

    os.remove(marker)  # a fresh run would crash again...
    warm = run_sweep(spec, cache_dir=cache_dir)
    assert warm.ok  # ...but the cache serves the recorded success
    assert all(o.cached for o in warm.outcomes)
    assert warm.spawned_workers == 0
    # Cached attempts reflect what the original run actually consumed.
    assert warm.payloads()["heals"] == "recovered"
    assert [o.attempts for o in warm.outcomes] == [2, 1]
