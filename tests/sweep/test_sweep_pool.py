"""Pool-level properties: crash isolation, retry bounds, timeouts,
manifest resume, and the scheduling-independent merge."""

import json
import os
import re

import pytest

from repro.sweep import (
    Manifest,
    SweepCell,
    SweepSpec,
    register_runner,
    run_sweep,
)


def declarative_cells(policies, ops=2000, pages=300, seed=42):
    return tuple(
        SweepCell(
            id=f"{policy}/zipf/s{seed}",
            runner="run-workload",
            params={
                "policy": policy,
                "workload": {
                    "kind": "zipf", "pages": pages, "ops": ops,
                    "seed": seed, "write_ratio": 0.0,
                },
                "config": {
                    "dram_pages": 128, "pm_pages": 1024,
                    "interval": 0.002, "seed": seed,
                },
            },
        )
        for policy in policies
    )


def test_parallel_merge_equals_sequential():
    spec = SweepSpec("grid", declarative_cells(("static", "multiclock", "nimble")))
    sequential = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=2)
    assert sequential.ok and parallel.ok
    assert [o.cell.id for o in parallel.outcomes] == [o.cell.id for o in sequential.outcomes]
    assert parallel.payloads() == sequential.payloads()


def test_worker_crash_is_retried_and_heals(tmp_path):
    marker = str(tmp_path / "crash.marker")
    spec = SweepSpec(
        "crash",
        (
            SweepCell("boom", "flaky",
                      {"marker": marker, "mode": "exit", "payload": "recovered"}),
            *declarative_cells(("static",)),
        ),
    )
    result = run_sweep(spec, workers=2)
    assert result.ok
    boom = result.outcomes[0]
    assert boom.payload == "recovered"
    assert boom.attempts == 2  # first attempt hard-exited, second succeeded


def test_persistent_crash_records_failed_cell_without_aborting(tmp_path):
    spec = SweepSpec(
        "persistent",
        (
            SweepCell("always-boom", "flaky", {"mode": "exit"}),  # no marker: fails forever
            *declarative_cells(("static",)),
        ),
    )
    result = run_sweep(spec, workers=2, max_attempts=2)
    assert not result.ok
    failed = result.outcomes[0]
    assert failed.status == "failed"
    assert failed.attempts == 2
    assert "signal" in failed.error or "crashed" in failed.error
    # The rest of the grid still completed.
    assert result.outcomes[1].ok


def test_timeout_kills_the_cell_and_retries(tmp_path):
    marker = str(tmp_path / "hang.marker")
    spec = SweepSpec(
        "hang",
        (SweepCell("sleepy", "flaky",
                   {"marker": marker, "mode": "hang", "payload": "woke"}),),
    )
    result = run_sweep(spec, workers=1, timeout_s=0.5)
    assert result.ok
    assert result.outcomes[0].attempts == 2
    assert result.outcomes[0].payload == "woke"


def test_timeout_exhaustion_is_a_failed_cell():
    spec = SweepSpec("hang-forever", (SweepCell("sleepy", "flaky", {"mode": "hang"}),))
    result = run_sweep(spec, workers=1, timeout_s=0.3, max_attempts=1)
    assert not result.ok
    assert result.outcomes[0].status == "failed"
    assert "timeout" in result.outcomes[0].error


def test_timeout_error_reports_elapsed_wall_time_and_attempt():
    spec = SweepSpec("hang-forever", (SweepCell("sleepy", "flaky", {"mode": "hang"}),))
    result = run_sweep(spec, workers=1, timeout_s=0.3, max_attempts=1)
    error = result.outcomes[0].error
    match = re.fullmatch(
        r"timeout: attempt (\d+) killed after (\d+\.\d\d)s wall \(limit 0\.3s\)",
        error,
    )
    assert match, f"unexpected timeout error format: {error!r}"
    assert int(match.group(1)) == 1
    # The reported time is what actually elapsed, not the nominal limit.
    assert float(match.group(2)) >= 0.3


@register_runner("test-log-order")
def _log_order(params):
    with open(params["log"], "a", encoding="utf-8") as fh:
        fh.write(f"{params['name']}\n")
    marker = params.get("crash_marker")
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(9)
    return params["name"]


def test_retry_goes_to_the_front_of_the_queue(tmp_path):
    # One crashing cell ahead of three healthy ones, one worker: the
    # retry must run immediately after the failure, not wait behind the
    # rest of the grid.
    log = str(tmp_path / "order.log")
    marker = str(tmp_path / "crash.marker")
    cells = [
        SweepCell("boom", "test-log-order",
                  {"log": log, "name": "boom", "crash_marker": marker}),
    ] + [
        SweepCell(name, "test-log-order", {"log": log, "name": name})
        for name in ("a", "b", "c")
    ]
    result = run_sweep(SweepSpec("ordered", tuple(cells)), workers=1)
    assert result.ok
    with open(log, encoding="utf-8") as fh:
        order = fh.read().splitlines()
    assert order == ["boom", "boom", "a", "b", "c"]


@register_runner("test-count-invocations")
def _count_invocations(params):
    # Appends one line per execution — proof of whether a resume re-ran us.
    with open(params["log"], "a", encoding="utf-8") as fh:
        fh.write("ran\n")
    return params["value"]


def _invocations(log_path):
    try:
        with open(log_path, "r", encoding="utf-8") as fh:
            return len(fh.readlines())
    except FileNotFoundError:
        return 0


def test_resume_skips_completed_cells(tmp_path):
    log = str(tmp_path / "invocations.log")
    manifest = str(tmp_path / "manifest.json")
    spec = SweepSpec(
        "resumable",
        tuple(
            SweepCell(f"cell{i}", "test-count-invocations", {"log": log, "value": i})
            for i in range(3)
        ),
    )
    first = run_sweep(spec, workers=2, manifest_path=manifest)
    assert first.ok
    assert _invocations(log) == 3

    resumed = run_sweep(spec, workers=2, manifest_path=manifest, resume=True)
    assert resumed.ok
    assert _invocations(log) == 3  # nothing re-ran
    assert all(o.resumed for o in resumed.outcomes)
    assert resumed.payloads() == first.payloads()


def test_resume_reruns_failed_cells(tmp_path):
    manifest = str(tmp_path / "manifest.json")
    marker = str(tmp_path / "later.marker")
    spec = SweepSpec(
        "heal-on-resume",
        (SweepCell("boom", "flaky",
                   {"marker": marker, "mode": "exit", "payload": "recovered"}),),
    )
    first = run_sweep(spec, workers=1, max_attempts=1, manifest_path=manifest)
    assert not first.ok  # single attempt crashed (and planted the marker)

    resumed = run_sweep(spec, workers=1, max_attempts=1,
                        manifest_path=manifest, resume=True)
    assert resumed.ok
    assert resumed.outcomes[0].payload == "recovered"
    data = json.loads(open(manifest, encoding="utf-8").read())
    assert data["cells"]["boom"]["status"] == "done"


def test_resume_carries_recorded_attempt_counts(tmp_path):
    manifest = str(tmp_path / "manifest.json")
    marker = str(tmp_path / "crash.marker")
    spec = SweepSpec(
        "carry",
        (SweepCell("boom", "flaky",
                   {"marker": marker, "mode": "exit", "payload": "recovered"}),),
    )
    first = run_sweep(spec, workers=1, manifest_path=manifest)
    assert first.ok
    assert first.outcomes[0].attempts == 2  # crashed once, then healed

    resumed = run_sweep(spec, workers=1, manifest_path=manifest, resume=True)
    assert resumed.outcomes[0].resumed
    # The outcome reports what the cell actually cost, not zero.
    assert resumed.outcomes[0].attempts == 2
    assert resumed.spawned_workers == 0


def test_resume_rejects_a_manifest_from_another_grid(tmp_path):
    manifest = str(tmp_path / "manifest.json")
    spec_a = SweepSpec("grid", declarative_cells(("static",)))
    spec_b = SweepSpec("grid", declarative_cells(("multiclock",)))
    run_sweep(spec_a, manifest_path=manifest)
    with pytest.raises(ValueError, match="different sweep"):
        run_sweep(spec_b, manifest_path=manifest, resume=True)


def test_duplicate_cell_ids_rejected():
    cell = declarative_cells(("static",))[0]
    with pytest.raises(ValueError, match="duplicate"):
        SweepSpec("dup", (cell, cell))


def test_unknown_runner_is_a_failed_cell_not_an_abort():
    spec = SweepSpec("bogus", (SweepCell("x", "no-such-runner", {}),))
    result = run_sweep(spec, max_attempts=1)
    assert not result.ok
    assert "unknown sweep runner" in result.outcomes[0].error


def test_manifest_roundtrip(tmp_path):
    manifest = str(tmp_path / "m.json")
    spec = SweepSpec("grid", declarative_cells(("static",)))
    book = Manifest(manifest, spec)
    book.record_done("static/zipf/s42", 1, {"throughput": 1})
    loaded = Manifest.load(manifest, spec)
    assert loaded.completed == {"static/zipf/s42": {"throughput": 1}}
