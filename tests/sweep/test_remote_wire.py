"""Wire-format properties: envelope/spec round-trips, tamper and
version-skew rejection, spawn-safety, and loopback-host determinism."""

import json
import os

import pytest

from repro.sweep import (
    WIRE_VERSION,
    SweepCell,
    SweepSpec,
    WireError,
    decode_envelope,
    decode_spec,
    encode_envelope,
    encode_spec,
    is_portable,
    run_remote_sweep,
    run_sweep,
)
from repro.sweep.pool import _context


def declarative_cells(policies, ops=1500, pages=200, seed=42):
    return tuple(
        SweepCell(
            id=f"{policy}/zipf/s{seed}",
            runner="run-workload",
            params={
                "policy": policy,
                "workload": {
                    "kind": "zipf", "pages": pages, "ops": ops,
                    "seed": seed, "write_ratio": 0.0,
                },
                "config": {
                    "dram_pages": 64, "pm_pages": 512,
                    "interval": 0.002, "seed": seed,
                },
            },
        )
        for policy in policies
    )


def test_envelope_round_trip():
    line = encode_envelope("heartbeat", {"busy": ["L1"], "done": 3})
    kind, body = decode_envelope(line)
    assert kind == "heartbeat"
    assert body == {"busy": ["L1"], "done": 3}


def test_envelope_rejects_tampered_body():
    line = encode_envelope("result", {"lease": "L1", "ok": True})
    blob = json.loads(line)
    blob["body"]["ok"] = False  # bit-flip in flight
    with pytest.raises(WireError, match="digest"):
        decode_envelope(json.dumps(blob))


def test_envelope_rejects_version_skew():
    line = encode_envelope("hello", {"pid": 1})
    blob = json.loads(line)
    blob["wire"] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="version skew"):
        decode_envelope(json.dumps(blob))


def test_envelope_rejects_wrong_kind_and_garbage():
    line = encode_envelope("hello", {"pid": 1})
    with pytest.raises(WireError, match="expected"):
        decode_envelope(line, expect="result")
    with pytest.raises(WireError):
        decode_envelope("not json at all")


def test_spec_round_trips_registered_runner_cells():
    spec = SweepSpec("wire", declarative_cells(("static", "multiclock")))
    rebuilt, extras = decode_spec(encode_spec(spec, heartbeat_s=1.5))
    assert rebuilt.fingerprint() == spec.fingerprint()
    assert [c.id for c in rebuilt.cells] == [c.id for c in spec.cells]
    assert rebuilt.cells[0].params == spec.cells[0].params
    assert extras["heartbeat_s"] == 1.5


def test_spec_decode_rejects_altered_cells():
    from repro.sweep.wire import _digest

    spec = SweepSpec("wire", declarative_cells(("static",)))
    blob = json.loads(encode_spec(spec))
    blob["body"]["cells"][0]["params"]["policy"] = "multiclock"
    blob["digest"] = _digest("spec", blob["body"])  # re-sign the envelope:
    with pytest.raises(WireError, match="fingerprint"):  # only the spec
        decode_spec(json.dumps(blob))  # fingerprint can catch the edit


def test_non_portable_cells_are_rejected_by_name():
    spec = SweepSpec(
        "live",
        (SweepCell("live-cell", "policy-factory",
                   {"factory": lambda: None, "config": None,
                    "policy": "static"}),),
    )
    assert not is_portable(spec.cells[0])
    with pytest.raises(WireError, match="live-cell"):
        encode_spec(spec)


def test_loopback_sweep_identical_to_sequential():
    spec = SweepSpec("loop", declarative_cells(("static", "multiclock")))
    sequential = run_sweep(spec, workers=1)
    remote = run_remote_sweep(spec, "loopback:2", heartbeat_s=1.0)
    assert remote.ok
    assert remote.payloads() == sequential.payloads()
    assert [o.cell.id for o in remote.outcomes] == [
        o.cell.id for o in sequential.outcomes
    ]


def test_spawn_start_method_matches_fork(monkeypatch):
    cells = tuple(
        SweepCell(f"c{i}", "flaky",
                  {"mode": "sleep", "sleep_s": 0.01, "payload": f"p{i}"})
        for i in range(4)
    )
    spec = SweepSpec("spawnable", cells)
    fork = run_sweep(spec, workers=2)
    monkeypatch.setenv("REPRO_SWEEP_START_METHOD", "spawn")
    spawned = run_sweep(spec, workers=2)
    assert spawned.ok
    assert spawned.payloads() == fork.payloads()


def test_unsupported_start_method_is_one_line_error():
    with pytest.raises(ValueError, match="unsupported sweep start method"):
        _context("not-a-method")
