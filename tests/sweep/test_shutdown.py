"""Graceful shutdown: escalating kills, SIGINT-safe sweeps, and the
manifest state they leave behind."""

import os
import signal
import threading
import time

import multiprocessing as mp

import pytest

from repro.sweep import Manifest, SweepCell, SweepSpec, SweepInterrupted, run_sweep
from repro.sweep.pool import _kill


def _cooperative(path):
    def on_term(_signo, _frame):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("cleaned up")
        os._exit(0)

    signal.signal(signal.SIGTERM, on_term)
    time.sleep(3600.0)


def _stubborn():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(3600.0)


def test_kill_lets_sigterm_cleanup_run(tmp_path):
    """SIGTERM first: a worker with a handler gets its grace window."""
    witness = str(tmp_path / "witness.txt")
    ctx = mp.get_context("fork")
    proc = ctx.Process(target=_cooperative, args=(witness,))
    proc.start()
    time.sleep(0.2)  # let the child install its handler
    _kill(proc, grace_s=2.0)
    assert not proc.is_alive()
    assert os.path.exists(witness)


def test_kill_escalates_on_sigterm_deaf_process():
    """A process that ignores SIGTERM is SIGKILLed after the grace."""
    ctx = mp.get_context("fork")
    proc = ctx.Process(target=_stubborn)
    proc.start()
    time.sleep(0.2)
    start = time.monotonic()
    _kill(proc, grace_s=0.3)
    assert not proc.is_alive()
    assert time.monotonic() - start < 5.0
    assert proc.exitcode == -signal.SIGKILL


def test_kill_reaps_already_dead_process():
    ctx = mp.get_context("fork")
    proc = ctx.Process(target=lambda: None)
    proc.start()
    proc.join(5.0)
    _kill(proc, grace_s=0.1)  # must not raise or hang
    assert proc.exitcode == 0


def test_sigint_flushes_manifest_and_raises(tmp_path):
    """First SIGINT: stop dispatching, record in-flight cells as pending,
    raise SweepInterrupted; a later --resume run finishes the job."""
    manifest = str(tmp_path / "m.json")
    cells = tuple(
        SweepCell(f"s{i}", "flaky",
                  {"mode": "sleep", "sleep_s": 0.4, "payload": f"p{i}"})
        for i in range(4)
    )
    spec = SweepSpec("interruptible", cells)

    def interrupt_soon():
        time.sleep(0.6)  # mid-sweep: some cells done, some in flight
        os.kill(os.getpid(), signal.SIGINT)

    threading.Thread(target=interrupt_soon, daemon=True).start()
    with pytest.raises(SweepInterrupted) as excinfo:
        run_sweep(spec, workers=1, manifest_path=manifest)
    message = str(excinfo.value)
    assert "manifest flushed" in message and "--resume" in message

    book = Manifest.load(manifest, spec)
    assert 0 < len(book.completed) < len(cells)  # partial progress kept

    resumed = run_sweep(spec, workers=1, manifest_path=manifest, resume=True)
    assert resumed.ok
    assert [o.payload for o in resumed.outcomes] == [
        f"p{i}" for i in range(4)
    ]
