"""Failure paths of the distributed sweep: hosts dying mid-cell,
duplicate results, full-fleet loss, and operator mistakes."""

from collections import deque

import pytest

from repro.sweep import (
    Manifest,
    SweepCell,
    SweepSpec,
    parse_hosts,
    run_remote_sweep,
    run_sweep,
)
from repro.sweep.remote import _Lease, _RemoteScheduler


def sleepy_cells(n, prefix="c", sleep_s=0.05):
    return [
        SweepCell(f"{prefix}{i}", "flaky",
                  {"mode": "sleep", "sleep_s": sleep_s, "payload": f"p{i}"})
        for i in range(n)
    ]


def test_agent_killed_mid_sweep_heals(tmp_path):
    """SIGKILLing one agent mid-cell must not lose the sweep: the cell is
    re-dispatched (straggler duplicate or host-loss requeue) and the
    merged result stays identical to the sequential run."""
    marker = str(tmp_path / "killed.marker")
    cells = sleepy_cells(8)
    cells.insert(3, SweepCell("killer", "flaky",
                              {"mode": "kill-agent", "marker": marker,
                               "payload": "recovered"}))
    spec = SweepSpec("faulty", tuple(cells))
    sequential = run_sweep(spec, workers=1)
    remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.5,
                              reconnect_attempts=2)
    assert remote.ok
    assert remote.payloads() == sequential.payloads()
    assert [o.cell.id for o in remote.outcomes] == [
        o.cell.id for o in sequential.outcomes
    ]


def test_heartbeat_loss_requeues_and_reconnects(tmp_path):
    """With straggler rescue off, the driver must detect the dead agent
    by heartbeat silence, requeue its lease, and reconnect the host."""
    marker = str(tmp_path / "killed.marker")
    cells = sleepy_cells(6)
    cells.insert(2, SweepCell("killer", "flaky",
                              {"mode": "kill-agent", "marker": marker,
                               "payload": "recovered"}))
    spec = SweepSpec("silent", tuple(cells))
    sequential = run_sweep(spec, workers=1)
    notes = []
    remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.3,
                              reconnect_attempts=2, straggler_factor=0,
                              progress=notes.append)
    assert remote.ok
    assert remote.payloads() == sequential.payloads()
    assert any("lost mid-cell; re-dispatching" in n for n in notes)
    assert sum(h.reconnects for h in remote.host_outcomes) >= 1


def test_all_hosts_dead_degrades_to_local_pool():
    """A kill-agent cell with no marker murders every agent that leases
    it; with reconnects exhausted the sweep must finish on the local
    pool (where kill-agent is inert) instead of aborting."""
    cells = sleepy_cells(4, prefix="d", sleep_s=0.02)
    cells.insert(0, SweepCell("assassin", "flaky",
                              {"mode": "kill-agent", "payload": "recovered"}))
    spec = SweepSpec("doomed", tuple(cells))
    sequential = run_sweep(spec, workers=1)
    notes = []
    remote = run_remote_sweep(spec, "loopback,loopback", heartbeat_s=0.3,
                              reconnect_attempts=0, straggler_factor=0,
                              progress=notes.append)
    assert remote.ok
    assert remote.payloads() == sequential.payloads()
    assert all(h.state == "dead" for h in remote.host_outcomes)
    assert any("degrading to the local pool" in n for n in notes)


def test_duplicate_result_discarded_at_most_once(tmp_path):
    """Unit-level at-most-once: the first result commits, the straggler
    sibling's late result is discarded and counted against its host."""
    cell = SweepCell("dup", "flaky", {"mode": "sleep", "payload": "x"})
    spec = SweepSpec("dups", (cell,))
    scheduler = _RemoteScheduler(
        spec, parse_hosts("loopback,loopback"),
        outcomes={}, pending=deque(), book=Manifest(None, spec), cache=None,
        timeout_s=None, max_attempts=3, heartbeat_s=1.0,
        straggler_factor=None, connect_timeout_s=5.0, reconnect_attempts=0,
        note=lambda _msg: None,
    )
    first, second = scheduler.hosts
    for host, lease_id in ((first, "L1"), (second, "L2")):
        lease = _Lease(id=lease_id, cell=cell, attempt=1, host=host,
                       started=0.0)
        scheduler.active[lease_id] = lease
        host.leases[lease_id] = lease
    scheduler._on_result(first, {"lease": "L1", "cell": "dup",
                                 "ok": True, "payload": "committed"})
    scheduler._on_result(second, {"lease": "L2", "cell": "dup",
                                  "ok": True, "payload": "too late"})
    assert scheduler.outcomes["dup"].payload == "committed"
    assert second.outcome.duplicates_discarded == 1
    assert not scheduler.active


def test_redispatch_consults_result_cache(tmp_path):
    """A cell requeued after dispatch began is served from the result
    cache when a fingerprint-identical cell has completed in the
    meantime, instead of being re-executed on a host."""
    from repro.sweep.manifest import ResultCache
    from repro.sweep.spec import cell_fingerprint

    params = {"mode": "ok", "payload": "shared"}
    first = SweepCell("first", "flaky", params)
    second = SweepCell("second", "flaky", params)  # same fingerprint
    spec = SweepSpec("cache-consult", (first, second))
    cache = ResultCache(str(tmp_path / "cache"))
    # "first" finished elsewhere while "second" sat requeued after a
    # host loss: its payload is cached under the shared fingerprint.
    cache.store(cell_fingerprint(first), cell_id="first", attempts=1,
                payload={"value": 41})

    notes = []
    outcomes = {}
    pending = deque([(second, 1)])
    scheduler = _RemoteScheduler(
        spec, parse_hosts("loopback"),
        outcomes=outcomes, pending=pending, book=Manifest(None, spec),
        cache=cache, timeout_s=None, max_attempts=3, heartbeat_s=1.0,
        straggler_factor=None, connect_timeout_s=5.0, reconnect_attempts=0,
        note=notes.append,
    )
    host = scheduler.hosts[0]
    host.state = "ready"
    host.transport = object()  # must never be used: the cache serves it
    scheduler._dispatch()
    assert scheduler.cache_hits == 1
    assert not pending and not scheduler.active
    assert outcomes["second"].ok and outcomes["second"].cached
    assert outcomes["second"].payload == {"value": 41}
    assert any("served from result cache" in n for n in notes)


def test_unreachable_ssh_host_dies_cleanly():
    """A host that never says hello is dead after its connect timeout;
    the surviving loopback host completes the sweep."""
    spec = SweepSpec("mixed", tuple(sleepy_cells(3, sleep_s=0.02)))
    sequential = run_sweep(spec, workers=1)
    remote = run_remote_sweep(
        spec, "nosuchhost.invalid,loopback", heartbeat_s=0.5,
        connect_timeout_s=2.0, reconnect_attempts=0,
    )
    assert remote.ok
    assert remote.payloads() == sequential.payloads()
    by_name = {h.host: h for h in remote.host_outcomes}
    assert by_name["nosuchhost.invalid"].state == "dead"
    assert by_name["loopback#0"].done == 3


@pytest.mark.parametrize("hosts,fragment", [
    ("", "empty"),
    ("loopback,,loopback", "empty entry"),
    ("loopback:two", "not an integer"),
    ("loopback:0", ">= 1"),
    ("host; rm -rf /", "ssh destination"),
])
def test_bad_hosts_are_one_line_value_errors(hosts, fragment):
    with pytest.raises(ValueError) as excinfo:
        parse_hosts(hosts)
    message = str(excinfo.value)
    assert fragment in message
    assert "\n" not in message


def test_bad_tuning_flags_are_one_line_value_errors():
    spec = SweepSpec("flags", tuple(sleepy_cells(1)))
    with pytest.raises(ValueError, match="heartbeat"):
        run_remote_sweep(spec, "loopback", heartbeat_s=-1.0)
    with pytest.raises(ValueError, match="straggler"):
        run_remote_sweep(spec, "loopback", straggler_factor=0.5)
