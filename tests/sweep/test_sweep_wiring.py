"""The experiment-layer wiring: run_policies / run_chaos / CLI sweeps
produce results identical to their sequential paths."""

import json

from repro.cli import main as cli_main
from repro.experiments.common import run_policies, scaled_config
from repro.faults import FaultPlan, run_chaos, write_report
from repro.faults.plan import CapacityLoss, CopyFailures
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


def test_run_policies_parallel_matches_sequential():
    config = scaled_config(dram_pages=128, pm_pages=1024)

    def factory():
        return ZipfWorkload(pages=200, ops=1500, seed=1)

    policies = ("static", "multiclock", "nimble")
    sequential = run_policies(factory, config, policies)
    parallel = run_policies(factory, config, policies, workers=2)
    assert list(parallel) == list(sequential)  # merge order = request order
    assert {p: r.to_dict() for p, r in parallel.items()} == {
        p: r.to_dict() for p, r in sequential.items()
    }


def chaos_fixture():
    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=42,
    )
    plan = FaultPlan(seed=42, events=(
        CopyFailures(start_s=0.0005, end_s=30.0, rate=0.2),
        CapacityLoss(start_s=0.002, end_s=0.008, node_id=1, frames=512),
    ))
    workloads = {"zipf": lambda: ZipfWorkload(400, 2500, seed=42)}
    return config, plan, workloads


def test_run_chaos_parallel_report_is_bit_identical(tmp_path):
    config, plan, workloads = chaos_fixture()
    policies = ["multiclock", "static"]
    sequential = run_chaos(policies, workloads, plan, config)
    parallel = run_chaos(policies, workloads, plan, config, workers=2)
    seq_path, par_path = tmp_path / "seq.json", tmp_path / "par.json"
    write_report(sequential, str(seq_path))
    write_report(parallel, str(par_path))
    assert seq_path.read_bytes() == par_path.read_bytes()


def test_run_chaos_never_aborts_on_a_dead_worker():
    """A cell whose worker dies outright (here: unknown policy raising
    before the chaos runner's own try/except arms) must surface as an
    uncompleted cell, not abort the sweep."""
    config, plan, workloads = chaos_fixture()
    report = run_chaos(["static", "no-such-policy"], workloads, plan, config, workers=2)
    by_policy = {cell.policy: cell for cell in report.cells}
    assert by_policy["static"].completed
    dead = by_policy["no-such-policy"]
    assert not dead.completed
    assert "sweep worker failed" in dead.error
    assert not report.all_clean


def sweep_argv(workers, out, pages="300", ops="2000"):
    return [
        "sweep",
        "--policies", "static,multiclock",
        "--workload", "zipf",
        "--pages", pages, "--ops", ops,
        "--dram-pages", "128", "--pm-pages", "1024",
        "--interval", "0.002",
        "--workers", str(workers),
        "--out", out,
    ]


def test_cli_sweep_report_bytes_do_not_depend_on_workers(tmp_path, capsys):
    seq_out = str(tmp_path / "seq.json")
    par_out = str(tmp_path / "par.json")
    assert cli_main(sweep_argv(1, seq_out)) == 0
    assert cli_main(sweep_argv(2, par_out)) == 0
    seq_bytes = open(seq_out, "rb").read()
    par_bytes = open(par_out, "rb").read()
    assert seq_bytes == par_bytes
    report = json.loads(seq_bytes)
    assert [c["id"] for c in report["cells"]] == [
        "static/zipf/s42", "multiclock/zipf/s42",
    ]
    assert all(c["status"] == "done" for c in report["cells"])


def test_cli_sweep_resume_uses_manifest(tmp_path, capsys):
    out = str(tmp_path / "report.json")
    argv = sweep_argv(2, out)
    assert cli_main(argv) == 0
    first = open(out, "rb").read()
    assert cli_main(argv + ["--resume"]) == 0
    assert open(out, "rb").read() == first
    err = capsys.readouterr().err
    assert "resumed from manifest" in err


def test_cli_sweep_rejects_unknown_workload(tmp_path, capsys):
    rc = cli_main([
        "sweep", "--workloads", "zipf,warpspeed",
        "--out", str(tmp_path / "r.json"),
    ])
    assert rc == 2
    assert "error: unknown workload(s) warpspeed" in capsys.readouterr().err


def test_cli_sweep_rejects_malformed_seeds(tmp_path, capsys):
    rc = cli_main([
        "sweep", "--seeds", "1,two",
        "--out", str(tmp_path / "r.json"),
    ])
    assert rc == 2
    assert "error: invalid --seeds" in capsys.readouterr().err
