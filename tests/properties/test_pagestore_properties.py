"""The struct-of-arrays page store and the ``Page`` view protocol must
agree: after any interleaving of touches, explicit promotions/demotions,
and evictions, the pfn-indexed columns describe exactly the state the
view objects and intrusive lists report.

This is the safety net under the SoA refactor — hot loops index the
columns directly while cold paths go through ``Page`` properties and
``LruList`` methods, so any divergence between the two protocols is a
latent corruption bug even if no current caller trips over it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.mm.migrate import MigrationOutcome
from repro.mm.pagestore import NO_PFN
from repro.sim.config import DaemonConfig, SimulationConfig

FOOTPRINT = 80

op_strategy = st.one_of(
    st.tuples(
        st.just("touch"),
        st.integers(min_value=0, max_value=FOOTPRINT - 1),
        st.booleans(),
        st.integers(min_value=1, max_value=16),
    ),
    st.tuples(
        st.just("migrate"),
        st.integers(min_value=0, max_value=10_000),  # resident-page pick
        st.integers(min_value=0, max_value=10_000),  # destination pick
        st.just(0),
    ),
    st.tuples(
        st.just("evict"),
        st.integers(min_value=0, max_value=10_000),
        st.just(0),
        st.just(0),
    ),
)

stream_strategy = st.lists(op_strategy, min_size=1, max_size=250)

policy_strategy = st.sampled_from(["static", "multiclock", "nimble"])


def resident_pages(process):
    return [pte.page for pte in process.page_table.entries()]


def apply_ops(machine, process, ops):
    system = machine.system
    nodes = list(system.nodes.values())
    for kind, a, b, c in ops:
        if kind == "touch":
            machine.touch(process, a, is_write=b, lines=c)
        elif kind == "migrate":
            pages = resident_pages(process)
            if not pages:
                continue
            page = pages[a % len(pages)]
            dest = nodes[b % len(nodes)]
            outcome = system.migrator.migrate(page, dest)
            if outcome is MigrationOutcome.MIGRATED:
                # Re-link the detached page the way vmscan/kpromoted do.
                page.clear(PageFlags.ACTIVE)
                page.clear(PageFlags.PROMOTE)
                dest.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
        else:  # evict
            pages = resident_pages(process)
            if not pages:
                continue
            page = pages[a % len(pages)]
            try:
                system.unmap_and_evict(page)
            except MemoryError:
                pass  # swap full: eviction refused atomically


def check_columns_match_views(machine, process):
    system = machine.system
    store = system.pagestore
    n = len(store)

    # -- per-page: every column readable through the view reads the same.
    for pfn in range(n):
        page = store.page_at(pfn)
        assert page.pfn == pfn and page._store is store  # identity-stable
        assert page.node_id == int(store.node[pfn])
        assert int(page.flags) == int(store.flags[pfn])
        assert page.is_anon == bool(store.is_anon[pfn])
        assert page.born_ns == int(store.born_ns[pfn])
        assert page.last_promoted_ns == int(store.last_promoted[pfn])
        assert len(page.rmap) == int(store.mapcount[pfn])
        # An unmapped page must never read as referenced: the store
        # clears both PTE bits when the last mapping goes away.
        if not page.rmap:
            assert not store.pte_accessed[pfn]
            assert not store.pte_dirty[pfn]
            assert not page.any_accessed()

    # -- links: the view neighbours are exactly the link columns.
    for pfn in range(n):
        page = store.page_at(pfn)
        prev = int(store.lru_prev[pfn])
        nxt = int(store.lru_next[pfn])
        assert page.lru_prev is (None if prev < 0 else store.page_at(prev))
        assert page.lru_next is (None if nxt < 0 else store.page_at(nxt))
        if int(store.lru_id[pfn]) < 0:
            # Off-list pages carry no stale links and no LRU flag.
            assert prev == NO_PFN and nxt == NO_PFN
            assert not (int(store.flags[pfn]) & PageFlags.LRU)
            assert page.lru is None

    # -- lists: walking the intrusive chain visits exactly the pfns whose
    #    lru_id column names the list, in reciprocally-linked order.
    for node in system.nodes.values():
        for lst in node.lruvec.all_lists():
            if lst.list_id < 0:  # never bound: provably empty
                assert len(lst) == 0
                continue
            member_pfns = set(np.flatnonzero(store.lru_id[:n] == lst.list_id))
            walked = []
            cursor = lst._head
            while cursor >= 0:
                walked.append(cursor)
                nxt = int(store.lru_next[cursor])
                if nxt >= 0:
                    assert int(store.lru_prev[nxt]) == cursor
                cursor = nxt
            assert len(walked) == len(lst) == len(member_pfns)
            assert set(walked) == member_pfns
            assert [p.pfn for p in lst] == walked
            assert [p.pfn for p in lst.iter_from_tail()] == walked[::-1]
            for pfn in walked:
                page = store.page_at(pfn)
                assert page.lru is lst
                assert int(store.flags[pfn]) & PageFlags.LRU
                assert page.node_id == node.node_id

    # -- awaiting-reaccess column backs the system's pending count.
    assert int(np.count_nonzero(store.awaiting_ns[:n] >= 0)) == \
        system._awaiting_count


@given(ops=stream_strategy, policy=policy_strategy)
@settings(max_examples=50, deadline=None)
def test_columns_and_views_agree_after_random_interleavings(ops, policy):
    config = SimulationConfig(
        dram_pages=(24,),
        pm_pages=(64,),
        swap_pages=256,
        daemons=DaemonConfig(
            kpromoted_interval_s=2e-4, kswapd_interval_s=1e-4
        ),
    )
    machine = Machine(config, policy)
    process = machine.create_process()
    process.mmap_anon(0, FOOTPRINT)
    apply_ops(machine, process, ops)
    check_columns_match_views(machine, process)
