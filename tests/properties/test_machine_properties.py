"""Property-based whole-machine invariants under random access streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import PageState, classify
from repro.machine import Machine
from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind
from repro.sim.config import DaemonConfig, SimulationConfig

FOOTPRINT = 96

config_strategy = st.builds(
    lambda dram, pm, interval: SimulationConfig(
        dram_pages=(dram,),
        pm_pages=(pm,),
        daemons=DaemonConfig(
            kpromoted_interval_s=interval, kswapd_interval_s=interval / 2
        ),
    ),
    dram=st.integers(min_value=16, max_value=64),
    pm=st.integers(min_value=64, max_value=256),
    interval=st.floats(min_value=1e-5, max_value=1e-3),
)

stream_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=FOOTPRINT - 1),
        st.booleans(),
        st.integers(min_value=1, max_value=32),
    ),
    min_size=1,
    max_size=300,
)

policy_strategy = st.sampled_from(
    ["static", "multiclock", "nimble", "autotiering-opm", "memory-mode"]
)


def check_invariants(machine: Machine, process) -> None:
    system = machine.system
    # 1. Frame accounting: used pages per node equals pages linked on its
    #    lists (every allocated page is on exactly one list).
    for node in system.nodes.values():
        on_lists = sum(len(lst) for lst in node.lruvec.all_lists())
        assert on_lists == node.used_pages, node
        assert 0 <= node.free_pages <= node.capacity_pages
        for lst in node.lruvec.all_lists():
            for page in lst:
                assert page.node_id == node.node_id
    # 2. Page-table consistency: every PTE is registered in its page's
    #    reverse map and points at a live node.
    for pte in process.page_table.entries():
        assert pte in pte.page.rmap
        assert pte.page.node_id in system.nodes
    # 3. A page is never simultaneously mapped and swapped.
    for vpage in range(FOOTPRINT):
        if process.page_table.lookup(vpage) is not None:
            assert not system.backing.is_swapped(process.pid, vpage)
    # 4. Flags agree with list membership.
    for node in system.nodes.values():
        for page in node.lruvec.list_for(ListKind.PROMOTE, True):
            assert page.test(PageFlags.PROMOTE)
        for page in node.lruvec.list_for(ListKind.ACTIVE, True):
            assert page.test(PageFlags.ACTIVE)
        for page in node.lruvec.list_for(ListKind.INACTIVE, True):
            assert not page.test(PageFlags.ACTIVE)
    # 5. Classification is total over resident pages.
    for pte in process.page_table.entries():
        assert classify(pte.page) in PageState


@given(config=config_strategy, stream=stream_strategy, policy=policy_strategy)
@settings(max_examples=60, deadline=None)
def test_random_streams_preserve_invariants(config, stream, policy):
    machine = Machine(config, policy)
    process = machine.create_process()
    process.mmap_anon(0, FOOTPRINT)
    for vpage, is_write, lines in stream:
        machine.touch(process, vpage, is_write=is_write, lines=lines)
    check_invariants(machine, process)
    # Time always moved forward and was fully attributed.
    clock = machine.clock
    assert clock.now_ns > 0
    assert clock.app_ns + clock.system_ns == clock.now_ns


@given(stream=stream_strategy)
@settings(max_examples=30, deadline=None)
def test_thrashing_never_ooms_while_swap_has_room(stream):
    """A footprint twice the machine's memory must survive on swap."""
    config = SimulationConfig(
        dram_pages=(16,),
        pm_pages=(32,),
        daemons=DaemonConfig(kpromoted_interval_s=1e-4, kswapd_interval_s=5e-5),
    )
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, FOOTPRINT)
    for vpage, is_write, lines in stream:
        machine.touch(process, vpage, is_write=is_write, lines=lines)
    assert machine.stats.get("oom.kills") == 0
    check_invariants(machine, process)


@given(
    stream=stream_strategy,
    policy=st.sampled_from(["multiclock", "nimble"]),
)
@settings(max_examples=30, deadline=None)
def test_accounting_counters_are_consistent(stream, policy):
    config = SimulationConfig(
        dram_pages=(24,),
        pm_pages=(96,),
        daemons=DaemonConfig(kpromoted_interval_s=1e-4, kswapd_interval_s=1e-4),
    )
    machine = Machine(config, policy)
    process = machine.create_process()
    process.mmap_anon(0, FOOTPRINT)
    for vpage, is_write, lines in stream:
        machine.touch(process, vpage, is_write=is_write, lines=lines)
    stats = machine.stats
    assert stats.get("accesses.total") == len(stream)
    assert stats.get("accesses.dram") + stats.get("accesses.pm") == len(stream)
    # Faults never exceed accesses; each swap-in consumed a prior swap-out.
    assert stats.get("faults.minor") + stats.get("faults.major") <= len(stream)
    assert machine.system.backing.swap_ins <= machine.system.backing.swap_outs
