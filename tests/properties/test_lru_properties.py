"""Property-based tests for the intrusive LRU lists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.flags import PageFlags
from repro.mm.lruvec import ListKind, LruList, LruVec
from repro.mm.page import Page

# An operation is (op_code, page_index).
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add_head", "add_tail", "remove", "rotate"]),
              st.integers(min_value=0, max_value=19)),
    max_size=200,
)


@given(ops=ops_strategy)
@settings(max_examples=200)
def test_list_count_matches_iteration(ops):
    """After any op sequence, len() equals both iteration directions and
    membership bookkeeping is exact."""
    lst = LruList(ListKind.INACTIVE, True)
    pages = [Page(0) for __ in range(20)]
    members = set()
    for op, idx in ops:
        page = pages[idx]
        if op in ("add_head", "add_tail") and idx not in members:
            getattr(lst, op)(page)
            members.add(idx)
        elif op == "remove" and idx in members:
            lst.remove(page)
            members.discard(idx)
        elif op == "rotate" and idx in members:
            lst.rotate_to_head(page)
    forward = list(lst)
    backward = list(lst.iter_from_tail())
    assert len(forward) == len(lst) == len(members)
    assert forward == list(reversed(backward))
    assert {pages.index(p) for p in forward} == members
    for page in forward:
        assert page.lru is lst
        assert page.test(PageFlags.LRU)
    for idx in set(range(20)) - members:
        assert pages[idx].lru is None
        assert not pages[idx].test(PageFlags.LRU)


@given(ops=ops_strategy)
@settings(max_examples=100)
def test_head_and_tail_consistency(ops):
    lst = LruList(ListKind.ACTIVE, False)
    pages = [Page(0, is_anon=False) for __ in range(20)]
    members = set()
    for op, idx in ops:
        page = pages[idx]
        if op in ("add_head", "add_tail") and idx not in members:
            getattr(lst, op)(page)
            members.add(idx)
        elif op == "remove" and idx in members:
            lst.remove(page)
            members.discard(idx)
        elif op == "rotate" and idx in members:
            lst.rotate_to_head(page)
        forward = list(lst)
        if forward:
            assert lst.head is forward[0]
            assert lst.tail is forward[-1]
            assert lst.head.lru_prev is None
            assert lst.tail.lru_next is None
        else:
            assert lst.head is None and lst.tail is None


@given(
    moves=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.sampled_from([ListKind.INACTIVE, ListKind.ACTIVE, ListKind.PROMOTE]),
        ),
        max_size=100,
    )
)
@settings(max_examples=100)
def test_page_is_on_at_most_one_list(moves):
    """Moving pages between a vec's lists never duplicates membership."""
    vec = LruVec()
    pages = [Page(0) for __ in range(10)]
    for idx, kind in moves:
        page = pages[idx]
        if page.lru is not None:
            page.lru.remove(page)
        vec.list_of(page, kind).add_head(page)
    total = sum(len(lst) for lst in vec.all_lists())
    on_lists = sum(1 for page in pages if page.lru is not None)
    assert total == on_lists
