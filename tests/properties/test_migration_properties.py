"""Property-based frame-conservation invariants for migration/discard."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine
from repro.mm.lruvec import ListKind
from repro.sim.config import SimulationConfig

CONFIG = SimulationConfig(dram_pages=(24, 24), pm_pages=(96, 96), sockets=2)


def build_machine(resident):
    machine = Machine(CONFIG, "static")
    process = machine.create_process()
    process.mmap_anon(0, 256)
    pages = []
    for vpage in range(resident):
        machine.touch(process, vpage)
        pages.append(process.page_table.lookup(vpage).page)
    return machine, process, pages


def total_frames(machine):
    return sum(node.used_pages for node in machine.system.nodes.values())


@given(
    resident=st.integers(min_value=4, max_value=60),
    moves=st.lists(
        st.tuples(st.integers(0, 59), st.integers(0, 3)), max_size=120
    ),
)
@settings(max_examples=60, deadline=None)
def test_migration_conserves_frames_and_mappings(resident, moves):
    machine, process, pages = build_machine(resident)
    frames_before = total_frames(machine)
    for page_idx, node_id in moves:
        if page_idx >= resident:
            continue
        page = pages[page_idx]
        dest = machine.system.nodes[node_id]
        machine.system.migrator.migrate(page, dest)
        if page.lru is None:  # migrated: policy-side relink
            dest.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
    # Exactly as many frames in use as before, wherever pages moved.
    assert total_frames(machine) == frames_before
    # Every page is resident on the node its node_id claims, on one list.
    for page in pages:
        node = machine.system.nodes[page.node_id]
        assert page.lru is not None
        assert any(page.lru is lst for lst in node.lruvec.all_lists())
    # All mappings survived every move.
    assert len(process.page_table) == resident


@given(
    resident=st.integers(min_value=4, max_value=60),
    discard_lo=st.integers(0, 59),
    discard_len=st.integers(1, 30),
)
@settings(max_examples=60, deadline=None)
def test_discard_then_retouch_reuses_frames(resident, discard_lo, discard_len):
    from repro.mm.address_space import MemoryRegion

    machine, process, pages = build_machine(resident)
    frames_before = total_frames(machine)
    lo = min(discard_lo, resident - 1)
    hi = min(lo + discard_len, resident)
    region = MemoryRegion(lo, hi - lo)
    freed = machine.system.discard_region(process, region)
    assert freed == hi - lo
    assert total_frames(machine) == frames_before - freed
    # Re-touching re-faults fresh pages and restores the frame count.
    for vpage in range(lo, hi):
        machine.touch(process, vpage)
    assert total_frames(machine) == frames_before
