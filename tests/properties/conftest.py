"""Pin the property tests to Hypothesis' derandomized mode.

With ``deadline=None`` and a fresh random seed per run, a rare generated
(config, stream) pair can drive the simulator into a pathologically slow
corner and stall the whole tier-1 run (observed: a single
``test_random_streams_preserve_invariants`` example spinning for 10+
minutes where the full suite normally takes under a minute).
Derandomizing makes every run explore the same example set, so a passing
suite stays passing — reproducibility over per-run novelty, which is the
right trade for a gate that fault-injection and distributed smokes queue
behind.
"""

from hypothesis import settings

settings.register_profile("derandomized", derandomize=True)
settings.load_profile("derandomized")
