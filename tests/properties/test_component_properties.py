"""Property-based tests for small core components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.watermarks import compute_watermarks
from repro.sim.stats import WindowedSeries
from repro.sim.vclock import VirtualClock
from repro.workloads.kvstore import SlabKVStore
from repro.workloads.ycsb import ZIPFIAN_CONSTANT, IncrementalZeta


@given(
    node=st.integers(min_value=1, max_value=1 << 24),
    extra=st.integers(min_value=0, max_value=1 << 24),
)
def test_watermarks_always_well_ordered(node, extra):
    marks = compute_watermarks(node, node + extra)
    assert 0 < marks.min_pages <= marks.low_pages <= marks.high_pages
    # The reserve never swallows the node.
    assert marks.high_pages <= max(4, node // 2) or node < 16


@given(
    events=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**10),
                  st.floats(min_value=0, max_value=100, allow_nan=False)),
        max_size=100,
    ),
    window=st.floats(min_value=0.05, max_value=100),
)
@settings(deadline=None)
def test_windowed_series_preserves_total(events, window):
    series = WindowedSeries(window)
    for time_ns, value in events:
        series.record(time_ns, value)
    total = sum(point.value for point in series.totals())
    assert total == np.float64(sum(value for __, value in events)) or abs(
        total - sum(value for __, value in events)
    ) < 1e-6
    ids = [point.window_id for point in series.totals()]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))


@given(deltas=st.lists(st.tuples(st.booleans(), st.integers(0, 10**9)), max_size=50))
def test_clock_buckets_partition_time(deltas):
    clock = VirtualClock()
    for is_app, delta in deltas:
        if is_app:
            clock.advance_app(delta)
        else:
            clock.advance_system(delta)
    assert clock.app_ns + clock.system_ns == clock.now_ns


@given(n=st.integers(min_value=2, max_value=2000))
def test_incremental_zeta_matches_direct_sum(n):
    zeta = IncrementalZeta(ZIPFIAN_CONSTANT)
    incremental = zeta.upto(n)
    direct = float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** (-ZIPFIAN_CONSTANT)))
    assert abs(incremental - direct) < 1e-9 * max(1.0, direct)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300),
    value_size=st.integers(min_value=64, max_value=3500),
)
@settings(max_examples=100)
def test_kvstore_slab_invariants(keys, value_size):
    store = SlabKVStore(value_size=value_size)
    for key in keys:
        store.insert(key)
    unique = set(keys)
    assert store.n_records == len(unique)
    slots = [store.location(key) for key in unique]
    # Distinct keys occupy distinct slots; slots are dense from zero.
    assert len(set(slots)) == len(slots)
    assert store.data_pages_used() <= len(unique) // store.items_per_page + 1
    for key in unique:
        touches = store.read(key)
        assert touches[-1].vpage >= store.data_base
        assert touches[-1].lines >= 1


@given(
    ranks=st.lists(st.floats(min_value=0, max_value=1, exclude_max=True), max_size=50),
    n=st.integers(min_value=2, max_value=10_000),
)
def test_zipf_rank_stays_in_range(ranks, n):
    from repro.workloads.ycsb import WORKLOAD_MIXES, YCSBPhase, YCSBSession

    session = YCSBSession(max(n, 2))
    phase = YCSBPhase(session, "C", WORKLOAD_MIXES["C"], ops=1)
    for p in ranks:
        rank = phase._zipf_rank(p, n)
        assert 0 <= rank < n
