"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_policies_lists_everything(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("multiclock", "static", "nimble", "memory-mode"):
        assert name in out


def test_run_prints_summary(capsys):
    code = main([
        "run", "--workload", "zipf", "--pages", "200", "--ops", "500",
        "--policy", "static", "--dram-pages", "128", "--pm-pages", "512",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "zipf on static" in out
    assert "node0/DRAM" in out


def test_experiment_names_cover_every_figure():
    for expected in (
        "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table1", "table2", "overhead", "ablation-ratio",
        "ablation-dirty", "ablation-adaptive", "ext-workload-e",
        "ext-dual-socket",
    ):
        assert expected in EXPERIMENTS


def test_experiment_table1_runs(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "MULTI-CLOCK" in capsys.readouterr().out


def test_record_and_replay_roundtrip(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    assert main([
        "record", str(trace), "--workload", "uniform", "--pages", "100",
        "--ops", "300", "--policy", "static",
        "--dram-pages", "128", "--pm-pages", "512",
    ]) == 0
    assert trace.exists()
    assert main([
        "replay", str(trace), "--policy", "multiclock",
        "--dram-pages", "128", "--pm-pages", "512",
    ]) == 0
    out = capsys.readouterr().out
    assert "replay[uniform]" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_policy_exits_with_one_line_error(capsys):
    code = main([
        "run", "--policy", "nosuch", "--pages", "100", "--ops", "200",
        "--dram-pages", "128", "--pm-pages", "512",
    ])
    assert code == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "nosuch" in captured.err
    assert "Traceback" not in captured.err
    assert captured.err.count("\n") == 1


def test_invalid_sizing_exits_with_one_line_error(capsys):
    code = main([
        "run", "--dram-pages", "0", "--pm-pages", "512",
        "--pages", "100", "--ops", "200",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "positive" in err
    assert err.count("\n") == 1


def test_oom_reports_node_occupancy(capsys):
    """Driving more pages than the machine holds with a full swap must
    end in a one-line OOM report naming the failing nodes, not a crash."""
    code = main([
        "run", "--policy", "static", "--workload", "uniform",
        "--pages", "200", "--ops", "400",
        "--dram-pages", "16", "--pm-pages", "16", "--swap-pages", "8",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error: out of memory:")
    assert "node0/DRAM" in err


def test_check_subcommand_reports_clean_run(capsys):
    code = main([
        "check", "--workload", "zipf", "--pages", "200", "--ops", "1000",
        "--dram-pages", "128", "--pm-pages", "512",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "debug_vm" in out
    assert "0 violation(s)" in out


def test_chaos_subcommand_writes_clean_report(tmp_path, capsys):
    import json

    out_file = tmp_path / "report.json"
    code = main([
        "chaos", "--policies", "static", "--workload", "zipf",
        "--pages", "300", "--ops", "2000",
        "--dram-pages", "128", "--pm-pages", "1024",
        "--out", str(out_file),
    ])
    assert code == 0
    data = json.loads(out_file.read_text())
    assert data["all_clean"] is True
    assert data["cells"][0]["policy"] == "static"
    assert "chaos verdict: ALL CLEAN" in capsys.readouterr().out


def test_chaos_unknown_workload_one_line_error(capsys):
    code = main(["chaos", "--workloads", "nosuch"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "nosuch" in err


SWEEP_SIZING = [
    "--policies", "static", "--workload", "zipf", "--pages", "100",
    "--ops", "300", "--dram-pages", "64", "--pm-pages", "512",
]


def test_sweep_bad_hosts_one_line_error(capsys):
    code = main(["sweep", *SWEEP_SIZING, "--hosts", "loopback:zz"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "loopback:zz" in err
    assert err.count("\n") == 1


def test_sweep_tuning_flags_require_hosts(capsys):
    code = main(["sweep", *SWEEP_SIZING, "--heartbeat-s", "1"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--hosts" in err
    assert err.count("\n") == 1


def test_sweep_bad_heartbeat_one_line_error(capsys):
    code = main(["sweep", *SWEEP_SIZING,
                 "--hosts", "loopback", "--heartbeat-s", "-2"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--heartbeat-s" in err
    assert err.count("\n") == 1


def test_sweep_bad_straggler_factor_one_line_error(capsys):
    code = main(["sweep", *SWEEP_SIZING,
                 "--hosts", "loopback", "--straggler-factor", "0.5"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--straggler-factor" in err
    assert err.count("\n") == 1


def test_sweep_hosts_sidecar_reports_cache_hits(tmp_path, capsys):
    """A distributed sweep's sidecar carries the mid-run cache-hit count
    alongside the per-host outcomes (zero on an uneventful run)."""
    import json

    out = tmp_path / "report.json"
    code = main([
        "sweep", *SWEEP_SIZING, "--hosts", "loopback",
        "--out", str(out), "--cache-dir", str(tmp_path / "cache"),
    ])
    capsys.readouterr()
    assert code == 0
    sidecar = json.loads((tmp_path / "report.json.hosts.json").read_text())
    assert sidecar["cache_hits"] == 0
    assert sidecar["hosts"][0]["host"] == "loopback#0"
    assert sidecar["hosts"][0]["state"] == "ok"


def test_colo_prints_tenant_table(capsys):
    assert main([
        "colo", "--tenants", "2", "--records", "200", "--ops", "500",
        "--limits", "none,60",
    ]) == 0
    out = capsys.readouterr().out
    assert "tenant0" in out and "tenant1" in out
    assert "p50_ns" in out and "p99_ns" in out
    assert "tenants finished" in out


def test_colo_bad_limits_one_line_error(capsys):
    assert main(["colo", "--limits", "12,oops"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "oops" in err
    assert "Traceback" not in err


def test_colo_snapshot_report_roundtrip(tmp_path, capsys):
    snap = tmp_path / "colo_snap.json"
    html = tmp_path / "colo.html"
    out = tmp_path / "report.html"
    assert main([
        "colo", "--tenants", "2", "--records", "200", "--ops", "500",
        "--snapshot", str(snap), "--html", str(html),
    ]) == 0
    capsys.readouterr()
    assert snap.exists() and html.exists()
    assert "tenant_tenant0_latency_ns" in html.read_text()
    assert main([
        "report", "--snapshot", str(snap), "--out", str(out),
    ]) == 0
    text = out.read_text()
    assert "tenant_tenant0_latency_ns" in text
    assert "p50" in text and "p99" in text


def test_report_missing_snapshot_one_line_error(tmp_path, capsys):
    assert main([
        "report", "--snapshot", str(tmp_path / "nope.json"),
        "--out", str(tmp_path / "x.html"),
    ]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "nope.json" in err


def test_experiment_list_includes_colo():
    assert "colo" in EXPERIMENTS
