"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_policies_lists_everything(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("multiclock", "static", "nimble", "memory-mode"):
        assert name in out


def test_run_prints_summary(capsys):
    code = main([
        "run", "--workload", "zipf", "--pages", "200", "--ops", "500",
        "--policy", "static", "--dram-pages", "128", "--pm-pages", "512",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "zipf on static" in out
    assert "node0/DRAM" in out


def test_experiment_names_cover_every_figure():
    for expected in (
        "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table1", "table2", "overhead", "ablation-ratio",
        "ablation-dirty", "ablation-adaptive", "ext-workload-e",
        "ext-dual-socket",
    ):
        assert expected in EXPERIMENTS


def test_experiment_table1_runs(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "MULTI-CLOCK" in capsys.readouterr().out


def test_record_and_replay_roundtrip(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    assert main([
        "record", str(trace), "--workload", "uniform", "--pages", "100",
        "--ops", "300", "--policy", "static",
        "--dram-pages", "128", "--pm-pages", "512",
    ]) == 0
    assert trace.exists()
    assert main([
        "replay", str(trace), "--policy", "multiclock",
        "--dram-pages", "128", "--pm-pages", "512",
    ]) == 0
    out = capsys.readouterr().out
    assert "replay[uniform]" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
