"""Tests for the top-level Machine and run_workload API."""

import pytest

from repro import Machine, RunResult, SimulationConfig, run_workload
from repro.workloads.synthetic import UniformWorkload, ZipfWorkload

CONFIG = SimulationConfig(dram_pages=(128,), pm_pages=(512,))


def test_machine_exposes_config_and_stats():
    machine = Machine(CONFIG, "static")
    assert machine.config is machine.system.config
    assert machine.stats is machine.system.stats
    assert machine.clock is machine.system.clock


def test_memory_report_covers_all_nodes():
    machine = Machine(CONFIG, "multiclock")
    report = machine.memory_report()
    assert set(report) == {"node0/DRAM", "node1/PM"}
    for entry in report.values():
        assert entry["used"] + entry["free"] == entry["capacity"]


def test_run_result_fields():
    result = run_workload(ZipfWorkload(pages=200, ops=500), CONFIG, policy="static")
    assert isinstance(result, RunResult)
    assert result.workload == "zipf"
    assert result.policy == "static"
    assert result.operations == 500
    assert result.elapsed_ns == result.app_ns + result.system_ns
    assert result.throughput_ops > 0
    assert 0.0 <= result.dram_access_fraction <= 1.0


def test_run_on_prebuilt_machine_counts_deltas():
    machine = Machine(CONFIG, "static")
    first = run_workload(UniformWorkload(pages=100, ops=300), CONFIG, machine=machine)
    second = run_workload(UniformWorkload(pages=100, ops=300, seed=9), CONFIG, machine=machine)
    # Phase results report per-phase counters, not machine lifetime.
    assert first.counters["accesses.total"] == 300
    assert second.counters["accesses.total"] == 300
    # The second phase faults less: pages are already resident.
    assert second.counters.get("faults.minor", 0) < first.counters["faults.minor"]


class _NoBoundaryWorkload(UniformWorkload):
    """A stream that never marks op_boundary (e.g. a raw page trace)."""

    name = "no-boundary"
    # Deliberately strips the markers its parent class declares.
    marks_op_boundaries = False

    def accesses(self):
        for access in super().accesses():
            yield type(access)(
                access.process, access.vpage, is_write=access.is_write, lines=access.lines
            )


@pytest.mark.parametrize("batch", [True, False])
def test_ops_fallback_is_explicit(batch):
    """When a stream carries no operation markers, RunResult falls back
    to the access count — and says so, instead of silently conflating
    operations with accesses."""
    result = run_workload(
        _NoBoundaryWorkload(pages=100, ops=300), CONFIG, policy="static", batch=batch
    )
    assert result.ops_fallback
    assert result.operations == result.accesses == 300


@pytest.mark.parametrize("batch", [True, False])
def test_ops_fallback_false_for_marked_streams(batch):
    result = run_workload(
        ZipfWorkload(pages=100, ops=300), CONFIG, policy="static", batch=batch
    )
    assert not result.ops_fallback
    assert result.operations == 300


class _ZeroOpWorkload(UniformWorkload):
    """Marks op boundaries in general, but this phase completes none —
    e.g. a sequence phase cut off mid-operation."""

    name = "zero-op"

    def accesses(self):
        for access in super().accesses():
            yield type(access)(
                access.process, access.vpage, is_write=access.is_write, lines=access.lines
            )


@pytest.mark.parametrize("batch", [True, False])
def test_zero_op_phase_of_marked_workload_is_not_a_fallback(batch):
    """A boundary-marking workload with zero completed operations must
    report operations == 0, not silently switch to accesses/s."""
    assert _ZeroOpWorkload.marks_op_boundaries  # inherited declaration
    result = run_workload(
        _ZeroOpWorkload(pages=100, ops=300), CONFIG, policy="static", batch=batch
    )
    assert not result.ops_fallback
    assert result.operations == 0
    assert result.accesses == 300
    assert result.throughput_ops == 0.0


def test_unknown_policy_name():
    with pytest.raises(KeyError):
        Machine(CONFIG, "bogus")


def test_drain_daemons_runs_overdue_work():
    machine = Machine(CONFIG, "multiclock")
    machine.system.clock.advance_app(10 ** 10)  # sleep 10 virtual seconds
    machine.drain_daemons()
    assert machine.stats.get("kpromoted.runs") > 0


def test_summary_is_one_line():
    result = run_workload(ZipfWorkload(pages=100, ops=200), CONFIG, policy="static")
    assert "\n" not in result.summary()
