"""Shared fixtures for the MULTI-CLOCK reproduction test suite."""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.mm.system import MemorySystem
from repro.sim.config import DaemonConfig, SimulationConfig


@pytest.fixture
def small_config() -> SimulationConfig:
    """A small two-node machine with fast daemons for quick tests."""
    return SimulationConfig(
        dram_pages=(256,),
        pm_pages=(1024,),
        daemons=DaemonConfig(
            kpromoted_interval_s=0.001,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.001,
        ),
    )


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """The smallest machine used for fine-grained list assertions."""
    return SimulationConfig(dram_pages=(64,), pm_pages=(256,))


def make_machine(config: SimulationConfig, policy: str = "multiclock") -> Machine:
    return Machine(config, policy)


@pytest.fixture
def machine(small_config: SimulationConfig) -> Machine:
    return make_machine(small_config)


@pytest.fixture
def bare_system(tiny_config: SimulationConfig) -> MemorySystem:
    """A memory system with a static policy attached (no daemons)."""
    machine = Machine(tiny_config, "static")
    return machine.system
