"""End-to-end integration tests across subsystem boundaries."""

import pytest

from repro.analysis.compare import normalize_throughput
from repro.experiments.common import run_ycsb_sequence, scaled_config
from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.gapbs import Graph, KERNELS
from repro.workloads.multitenant import MultiTenantWorkload
from repro.workloads.synthetic import ShiftingHotSetWorkload, ZipfWorkload
from repro.workloads.ycsb import EXECUTION_SEQUENCE, YCSBSession


def test_full_ycsb_sequence_on_one_machine():
    """The prescribed sequence runs warm end to end; later phases find
    resident data (no reload) and every phase completes its ops."""
    config = scaled_config(dram_pages=256, pm_pages=2048)
    results = run_ycsb_sequence(
        "multiclock", config, n_records=1000, ops_per_phase=1500
    )
    assert list(results) == ["load", *EXECUTION_SEQUENCE]
    for name in EXECUTION_SEQUENCE:
        assert results[name].operations == 1500, name
    assert results["load"].operations == 1000  # one insert per record
    # Execution phases never re-run the load: total minor faults across
    # the paper phases stay well below one fault per op.
    total_minor = sum(
        results[name].counters.get("faults.minor", 0) for name in EXECUTION_SEQUENCE
    )
    total_ops = 1500 * len(EXECUTION_SEQUENCE)
    assert total_minor < total_ops * 0.25


def test_gapbs_trials_warm_up_across_repetitions():
    """With a resident graph, MULTI-CLOCK's later trials run faster than
    the first (hot pages promoted during trial 1 serve trials 2-3)."""
    graph = Graph.uniform(1500, 8000, seed=5)
    kernel = KERNELS["pr"](graph, trials=3, seed=2, iterations=2)
    config = scaled_config(
        dram_pages=max(24, kernel.footprint_pages() // 2),
        pm_pages=kernel.footprint_pages() * 4,
        interval_s=0.05,
        scan_budget_pages=64,
    )
    machine = Machine(config, "multiclock")
    run_workload(kernel.load_workload(), config, machine=machine)
    result = run_workload(kernel, config, machine=machine)
    assert result.operations == 3
    assert result.promotions > 0


def test_policies_agree_on_access_counts():
    """Every policy sees the identical access stream for one workload."""
    workload_args = dict(pages=400, ops=3000, seed=8)
    config = SimulationConfig(dram_pages=(128,), pm_pages=(1024,))
    counts = set()
    for policy in ("static", "multiclock", "nimble", "memory-mode"):
        result = run_workload(ZipfWorkload(**workload_args), config, policy=policy)
        counts.add((result.accesses, result.operations))
    assert len(counts) == 1


def test_multitenant_transparency():
    """Two co-located tenants both benefit from MULTI-CLOCK without any
    per-application configuration — the paper's transparency claim."""
    config = scaled_config(dram_pages=384, pm_pages=3072, scan_budget_pages=256)

    def tenants():
        return [
            ShiftingHotSetWorkload(pages=900, ops=40_000, phase_ops=20_000,
                                   hot_fraction=0.12, seed=31),
            ShiftingHotSetWorkload(pages=900, ops=40_000, phase_ops=20_000,
                                   hot_fraction=0.12, seed=32),
        ]

    static = run_workload(MultiTenantWorkload(tenants()), config, policy="static")
    multiclock = run_workload(MultiTenantWorkload(tenants()), config, policy="multiclock")
    comparison = normalize_throughput({"static": static, "multiclock": multiclock})
    assert comparison.values["multiclock"] > 1.0


def test_stats_series_and_counters_agree_after_long_run():
    config = SimulationConfig(
        dram_pages=(128,),
        pm_pages=(1024,),
        daemons=DaemonConfig(kpromoted_interval_s=0.002, kswapd_interval_s=0.001),
        stats_window_s=0.01,
    )
    machine = Machine(config, "multiclock")
    workload = ShiftingHotSetWorkload(
        pages=800, ops=60_000, phase_ops=20_000, hot_fraction=0.1, seed=4
    )
    run_workload(workload, config, machine=machine)
    stats = machine.stats
    promoted_series = sum(p.value for p in stats.series["promotions_window"].totals())
    assert promoted_series == stats.get("migrate.promotions")
    demoted_series = sum(p.value for p in stats.series["demotions_window"].totals())
    assert demoted_series == stats.get("migrate.demotions")
    reaccessed = stats.get("promoted.reaccessed")
    assert reaccessed <= stats.get("migrate.promotions")


def test_virtual_time_is_policy_dependent_but_access_order_is_not():
    """Policies change *when* things cost, not *what* the workload does."""
    config = SimulationConfig(dram_pages=(64,), pm_pages=(512,))
    times = {}
    for policy in ("static", "multiclock"):
        result = run_workload(
            ZipfWorkload(pages=300, ops=2000, seed=3), config, policy=policy
        )
        times[policy] = result.elapsed_ns
        assert result.accesses == 2000
    assert times["static"] != times["multiclock"]
