"""Failure-injection tests: the paths a healthy run never takes.

Section III-C's last-resort chain — demote, then write back to block
storage, "before triggering the out-of-memory (OOM) killer as the last
option" — plus the migration-refusal cases (locked pages, unevictable
pages, full destinations) that drive the promote-list fallbacks.
"""

import pytest

from repro.machine import Machine
from repro.mm.address_space import MemoryRegion
from repro.mm.flags import PageFlags
from repro.mm.hardware import MemoryTier
from repro.mm.lruvec import ListKind
from repro.mm.system import OutOfMemoryError
from repro.sim.config import DaemonConfig, SimulationConfig

FAST = DaemonConfig(kpromoted_interval_s=0.001, kswapd_interval_s=0.0005)


def test_oom_fires_only_when_swap_is_full():
    config = SimulationConfig(
        dram_pages=(8,), pm_pages=(8,), swap_pages=4, daemons=FAST
    )
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    with pytest.raises(OutOfMemoryError):
        for vpage in range(40):
            machine.touch(process, vpage)
    # Swap really was exhausted when the killer fired.
    assert machine.system.backing.swap_full
    assert machine.stats.get("oom.kills") == 1


def test_mlocked_working_set_larger_than_dram_survives_in_pm():
    """Unevictable pages cannot be demoted or evicted; they pin frames
    and the rest of the workload must live around them."""
    config = SimulationConfig(dram_pages=(32,), pm_pages=(128,), daemons=FAST)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap(MemoryRegion(0, 24, mlocked=True))
    process.mmap_anon(100, 256)
    for vpage in range(24):
        machine.touch(process, vpage)
    locked_pages = [process.page_table.lookup(v).page for v in range(24)]
    for round_ in range(5):
        for vpage in range(100, 220):
            machine.touch(process, vpage)
    for page in locked_pages:
        assert page.test(PageFlags.UNEVICTABLE)
        assert page.lru.kind is ListKind.UNEVICTABLE
        assert page.mapped  # never evicted
    assert machine.stats.get("oom.kills") == 0


def test_locked_promote_candidate_falls_back_to_active_list():
    """Section III-C: a promote-list page that cannot migrate ("for
    instance, the page is locked") moves to the active list instead."""
    from repro.core.state import move_to_promote

    config = SimulationConfig(dram_pages=(64,), pm_pages=(256,), daemons=FAST)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 8)
    pm = machine.system.nodes[1]
    page = pm.allocate_page(is_anon=True)
    pte = process.page_table.map(0, page)
    pm.lruvec.list_of(page, ListKind.ACTIVE).add_head(page)
    page.set(PageFlags.ACTIVE)
    move_to_promote(pm, page)
    page.set(PageFlags.LOCKED)
    pte.accessed = True
    kp = next(k for k in machine.policy._kpromoted if k.node.is_pm)
    kp.run(0)
    assert machine.system.tier_of(page) is MemoryTier.PM
    assert page.lru.kind is ListKind.ACTIVE


def test_promotion_with_both_tiers_full_does_not_livelock():
    """DRAM full, PM full: demand demotion cannot make room, so the
    promotion fails cleanly and the page stays hot in PM."""
    config = SimulationConfig(dram_pages=(16,), pm_pages=(16,), daemons=FAST)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for node in machine.system.nodes.values():
        base = 0 if not node.is_pm else 32
        i = 0
        while node.can_allocate():
            page = node.allocate_page(is_anon=True)
            process.page_table.map(base + i, page)
            node.lruvec.list_of(page, ListKind.INACTIVE).add_head(page)
            i += 1
    victim = process.page_table.lookup(32).page
    assert not machine.policy.promote_page(victim)
    assert machine.system.tier_of(victim) is MemoryTier.PM


def test_discard_region_with_swapped_pages_releases_slots():
    config = SimulationConfig(dram_pages=(8,), pm_pages=(8,), swap_pages=64, daemons=FAST)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    region = process.mmap_anon(0, 48)
    for vpage in range(40):
        machine.touch(process, vpage)
    assert machine.system.backing.swapped_pages > 0
    machine.system.discard_region(process, region)
    assert machine.system.backing.swapped_pages == 0
    assert len(process.page_table) == 0
    # Frames are genuinely reusable afterwards.
    process2 = machine.create_process()
    process2.mmap_anon(0, 8)
    machine.touch(process2, 0)


def test_shared_file_page_survives_one_mappers_discard():
    config = SimulationConfig(dram_pages=(64,), pm_pages=(256,))
    machine = Machine(config, "static")
    p1 = machine.create_process()
    p2 = machine.create_process()
    r1 = p1.mmap_file(0, 4)
    p2.mmap_file(0, 4)
    machine.touch(p1, 0)
    shared = p1.page_table.lookup(0).page
    p2.page_table.map(0, shared)  # second mapping of the same file page
    machine.system.discard_region(p1, r1)
    assert shared.mapped  # p2 still maps it
    assert shared.lru is not None  # still resident


def test_swap_thrash_accounting_consistent():
    config = SimulationConfig(dram_pages=(8,), pm_pages=(8,), swap_pages=1024, daemons=FAST)
    machine = Machine(config, "multiclock")
    process = machine.create_process()
    process.mmap_anon(0, 64)
    for round_ in range(6):
        for vpage in range(48):
            machine.touch(process, vpage)
    backing = machine.system.backing
    assert backing.swap_ins > 0
    assert backing.swap_outs >= backing.swap_ins
    assert machine.stats.get("faults.major") == backing.swap_ins
    assert machine.stats.get("oom.kills") == 0
