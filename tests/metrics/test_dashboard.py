"""SVG chart builders and the self-contained HTML dashboard."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.dashboard import build_dashboard
from repro.analysis.svg import bar_chart, format_si, line_chart
from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


# -- svg primitives ----------------------------------------------------------


def test_format_si():
    assert format_si(0) == "0"
    assert format_si(950) == "950"
    assert format_si(1200) == "1.2k"
    assert format_si(3_400_000) == "3.4M"
    assert format_si(2_000_000_000) == "2G"
    assert format_si(-1500) == "-1.5k"
    assert format_si(float("nan")) == "?"


def test_line_chart_is_valid_svg_with_one_path_per_series():
    svg = line_chart([
        ("node 0", [(0.0, 10.0), (1.0, 20.0), (2.0, 15.0)]),
        ("node 1", [(0.0, 5.0), (1.0, None), (2.0, 8.0)]),
    ])
    root = ET.fromstring(svg)
    assert root.tag == "svg"
    paths = svg.count('class="line series-')
    assert paths == 2
    assert 'series-1' in svg and 'series-2' in svg
    # The None gap splits node 1's path into two M segments.
    second = re.search(r'class="line series-2" d="([^"]+)"', svg).group(1)
    assert second.count("M") == 2


def test_line_chart_handles_negative_values():
    svg = line_chart([("wm", [(0.0, -5.0), (1.0, 5.0)])])
    ET.fromstring(svg)
    assert "-5" in svg  # a tick below zero is labelled


def test_line_chart_empty_series_says_no_data():
    svg = line_chart([("n", [(0.0, None)])])
    assert "no data" in svg


def test_bar_chart_is_valid_svg_with_rounded_bars_and_tooltips():
    svg = bar_chart([("1", 3), ("3", 10), ("7", 5)])
    ET.fromstring(svg)
    assert svg.count('class="bar"') == 3
    assert "<title>3: 10</title>" in svg
    # Rounded data end: bar paths use quadratic corner curves.
    assert "q" in re.search(r'class="bar" d="([^"]+)"', svg).group(1)


def test_bar_chart_labels_only_the_peak():
    svg = bar_chart([("a", 1), ("b", 9), ("c", 2)])
    assert svg.count('class="val"') == 1
    assert ">9</text>" in svg


# -- the dashboard -----------------------------------------------------------


@pytest.fixture(scope="module")
def run_artifacts():
    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )
    machine = Machine(config, "multiclock")
    registry = machine.enable_metrics()
    result = run_workload(
        ZipfWorkload(1500, 30_000, seed=7, write_ratio=0.2),
        machine.config,
        machine=machine,
    )
    return registry.to_json(), result


def test_dashboard_is_one_self_contained_document(run_artifacts):
    snapshot, result = run_artifacts
    html = build_dashboard(snapshot, result)
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    # Self-contained: no scripts, no external fetches of any kind.
    assert "<script" not in html
    assert not re.search(r'\b(?:src|href)\s*=', html)
    assert "http://" not in html and "https://" not in html
    assert "url(" not in html
    assert "@import" not in html


def test_dashboard_renders_gauges_and_at_least_three_histograms(run_artifacts):
    snapshot, result = run_artifacts
    html = build_dashboard(snapshot, result)
    hist_section = html.split("Latency distributions")[1].split("<h2>")[0]
    assert hist_section.count("<svg") >= 3
    gauge_section = html.split("Memory gauges")[1].split("<h2>")[0]
    assert gauge_section.count("<svg") >= len(snapshot["gauges"]) - 1
    # Multi-node gauges carry a legend naming nodes by tier.
    assert 'class="legend"' in gauge_section
    assert "node 0 (DRAM)" in gauge_section
    assert "node 1 (PM)" in gauge_section


def test_dashboard_svgs_are_well_formed(run_artifacts):
    snapshot, result = run_artifacts
    html = build_dashboard(snapshot, result)
    svgs = re.findall(r"<svg.*?</svg>", html, re.S)
    assert svgs
    for svg in svgs:
        ET.fromstring(svg)


def test_dashboard_theme_uses_custom_properties(run_artifacts):
    snapshot, result = run_artifacts
    html = build_dashboard(snapshot, result)
    assert "--series-1" in html
    assert "prefers-color-scheme: dark" in html
    assert "var(--surface-1)" in html


def test_dashboard_summary_tiles_show_the_run(run_artifacts):
    snapshot, result = run_artifacts
    html = build_dashboard(snapshot, result, title="my run")
    assert "<title>my run</title>" in html
    assert "ops / virtual second" in html
    assert f"{result.promotions:,}" in html
    assert "zipf on multiclock" in html


def test_dashboard_lists_empty_histograms_instead_of_charting_them(run_artifacts):
    snapshot, result = run_artifacts
    empty = [
        name for name, data in snapshot["histograms"].items()
        if not data["count"]
    ]
    if not empty:
        pytest.skip("every histogram has samples in this run")
    html = build_dashboard(snapshot, result)
    assert "no samples:" in html


def test_dashboard_escapes_untrusted_labels(run_artifacts):
    snapshot, result = run_artifacts
    sweep = {
        "cells": [{
            "id": "<img src=x>", "status": "failed",
            "error": "<script>alert(1)</script>",
        }],
    }
    html = build_dashboard(snapshot, result, sweep=sweep)
    assert "<img" not in html
    assert "<script>" not in html
    assert "&lt;img" in html


def test_dashboard_without_result_or_reports_still_renders(run_artifacts):
    snapshot, _ = run_artifacts
    html = build_dashboard(snapshot)
    assert "Memory gauges" in html
    assert "Sweep report" not in html
    assert "Chaos report" not in html
