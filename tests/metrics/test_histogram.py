"""Log2Histogram bucketing, moments, and serialisation."""

import math

import pytest

from repro.metrics.histogram import Log2Histogram


def test_bucket_indexing_follows_bit_length():
    hist = Log2Histogram("t")
    for value, bucket in ((0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)):
        before = hist.buckets.get(bucket, 0)
        hist.record(value)
        assert hist.buckets[bucket] == before + 1


def test_bucket_bounds_partition_the_integers():
    previous_upper = -1
    for index in range(12):
        lo = Log2Histogram.bucket_lower_bound(index)
        hi = Log2Histogram.bucket_upper_bound(index)
        assert lo == previous_upper + 1
        assert hi >= lo
        previous_upper = hi


def test_exact_moments_survive_bucketing():
    hist = Log2Histogram("t")
    values = [0, 1, 5, 5, 1000, 12345]
    for value in values:
        hist.record(value)
    assert hist.count == len(values) == len(hist)
    assert hist.total == sum(values)
    assert hist.mean == pytest.approx(sum(values) / len(values))
    assert hist.min_value == 0
    assert hist.max_value == 12345


def test_rejects_negative_values():
    hist = Log2Histogram("t")
    with pytest.raises(ValueError, match="negative"):
        hist.record(-1)
    assert hist.count == 0


def test_negative_error_is_one_line_and_names_the_histogram():
    hist = Log2Histogram("promotion_lat")
    with pytest.raises(ValueError) as excinfo:
        hist.record(-7)
    message = str(excinfo.value)
    assert "promotion_lat" in message
    assert "-7" in message
    assert "\n" not in message


def test_zero_is_a_real_observation_with_exact_moments():
    hist = Log2Histogram("t")
    hist.record(0)
    assert hist.count == 1
    assert hist.total == 0
    assert hist.min_value == 0
    assert hist.max_value == 0
    assert hist.mean == 0.0
    assert hist.buckets == {0: 1}
    assert hist.dense_buckets() == [(0, 1)]
    data = hist.to_dict()
    assert data["count"] == 1 and data["sum"] == 0
    assert data["min"] == 0 and data["max"] == 0


def test_numpy_scalars_coerce_to_python_ints():
    np = pytest.importorskip("numpy")
    hist = Log2Histogram("t")
    hist.record(np.int64(0))
    hist.record(np.int64(5))
    assert type(hist.total) is int
    assert type(hist.min_value) is int and type(hist.max_value) is int
    assert hist.buckets == {0: 1, 3: 1}
    with pytest.raises(ValueError, match="negative"):
        hist.record(np.int64(-3))


def test_dense_buckets_fill_gaps():
    hist = Log2Histogram("t")
    hist.record(1)
    hist.record(1024)  # bit_length 11
    dense = hist.dense_buckets()
    assert [index for index, _ in dense] == list(range(12))
    assert sum(count for _, count in dense) == 2


def test_cumulative_buckets_are_monotonic_and_end_at_count():
    hist = Log2Histogram("t")
    for value in (1, 2, 2, 9, 9, 9, 500):
        hist.record(value)
    cumulative = hist.cumulative_buckets()
    uppers = [upper for upper, _ in cumulative]
    counts = [count for _, count in cumulative]
    assert uppers == sorted(uppers)
    assert counts == sorted(counts)
    assert counts[-1] == hist.count


def test_quantiles_land_in_the_right_bucket():
    hist = Log2Histogram("t")
    for _ in range(99):
        hist.record(10)
    hist.record(100_000)
    p50 = hist.quantile(0.5)
    assert Log2Histogram.bucket_lower_bound(4) <= p50 <= Log2Histogram.bucket_upper_bound(4)
    p999 = hist.quantile(0.999)
    assert p999 > Log2Histogram.bucket_upper_bound(4)
    assert math.isnan(Log2Histogram("empty").quantile(0.5))
    with pytest.raises(ValueError, match="quantile"):
        hist.quantile(1.5)


def test_to_dict_round_trips_through_json():
    import json

    hist = Log2Histogram("lat", "help text", unit="ns")
    for value in (3, 70, 70, 4096):
        hist.record(value)
    data = json.loads(json.dumps(hist.to_dict()))
    assert data["name"] == "lat"
    assert data["unit"] == "ns"
    assert data["count"] == 4
    assert data["sum"] == 3 + 70 + 70 + 4096
    assert sum(bucket["count"] for bucket in data["buckets"]) == 4
    les = [bucket["le"] for bucket in data["buckets"]]
    assert les == sorted(les)
