"""CLI tests for ``repro stat`` and ``repro report``."""

import json

from repro.cli import main

ARGS = [
    "--workload", "zipf", "--pages", "600", "--ops", "6000",
    "--dram-pages", "256", "--pm-pages", "2048", "--interval", "0.002",
]


def test_stat_prints_vmstat_lines(capsys):
    assert main(["stat", *ARGS]) == 0
    out = capsys.readouterr().out
    assert "zipf on multiclock" in out
    assert "node0_nr_free_pages" in out
    assert "demotion_page_age_ns_count" in out
    for line in out.splitlines()[1:]:  # skip the summary line
        name, _, value = line.partition(" ")
        float(value)


def test_stat_json_is_pure_json_on_stdout(capsys):
    assert main(["stat", *ARGS, "--json"]) == 0
    out = capsys.readouterr().out
    snapshot = json.loads(out)  # the whole stdout parses — no summary line
    assert snapshot["meta"]["samples"] > 0
    assert "nr_free_pages" in snapshot["gauges"]
    assert snapshot["histograms"]["demotion_page_age_ns"]["count"] > 0


def test_stat_json_node_filter(capsys):
    assert main(["stat", *ARGS, "--json", "--node", "1"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    for per_node in snapshot["gauges"].values():
        assert set(per_node) == {"1"}
    # Counters stay machine-wide.
    assert snapshot["counters"]


def test_stat_unknown_node_is_an_operator_error(capsys):
    assert main(["stat", *ARGS, "--node", "9"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "9" in err


def test_stat_prometheus(capsys):
    assert main(["stat", *ARGS, "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# HELP repro_nr_free_pages" in out
    assert "# TYPE repro_nr_free_pages gauge" in out
    assert 'repro_nr_free_pages{node="0",tier="DRAM"}' in out
    assert 'repro_demotion_page_age_ns_bucket{le="+Inf"}' in out


def test_stat_windows_table(capsys):
    assert main(["stat", *ARGS, "--windows", "--node", "0"]) == 0
    out = capsys.readouterr().out
    assert "node 0:" in out
    assert "window" in out
    assert "nr_free_pages" in out
    assert "machine:" not in out  # --node narrowed the tables


def test_report_writes_a_self_contained_dashboard(tmp_path, capsys):
    out_path = tmp_path / "dash.html"
    assert main(["report", *ARGS, "--html", "--out", str(out_path)]) == 0
    html = out_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
    assert str(out_path) in capsys.readouterr().out


def test_report_embeds_sweep_and_chaos_reports(tmp_path, capsys):
    sweep = tmp_path / "SWEEP_report.json"
    sweep.write_text(json.dumps({
        "grid": {"policies": ["static"], "workloads": ["zipf"], "seeds": [7]},
        "cells": [{
            "id": "static/zipf/s7", "status": "done",
            "result": {
                "workload": "zipf", "policy": "static", "operations": 100,
                "accesses": 100, "elapsed_ns": 10**6, "app_ns": 10**6,
                "system_ns": 0, "ops_fallback": False,
                "counters": {"accesses.total": 100, "accesses.dram": 60},
            },
        }],
    }))
    chaos = tmp_path / "CHAOS_report.json"
    chaos.write_text(json.dumps({
        "all_clean": True,
        "plan": {"seed": 7, "events": []},
        "cells": [{
            "policy": "multiclock", "workload": "zipf", "completed": True,
            "oom_killed": False, "error": None, "elapsed_ns": 10**6,
            "accesses": 100, "violations": 0, "violation_details": [],
            "counters": {"migrate.retries": 3, "migrate.retry_succeeded": 3},
        }],
    }))
    out_path = tmp_path / "dash.html"
    assert main([
        "report", *ARGS, "--out", str(out_path),
        "--sweep", str(sweep), "--chaos", str(chaos),
    ]) == 0
    html = out_path.read_text()
    assert "Sweep report" in html
    assert "static/zipf/s7" in html
    assert "Chaos report" in html
    assert "all cells clean" in html


def test_report_missing_sweep_path_is_an_operator_error(tmp_path, capsys):
    assert main([
        "report", *ARGS, "--out", str(tmp_path / "x.html"),
        "--sweep", str(tmp_path / "nope.json"),
    ]) == 2
    assert capsys.readouterr().err.startswith("error:")
