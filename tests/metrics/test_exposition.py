"""Exposition format grammar: vmstat lines, Prometheus text, JSON."""

import json
import re

import pytest

from repro.machine import Machine
from repro.metrics import escape_label_value, sanitize_metric_name
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


@pytest.fixture(scope="module")
def registry():
    config = SimulationConfig(
        dram_pages=(256,),
        pm_pages=(2048,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )
    machine = Machine(config, "multiclock")
    reg = machine.enable_metrics()
    run_workload(
        ZipfWorkload(1500, 20_000, seed=7, write_ratio=0.2),
        machine.config,
        machine=machine,
    )
    return reg


# -- helpers -----------------------------------------------------------------

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_prometheus(text):
    """Minimal Prometheus text-format parser.

    Returns ``{family: {"help": ..., "type": ..., "samples": [(name,
    labels, value), ...]}}`` and enforces the line grammar: HELP before
    TYPE before samples, every sample's family already declared.
    """
    families = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert METRIC_NAME.match(name), name
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its own HELP"
            assert families[name]["type"] is None, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram"), kind
            families[name]["type"] = kind
        else:
            match = SAMPLE_LINE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name = match["name"]
            base = re.sub(r"_(bucket|sum|count|total)$", "", name)
            family = name if name in families else base
            assert family in families, f"sample {name} before metadata"
            assert families[family]["type"] is not None
            labels = {}
            if match["labels"]:
                for pair in re.finditer(
                    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                    match["labels"],
                ):
                    labels[pair.group(1)] = pair.group(2)
            families[family]["samples"].append(
                (name, labels, match["value"])
            )
    return families


# -- /proc/vmstat ------------------------------------------------------------


def test_vmstat_is_name_value_lines(registry):
    text = registry.to_vmstat()
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        name, _, value = line.partition(" ")
        assert METRIC_NAME.match(name), line
        float(value)  # parses as a number


def test_vmstat_node_filter_keeps_only_that_nodes_gauges(registry):
    text = registry.to_vmstat(0)
    assert "node0_nr_free_pages" in text
    assert "node1_nr_free_pages" not in text
    # Counters and histogram moments are machine-wide, still present.
    assert "kswapd_runs" in text
    assert "promotion_latency_ns_count" in text


# -- Prometheus --------------------------------------------------------------


def test_prometheus_grammar_and_metadata_ordering(registry):
    families = parse_prometheus(registry.to_prometheus())
    assert families  # parser enforced HELP->TYPE->samples en route
    counters = [f for f, v in families.items() if v["type"] == "counter"]
    assert counters and all(name.endswith("_total") for name in counters)
    assert any(v["type"] == "gauge" for v in families.values())
    assert any(v["type"] == "histogram" for v in families.values())


def test_prometheus_gauges_carry_node_and_tier_labels(registry):
    families = parse_prometheus(registry.to_prometheus())
    gauge = families["repro_nr_free_pages"]
    nodes = {s[1]["node"]: s[1]["tier"] for s in gauge["samples"]}
    assert nodes["0"] == "DRAM"
    assert nodes["1"] == "PM"


def test_prometheus_histogram_buckets_are_cumulative_and_complete(registry):
    families = parse_prometheus(registry.to_prometheus())
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets = [s for s in family["samples"] if s[0] == f"{name}_bucket"]
        assert buckets[-1][1]["le"] == "+Inf"
        counts = [int(s[2]) for s in buckets]
        assert counts == sorted(counts), f"{name} buckets not monotonic"
        les = [float(s[1]["le"]) for s in buckets[:-1]]
        assert les == sorted(les)
        count_sample = next(
            s for s in family["samples"] if s[0] == f"{name}_count"
        )
        assert int(count_sample[2]) == counts[-1]
        assert any(s[0] == f"{name}_sum" for s in family["samples"])


def test_prometheus_has_real_latency_data(registry):
    families = parse_prometheus(registry.to_prometheus())
    count = next(
        int(s[2])
        for s in families["repro_demotion_page_age_ns"]["samples"]
        if s[0] == "repro_demotion_page_age_ns_count"
    )
    assert count > 0


# -- name / label hygiene ----------------------------------------------------


def test_sanitize_metric_name():
    assert sanitize_metric_name("kswapd.pages-scanned/0") == "kswapd_pages_scanned_0"


def test_escape_label_value_round_trips():
    raw = 'tier "A"\\B\nend'
    escaped = escape_label_value(raw)
    assert "\n" not in escaped
    # Unescape the three escapes in reverse and recover the original.
    unescaped = (
        escaped.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )
    assert unescaped == raw


# -- JSON --------------------------------------------------------------------


def test_snapshot_round_trips_through_json(registry):
    snapshot = registry.to_json()
    restored = json.loads(json.dumps(snapshot))
    assert restored == snapshot
    assert set(restored) == {"meta", "counters", "gauges", "events", "histograms"}
    assert restored["meta"]["samples"] == registry.samples
    assert restored["counters"] == dict(
        sorted(registry.system.stats.snapshot().items())
    )
    free = restored["gauges"]["nr_free_pages"]["0"]
    assert free["windows"], "windowed gauge series present"
    for histogram in restored["histograms"].values():
        assert histogram["count"] == sum(
            bucket["count"] for bucket in histogram["buckets"]
        )


# -- p50/p99 quantiles across the formats ------------------------------------


def test_vmstat_emits_quantiles_for_populated_histograms(registry):
    text = registry.to_vmstat()
    lines = dict(
        line.rsplit(" ", 1) for line in text.strip().splitlines()
    )
    for hist in registry.histograms.values():
        if hist.count:
            assert float(lines[f"{hist.name}_p50"]) == hist.quantile(0.5)
            assert float(lines[f"{hist.name}_p99"]) == hist.quantile(0.99)
        else:
            # Empty histograms have no quantile lines (nothing to parse).
            assert f"{hist.name}_p50" not in lines
            assert f"{hist.name}_p99" not in lines


def test_prometheus_quantiles_are_separate_gauge_families(registry):
    text = registry.to_prometheus()
    lines = text.splitlines()
    for hist in registry.histograms.values():
        if not hist.count:
            continue
        for label, q in (("p50", 0.5), ("p99", 0.99)):
            name = f"repro_{hist.name}_{label}"
            assert f"# TYPE {name} gauge" in lines
            sample = next(l for l in lines if l.startswith(f"{name} "))
            assert float(sample.split()[1]) == hist.quantile(q)


def test_json_snapshot_carries_quantiles(registry):
    snapshot = json.loads(json.dumps(registry.to_json()))
    for name, data in snapshot["histograms"].items():
        hist = registry.histograms[name]
        if hist.count:
            assert data["p50"] == hist.quantile(0.5)
            assert data["p99"] == hist.quantile(0.99)
        else:
            # None, never NaN: the snapshot must survive a JSON round trip.
            assert data["p50"] is None and data["p99"] is None


def test_tenant_histograms_flow_through_every_format(registry):
    hist = registry.tenant_histogram("svc-a")
    hist.record(1000)
    hist.record(50_000)
    try:
        assert registry.tenant_histogram("svc-a") is hist  # get-or-create
        assert "tenant_svc_a_latency_ns_p99" in registry.to_vmstat()
        assert "repro_tenant_svc_a_latency_ns_p50" in registry.to_prometheus()
        snapshot = registry.to_json()
        assert snapshot["histograms"]["tenant_svc_a_latency_ns"]["p50"] is not None
    finally:
        # The module-scoped registry is shared; drop the side histogram.
        del registry.histograms["tenant_svc_a_latency_ns"]
