"""Metrics must be free: off-runs match the recorded baselines, armed
runs match off-runs.

The recorded ``tests/data/baseline_runresults.json`` predates both the
tracepoint layer and this metrics layer; any drift in a metrics-off run
means an instrumentation site forgot its ``is None`` guard or perturbed
the virtual clock.  The armed comparison is the stronger property: the
cost-free sampler daemon, the gauge series, and all six histograms may
observe the run but never steer it.
"""

import json
from pathlib import Path

import pytest

from repro.machine import Machine
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload

BASELINE = Path(__file__).parent.parent / "data" / "baseline_runresults.json"
RECORDED = json.loads(BASELINE.read_text())


def baseline_config():
    return SimulationConfig(
        dram_pages=(512,),
        pm_pages=(4096,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )


def fingerprint(policy, *, metrics=False):
    machine = Machine(baseline_config(), policy)
    if metrics:
        # Dense sampling maximises the sampler's chances to interfere.
        machine.enable_metrics(sample_interval_s=0.0005)
    workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
    result = run_workload(workload, machine.config, machine=machine)
    return {
        "operations": result.operations,
        "accesses": result.accesses,
        "elapsed_ns": result.elapsed_ns,
        "app_ns": result.app_ns,
        "system_ns": result.system_ns,
        "ops_fallback": result.ops_fallback,
        "counters": dict(sorted(result.counters.items())),
    }


@pytest.mark.parametrize("policy", sorted(RECORDED))
def test_metrics_off_matches_the_recorded_baseline(policy):
    assert fingerprint(policy) == RECORDED[policy]


@pytest.mark.parametrize("policy", sorted(RECORDED))
def test_metrics_armed_changes_nothing(policy):
    assert fingerprint(policy, metrics=True) == RECORDED[policy]


def test_armed_run_actually_measured_something():
    """Guard the guard: the identity test must not pass vacuously."""
    machine = Machine(baseline_config(), "multiclock")
    registry = machine.enable_metrics(sample_interval_s=0.0005)
    workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
    run_workload(workload, machine.config, machine=machine)
    assert registry.samples > 0
    assert sum(h.count for h in registry.histograms.values()) > 0
    assert registry.gauges


def test_metrics_survive_fault_injection_identically():
    """Arming metrics must not shift the fault RNG stream either: the
    ``vmstat_sampler`` daemon is protected from jitter/stall faults, so
    a chaos run fingerprints the same with and without metrics."""
    from repro.faults import CopyFailures, DaemonJitter, FaultPlan

    def chaos_fingerprint(metrics):
        machine = Machine(baseline_config(), "multiclock")
        if metrics:
            machine.enable_metrics(sample_interval_s=0.0005)
        plan = FaultPlan(
            seed=7,
            events=(
                CopyFailures(start_s=0.001, end_s=10.0, rate=0.3),
                DaemonJitter(start_s=0.001, end_s=10.0, max_extra_s=0.005),
            ),
        )
        machine.install_faults(plan)
        workload = ZipfWorkload(2000, 20_000, seed=7, write_ratio=0.2)
        result = run_workload(workload, machine.config, machine=machine)
        return (
            dict(sorted(result.counters.items())),
            result.elapsed_ns,
            result.app_ns,
            result.system_ns,
        )

    assert chaos_fingerprint(metrics=True) == chaos_fingerprint(metrics=False)
