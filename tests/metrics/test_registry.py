"""MetricsRegistry wiring: sampler gauges, latency pipelines, guards."""

import pytest

from repro.machine import Machine
from repro.metrics import GAUGE_NAMES, SAMPLER_NAME
from repro.metrics.registry import MACHINE_NODE
from repro.run import run_workload
from repro.sim.config import DaemonConfig, SimulationConfig
from repro.workloads.synthetic import ZipfWorkload


def small_config(**overrides):
    defaults = dict(
        dram_pages=(256,),
        pm_pages=(2048,),
        swap_pages=1 << 20,
        daemons=DaemonConfig(
            kpromoted_interval_s=0.002,
            kswapd_interval_s=0.001,
            hint_scan_interval_s=0.002,
        ),
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def armed_run(policy="multiclock", *, pages=1500, ops=20_000, **config_overrides):
    machine = Machine(small_config(**config_overrides), policy)
    registry = machine.enable_metrics()
    workload = ZipfWorkload(pages, ops, seed=7, write_ratio=0.2)
    result = run_workload(workload, machine.config, machine=machine)
    return machine, registry, result


def test_metrics_are_off_by_default():
    machine = Machine(small_config(), "multiclock")
    assert machine.system.metrics is None
    assert machine.system.migrator.metrics is None
    assert machine.system.backing.metrics is None


def test_enable_metrics_wires_every_sink_and_registers_the_sampler():
    machine = Machine(small_config(), "multiclock")
    registry = machine.enable_metrics()
    system = machine.system
    assert system.metrics is registry
    assert system.migrator.metrics is registry
    assert system.backing.metrics is registry
    daemon = next(
        d for d in machine.scheduler.daemons if d.name == SAMPLER_NAME
    )
    assert daemon.cost_free


def test_enable_metrics_twice_raises():
    machine = Machine(small_config(), "multiclock")
    machine.enable_metrics()
    with pytest.raises(RuntimeError, match="already"):
        machine.enable_metrics()


def test_registry_rejects_nonsense_windows():
    machine = Machine(small_config(), "multiclock")
    with pytest.raises(ValueError):
        machine.enable_metrics(window_seconds=0)
    with pytest.raises(ValueError):
        machine.enable_metrics(sample_interval_s=-1)


def test_sampler_populates_every_gauge_for_every_node():
    machine, registry, _ = armed_run()
    assert registry.samples > 0
    node_ids = registry.gauge_nodes()
    assert MACHINE_NODE in node_ids
    real_nodes = [n for n in node_ids if n != MACHINE_NODE]
    assert real_nodes == sorted(machine.system.nodes)
    for name in GAUGE_NAMES:
        if name == "nr_swap_used":
            assert (name, MACHINE_NODE) in registry.gauges
        else:
            for node_id in real_nodes:
                assert (name, node_id) in registry.gauges


def test_sampled_gauges_match_the_live_machine_at_the_end():
    machine, registry, _ = armed_run()
    # One final explicit sample pins gauge_last to the current state.
    from repro.metrics.sampler import VmstatSampler

    VmstatSampler(machine.system, registry).run(machine.clock.now_ns)
    for node in machine.system.nodes.values():
        assert (
            registry.gauge_last[("nr_free_pages", node.node_id)]
            == node.free_pages
        )
        counts = node.lruvec.counts()
        assert (
            registry.gauge_last[("nr_inactive_anon", node.node_id)]
            == counts["anon_inactive"]
        )
    assert (
        registry.gauge_last[("nr_swap_used", MACHINE_NODE)]
        == machine.system.backing.swapped_pages
    )


def test_promotion_latency_histogram_fills_on_multiclock():
    _, registry, result = armed_run()
    assert result.promotions > 0
    hist = registry.promotion_latency
    total_adds = (
        result.counters["multiclock.promote_list_adds"]
        + result.counters["kpromoted.to_promote_list"]
    )
    assert 0 < hist.count + registry.promote_pending <= total_adds
    assert hist.min_value >= 0
    assert hist.total > 0


def test_demotion_age_histogram_counts_every_demotion():
    _, registry, result = armed_run()
    assert result.demotions > 0
    assert registry.demotion_age.count == result.demotions


def test_reaccess_delay_histogram_fills():
    _, registry, result = armed_run()
    assert registry.reaccess_delay.count > 0
    # Every horizon-limited reaccess the counters saw is also in the
    # histogram (which additionally sees late reaccesses).
    assert registry.reaccess_delay.count >= result.counters.get(
        "promoted.reaccessed", 0
    )


def test_vmscan_event_series_record_reclaim_activity():
    import math

    _, registry, result = armed_run()
    assert result.counters["kswapd.pages_scanned"] > 0

    def total(event_name):
        return sum(
            point.value
            for (name, _), series in registry.events.items()
            if name == event_name
            for point in series.totals()
            if not math.isnan(point.value)
        )

    scanned = total("pgscan")
    stolen = total("pgsteal")
    assert scanned >= result.counters["kswapd.pages_scanned"]
    # Every kswapd demotion/eviction flowed through shrink_inactive_list,
    # which is the only pgsteal source — other scanners only add to it.
    assert stolen >= result.counters["kswapd.demoted"] + result.counters[
        "kswapd.evicted"
    ]


def test_swap_residency_pairs_out_with_in():
    # Tiny DRAM + tiny PM + tiny swap forces eviction and refault.
    machine, registry, result = armed_run(
        pages=1200, ops=30_000, dram_pages=(128,), pm_pages=(256,)
    )
    majors = result.counters.get("faults.major", 0)
    assert majors > 0
    assert registry.swap_residency.count == majors


def test_promote_drop_clears_the_pending_tracker():
    machine, registry, _ = armed_run()
    registry.note_promote_list_add(10**9, machine.clock.now_ns)
    before = registry.promotion_latency.count
    registry.note_promote_drop(10**9)
    # Dropped pages never contribute a latency sample, even if a later
    # commit mentions the same pfn.
    registry.note_promote_commit(10**9, machine.clock.now_ns + 1000)
    assert registry.promotion_latency.count == before
